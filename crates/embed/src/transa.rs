//! TransA: locally adaptive translation embedding (Jia et al., AAAI 2016 —
//! the paper's reference [15], offered as an alternative algorithm 𝒜).
//!
//! TransA replaces TransE's isotropic distance with an adaptive
//! Mahalanobis-style metric per relation:
//!
//! ```text
//!   d_r(h, t) = |h + r − t|ᵀ W_r |h + r − t|,   W_r ⪰ 0
//! ```
//!
//! We learn a **diagonal** `W_r` (non-negative per-dimension weights)
//! jointly with the vectors by SGD. The original paper derives a full
//! matrix in closed form and projects it to the PSD cone; the diagonal
//! restriction keeps `W_r ⪰ 0` trivially (clamp at zero) while preserving
//! the property the downstream index cares about: per-relation anisotropy
//! of the translation residual. This simplification is recorded in
//! DESIGN.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vkg_kg::{EntityId, KnowledgeGraph, RelationId};

use crate::store::EmbeddingStore;
use crate::transe::TrainStats;
use crate::vector::normalize;

/// Hyper-parameters for [`TransA::train`].
#[derive(Debug, Clone)]
pub struct TransAConfig {
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Number of passes over the training triples.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Ranking margin γ.
    pub margin: f64,
    /// L2 regularization on the adaptive weights.
    pub weight_decay: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransAConfig {
    fn default() -> Self {
        Self {
            dim: 50,
            epochs: 50,
            learning_rate: 0.01,
            margin: 1.0,
            weight_decay: 1e-3,
            seed: 0x7472_616e, // "tran"
        }
    }
}

impl TransAConfig {
    /// A fast configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            dim: 16,
            epochs: 20,
            ..Self::default()
        }
    }
}

/// Output of TransA training: the embedding store plus the learned
/// per-relation diagonal metrics.
#[derive(Debug, Clone)]
pub struct TransAModel {
    /// Entity and relation vectors (compatible with everything downstream).
    pub store: EmbeddingStore,
    /// Row-major `m × d` matrix of diagonal weights, all ≥ 0.
    pub weights: Vec<f64>,
    dim: usize,
}

impl TransAModel {
    /// The diagonal weight vector of relation `r`.
    pub fn relation_weights(&self, r: RelationId) -> &[f64] {
        let i = r.index() * self.dim;
        &self.weights[i..i + self.dim]
    }

    /// Adaptive distance `|h+r−t|ᵀ W_r |h+r−t|`.
    pub fn triple_distance(&self, h: EntityId, r: RelationId, t: EntityId) -> f64 {
        let (hv, rv, tv) = (
            self.store.entity(h),
            self.store.relation(r),
            self.store.entity(t),
        );
        let w = self.relation_weights(r);
        let mut s = 0.0;
        for i in 0..self.dim {
            let x = (hv[i] + rv[i] - tv[i]).abs();
            s += w[i] * x * x;
        }
        s
    }
}

/// The TransA trainer.
#[derive(Debug)]
pub struct TransA {
    cfg: TransAConfig,
}

impl TransA {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(cfg: TransAConfig) -> Self {
        Self { cfg }
    }

    /// Trains a TransA model on all triples of `graph`.
    pub fn train(&self, graph: &KnowledgeGraph) -> (TransAModel, TrainStats) {
        let n = graph.num_entities();
        let m = graph.num_relations();
        let d = self.cfg.dim;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        let mut store = EmbeddingStore::zeros(n, m, d);
        let bound = 6.0 / (d as f64).sqrt();
        for e in 0..n {
            for v in store.entity_mut(EntityId(e as u32)).iter_mut() {
                *v = rng.gen_range(-bound..bound);
            }
        }
        for r in 0..m {
            let row = store.relation_mut(RelationId(r as u32));
            for v in row.iter_mut() {
                *v = rng.gen_range(-bound..bound);
            }
            normalize(row);
        }
        // Adaptive weights start at the identity metric.
        let mut weights = vec![1.0f64; m * d];

        let triples: Vec<_> = graph.triples().to_vec();
        let mut order: Vec<usize> = (0..triples.len()).collect();
        let mut epoch_loss = Vec::with_capacity(self.cfg.epochs);

        for _ in 0..self.cfg.epochs {
            for e in 0..n {
                normalize(store.entity_mut(EntityId(e as u32)));
            }
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut total = 0.0;
            for &ti in &order {
                let tr = triples[ti];
                let (nh, nt) = corrupt(graph, tr.head, tr.relation, tr.tail, &mut rng);
                total += self.step(
                    &mut store,
                    &mut weights,
                    tr.head,
                    tr.relation,
                    tr.tail,
                    nh,
                    nt,
                );
            }
            epoch_loss.push(total / triples.len().max(1) as f64);
        }

        (
            TransAModel {
                store,
                weights,
                dim: d,
            },
            TrainStats { epoch_loss },
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        store: &mut EmbeddingStore,
        weights: &mut [f64],
        h: EntityId,
        r: RelationId,
        t: EntityId,
        nh: EntityId,
        nt: EntityId,
    ) -> f64 {
        let d = store.dim();
        let wi = r.index() * d;

        let score = |store: &EmbeddingStore, weights: &[f64], h: EntityId, t: EntityId| -> f64 {
            let (hv, rv, tv) = (store.entity(h), store.relation(r), store.entity(t));
            (0..d)
                .map(|i| {
                    let x = hv[i] + rv[i] - tv[i];
                    weights[wi + i] * x * x
                })
                .sum()
        };

        let pos = score(store, weights, h, t);
        let neg = score(store, weights, nh, nt);
        let loss = (self.cfg.margin + pos - neg).max(0.0);
        if loss <= 0.0 {
            return 0.0;
        }
        let lr = self.cfg.learning_rate;

        let mut res_pos = vec![0.0; d];
        {
            let (hv, rv, tv) = (store.entity(h), store.relation(r), store.entity(t));
            for i in 0..d {
                res_pos[i] = hv[i] + rv[i] - tv[i];
            }
        }
        let mut res_neg = vec![0.0; d];
        {
            let (hv, rv, tv) = (store.entity(nh), store.relation(r), store.entity(nt));
            for i in 0..d {
                res_neg[i] = hv[i] + rv[i] - tv[i];
            }
        }

        for i in 0..d {
            let w = weights[wi + i];
            let gp = 2.0 * w * res_pos[i];
            let gn = 2.0 * w * res_neg[i];
            store.entity_mut(h)[i] -= lr * gp;
            store.entity_mut(t)[i] += lr * gp;
            store.entity_mut(nh)[i] += lr * gn;
            store.entity_mut(nt)[i] -= lr * gn;
            store.relation_mut(r)[i] -= lr * (gp - gn);
            // Weight gradient: ∂loss/∂w_i = res_pos² − res_neg², plus decay
            // toward the identity metric; clamp to keep W_r ⪰ 0.
            let gw = res_pos[i] * res_pos[i] - res_neg[i] * res_neg[i]
                + self.cfg.weight_decay * (w - 1.0);
            weights[wi + i] = (w - lr * gw).max(0.0);
        }
        loss
    }
}

fn corrupt<R: Rng>(
    graph: &KnowledgeGraph,
    h: EntityId,
    r: RelationId,
    t: EntityId,
    rng: &mut R,
) -> (EntityId, EntityId) {
    let n = graph.num_entities() as u32;
    for _ in 0..16 {
        let candidate = EntityId(rng.gen_range(0..n));
        let (nh, nt) = if rng.gen_bool(0.5) {
            (candidate, t)
        } else {
            (h, candidate)
        };
        if !graph.has_edge(nh, r, nt) {
            return (nh, nt);
        }
    }
    (h, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph(n: usize) -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        for i in 0..n.saturating_sub(1) {
            g.add_fact(&format!("a{i}"), "next", &format!("a{}", i + 1))
                .unwrap();
        }
        for i in 0..n {
            g.add_fact(&format!("a{i}"), "is_a", "node").unwrap();
        }
        g
    }

    #[test]
    fn loss_decreases() {
        let g = chain_graph(30);
        let (_, stats) = TransA::new(TransAConfig::fast()).train(&g);
        assert!(stats.final_loss().unwrap() < stats.epoch_loss[0]);
    }

    #[test]
    fn weights_stay_nonnegative() {
        let g = chain_graph(25);
        let (model, _) = TransA::new(TransAConfig::fast()).train(&g);
        assert!(model.weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn adaptive_distance_uses_weights() {
        let g = chain_graph(10);
        let (mut model, _) = TransA::new(TransAConfig::fast()).train(&g);
        let next = g.relation_id("next").unwrap();
        let h = g.entity_id("a0").unwrap();
        let t = g.entity_id("a1").unwrap();
        let before = model.triple_distance(h, next, t);
        // Zeroing all weights must zero the distance.
        for w in model.weights.iter_mut() {
            *w = 0.0;
        }
        assert_eq!(model.triple_distance(h, next, t), 0.0);
        assert!(before >= 0.0);
    }

    #[test]
    fn relation_weight_rows_are_disjoint() {
        let g = chain_graph(10);
        let (model, _) = TransA::new(TransAConfig::fast()).train(&g);
        let next = g.relation_id("next").unwrap();
        let is_a = g.relation_id("is_a").unwrap();
        assert_eq!(model.relation_weights(next).len(), 16);
        assert_eq!(model.relation_weights(is_a).len(), 16);
    }

    #[test]
    fn store_is_downstream_compatible() {
        // TransA's store can be used exactly like a TransE store.
        let g = chain_graph(12);
        let (model, _) = TransA::new(TransAConfig::fast()).train(&g);
        let next = g.relation_id("next").unwrap();
        let h = g.entity_id("a0").unwrap();
        let q = model.store.tail_query_point(h, next);
        assert_eq!(q.len(), 16);
    }
}
