//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The `run_experiments` binary drives [`experiments`]; the Criterion
//! benches reuse [`setup`] and [`workload`] so both timing paths measure
//! the same configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod latency;
pub mod report;
pub mod setup;
pub mod workload;
