// pretend: crates/server/src/state.rs
// Fixture for the no-global-engine-lock rule: the sharded engine owns
// every `RwLock<IndexState>`; constructing one anywhere else brings
// back the single global lock the router exists to remove. Generic
// RwLocks over other payloads stay allowed.

use vkg_sync::RwLock;

struct Rebuilt {
    state: RwLock<IndexState>, // expect: no-global-engine-lock
}

fn rebuild(points: ProjectedPoints, cfg: &VkgConfig) {
    let _direct = RwLock::new(IndexState::cracking(points, cfg)); // expect: no-global-engine-lock
    let _named = RwLock::with_name(IndexState::bulk(points, cfg), "vkg.engine"); // expect: no-global-engine-lock
}

struct FineElsewhere {
    // Other payloads are not the engine; the rule must stay quiet here.
    table: RwLock<Vec<u64>>,
    config: RwLock<VkgConfig>,
}

fn escape_hatch(points: ProjectedPoints, cfg: &VkgConfig) {
    // lint: allow(no-global-engine-lock, test harness drives one shard directly)
    let _m = RwLock::new(IndexState::cracking(points, cfg));
}
