//! Self-tests for the model checker: known-bad programs whose bugs the
//! checker must find within a bounded seed sweep, and known-clean
//! programs it must never flag across the same seeds.

#![cfg(feature = "model")]

use vkg_sync::model::{self, Config, ViolationKind};
use vkg_sync::{thread, Arc, Condvar, Mutex, Ordering, RaceCell};

const SEEDS: u64 = 64;

/// Two threads write the same cell with no synchronization at all —
/// there is no happens-before edge in *any* schedule, so the very
/// first seed must already report the race.
#[test]
fn seeded_data_race_is_detected() {
    let v = model::check(0, || {
        let cell = Arc::new(RaceCell::with_name(0_u64, "shared-counter"));
        let c2 = cell.clone();
        let h = thread::spawn(move || c2.set(1));
        cell.set(2);
        h.join().expect("writer");
    })
    .expect_err("unsynchronized writes must race");
    assert_eq!(v.kind, ViolationKind::DataRace);
    assert!(
        v.message.contains("shared-counter"),
        "report names the cell: {v}"
    );
}

/// A racy read: the main thread reads while a spawned thread writes,
/// synchronized only by a Relaxed atomic — which transfers no
/// happens-before, so the checker must still call it a race.
#[test]
fn relaxed_atomic_does_not_synchronize() {
    let mut hits = 0;
    for seed in 0..SEEDS {
        let result = model::check(seed, || {
            let cell = Arc::new(RaceCell::with_name(0_u64, "payload"));
            let flag = Arc::new(vkg_sync::AtomicBool::new(false));
            let (c2, f2) = (cell.clone(), flag.clone());
            let h = thread::spawn(move || {
                c2.set(42);
                f2.store(true, Ordering::Relaxed); // no release edge
            });
            if flag.load(Ordering::Relaxed) {
                let _ = cell.get(); // racy: Relaxed gave us no ordering
            }
            h.join().expect("writer");
        });
        if let Err(v) = result {
            assert_eq!(v.kind, ViolationKind::DataRace, "unexpected: {v}");
            hits += 1;
        }
    }
    // Only schedules where the read actually observes the flag race;
    // a bounded sweep must include at least one.
    assert!(hits > 0, "no schedule in {SEEDS} seeds exposed the race");
}

/// Classic ABBA inversion. The order graph is cumulative across the
/// whole schedule, so *every* seed must fail — either the inversion is
/// flagged when the second order appears, or the schedule actually
/// deadlocks first.
#[test]
fn seeded_lock_inversion_is_detected() {
    for seed in 0..8 {
        let v = model::check(seed, || {
            let a = Arc::new(Mutex::with_name(0_u64, "lock-a"));
            let b = Arc::new(Mutex::with_name(0_u64, "lock-b"));
            let (a2, b2) = (a.clone(), b.clone());
            let h = thread::spawn(move || {
                let _b = b2.lock();
                let _a = a2.lock(); // B then A
            });
            {
                let _a = a.lock();
                let _b = b.lock(); // A then B
            }
            h.join().expect("inverted thread");
        })
        .expect_err("ABBA ordering must be flagged on every seed");
        assert!(
            matches!(
                v.kind,
                ViolationKind::LockOrderInversion | ViolationKind::Deadlock
            ),
            "unexpected violation for seed {seed}: {v}"
        );
    }
    // At least one seed must report the *inversion* (the schedule that
    // got lucky and did not deadlock still has the cyclic order).
    let inversions = (0..SEEDS)
        .filter(|&seed| {
            matches!(
                model::check(seed, || {
                    let a = Arc::new(Mutex::with_name(0_u64, "lock-a"));
                    let b = Arc::new(Mutex::with_name(0_u64, "lock-b"));
                    let (a2, b2) = (a.clone(), b.clone());
                    let h = thread::spawn(move || {
                        let _b = b2.lock();
                        let _a = a2.lock();
                    });
                    {
                        let _a = a.lock();
                        let _b = b.lock();
                    }
                    h.join().expect("inverted thread");
                }),
                Err(v) if v.kind == ViolationKind::LockOrderInversion
            )
        })
        .count();
    assert!(inversions > 0, "no seed reported the inversion itself");
}

/// A waiter parks on a condvar whose notifier forgot to notify: in any
/// schedule where the waiter checks the flag before the setter runs,
/// nobody will ever wake it — a deadlock report naming the condvar.
#[test]
fn missed_condvar_wakeup_is_detected() {
    let mut hits = 0;
    for seed in 0..SEEDS {
        let result = model::check(seed, || {
            let pair = Arc::new((Mutex::with_name(false, "ready-flag"), Condvar::new()));
            let p2 = pair.clone();
            let waiter = thread::spawn(move || {
                let (lock, cv) = &*p2;
                let mut ready = lock.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
            });
            let setter = {
                let pair = pair.clone();
                thread::spawn(move || {
                    let (lock, _cv) = &*pair;
                    *lock.lock() = true;
                    // BUG: no notify_one() — the waiter stays parked.
                })
            };
            setter.join().expect("setter");
            waiter.join().expect("waiter");
        });
        if let Err(v) = result {
            assert_eq!(v.kind, ViolationKind::Deadlock, "unexpected: {v}");
            assert!(v.message.contains("condvar"), "report blames the wait: {v}");
            hits += 1;
        }
    }
    assert!(
        hits > 0,
        "no schedule in {SEEDS} seeds parked the waiter before the setter ran"
    );
}

/// The fixed version of every scenario above must stay clean across
/// the same seed sweep — no false positives.
#[test]
fn clean_programs_have_no_false_positives() {
    model::sweep(SEEDS, || {
        // Mutex-protected counter (the fixed data-race fixture).
        let m = Arc::new(Mutex::with_name(0_u64, "counter"));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || *m.lock() += 1)
            })
            .collect();
        for h in handles {
            h.join().expect("incrementer");
        }
        assert_eq!(*m.lock(), 2);

        // Consistent A→B order in both threads (the fixed inversion).
        let a = Arc::new(Mutex::with_name(0_u64, "lock-a"));
        let b = Arc::new(Mutex::with_name(0_u64, "lock-b"));
        let (a2, b2) = (a.clone(), b.clone());
        let h = thread::spawn(move || {
            let _a = a2.lock();
            let _b = b2.lock();
        });
        {
            let _a = a.lock();
            let _b = b.lock();
        }
        h.join().expect("ordered thread");

        // Condvar handshake with the notify present (the fixed lost
        // wakeup), plus Release/Acquire publication through an atomic.
        let pair = Arc::new((Mutex::with_name(false, "ready"), Condvar::new()));
        let cell = Arc::new(RaceCell::with_name(0_u64, "published"));
        let flag = Arc::new(vkg_sync::AtomicBool::new(false));
        let (p2, c2, f2) = (pair.clone(), cell.clone(), flag.clone());
        let setter = thread::spawn(move || {
            c2.set(7);
            f2.store(true, Ordering::Release);
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        {
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        }
        if flag.load(Ordering::Acquire) {
            // Acquire pairs with the Release store: reading is ordered.
            assert_eq!(cell.get(), 7);
        }
        setter.join().expect("setter");
    })
    .expect("clean program flagged");
}

/// Replaying a failing seed reproduces the identical violation — the
/// property that makes failures debuggable.
#[test]
fn failing_seed_replays_identically() {
    let scenario = || {
        let cell = Arc::new(RaceCell::with_name(0_u64, "replay-cell"));
        let c2 = cell.clone();
        let h = thread::spawn(move || c2.set(1));
        let _ = cell.get();
        h.join().expect("writer");
    };
    let first = model::check(3, scenario).expect_err("racy fixture");
    let second = model::check(3, scenario).expect_err("racy fixture");
    assert_eq!(first.kind, second.kind);
    assert_eq!(first.message, second.message);
    assert_eq!(first.seed, second.seed);
}

/// A panicking assertion inside a managed thread surfaces as a Panic
/// violation carrying the seed, not a hung run.
#[test]
fn managed_thread_panic_becomes_violation() {
    let v = model::check(1, || {
        let h = thread::spawn(|| panic!("invariant broken"));
        let _ = h.join();
    })
    .expect_err("panic must fail the run");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.message.contains("invariant broken"), "payload kept: {v}");
}

/// Pool chunk-claiming: across the full seed sweep, every chunk index
/// is executed exactly once — the fetch-add claim loop neither loses
/// nor double-executes an item under any explored schedule.
#[test]
fn pool_claims_every_chunk_exactly_once() {
    model::sweep(SEEDS, || {
        let pool = vkg_sync::pool::Pool::new(3);
        let counts: Vec<vkg_sync::AtomicU64> =
            (0..6).map(|_| vkg_sync::AtomicU64::new(0)).collect();
        pool.run(6, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Acquire),
                1,
                "chunk {i} ran a wrong number of times"
            );
        }
    })
    .unwrap_or_else(|v| panic!("pool claim loop flagged: {v}"));
}

/// Pool barrier: workers publish into per-chunk [`RaceCell`]s and the
/// caller reads them right after `run` returns with no further
/// synchronization. If the scoped join were not a real happens-before
/// barrier the checker would report a data race on some schedule.
#[test]
fn pool_join_is_a_happens_before_barrier() {
    model::sweep(SEEDS, || {
        let pool = vkg_sync::pool::Pool::new(3);
        let cells: Vec<RaceCell<u64>> = (0..4)
            .map(|_| RaceCell::with_name(0, "pool-slot"))
            .collect();
        pool.run(4, |i| cells[i].set(i as u64 + 1));
        let total: u64 = cells.iter().map(RaceCell::get).sum();
        assert_eq!(total, 1 + 2 + 3 + 4);
    })
    .unwrap_or_else(|v| panic!("barrier read flagged: {v}"));
}

/// A panic inside a pool worker must surface as a [`ViolationKind::Panic`]
/// on every seed — never a deadlock or a wedged run: the surviving
/// workers drain, the scoped join completes, and the caller re-throws.
#[test]
fn pool_worker_panic_propagates_without_deadlock() {
    for seed in 0..SEEDS {
        let v = model::check(seed, || {
            let pool = vkg_sync::pool::Pool::new(2);
            pool.run(3, |i| assert!(i != 1, "worker died on chunk 1"));
        })
        .expect_err("worker panic must fail the run");
        assert_eq!(v.kind, ViolationKind::Panic, "seed {seed}: {v}");
        assert!(
            v.message.contains("worker died on chunk 1"),
            "payload kept: {v}"
        );
    }
}

/// The step bound turns accidental livelock into a diagnosable
/// violation instead of a wedged test run.
#[test]
fn runaway_schedule_hits_step_bound() {
    let cfg = Config {
        preemption_bound: 0,
        max_steps: 50,
    };
    let v = model::check_with(&cfg, 0, || {
        let m = Mutex::new(0_u64);
        loop {
            *m.lock() += 1;
        }
    })
    .expect_err("infinite loop must hit the bound");
    assert_eq!(v.kind, ViolationKind::ScheduleBound);
}
