//! Per-entity numeric attributes for aggregate queries.
//!
//! The paper's aggregate queries (§V-B, §VI) read numeric attributes of
//! entities: the average *age* of users, the average *year* of liked
//! movies, the average *quality* of products, the maximum *popularity* of
//! an entity. This module stores such attributes as named columns over the
//! dense entity-id space, with explicit missing-value handling (not every
//! entity has every attribute — a user has an `age`, a movie has a `year`).

use std::collections::HashMap;

use crate::error::{KgError, Result};
use crate::ids::EntityId;

/// A named column of optional `f64` values indexed by entity id.
#[derive(Debug, Clone, Default)]
struct Column {
    values: Vec<Option<f64>>,
}

impl Column {
    fn set(&mut self, e: EntityId, v: f64) {
        if self.values.len() <= e.index() {
            self.values.resize(e.index() + 1, None);
        }
        self.values[e.index()] = Some(v);
    }

    fn get(&self, e: EntityId) -> Option<f64> {
        self.values.get(e.index()).copied().flatten()
    }
}

/// Columnar store of named per-entity attributes.
#[derive(Debug, Clone, Default)]
pub struct AttributeStore {
    columns: HashMap<String, Column>,
}

impl AttributeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `attr` of entity `e` to `value`, creating the column if needed.
    pub fn set(&mut self, attr: &str, e: EntityId, value: f64) {
        self.columns
            .entry(attr.to_owned())
            .or_default()
            .set(e, value);
    }

    /// Reads `attr` of entity `e`; `None` if the entity lacks the attribute.
    ///
    /// Returns an error if the attribute column itself does not exist —
    /// querying a typo'd attribute name should fail loudly, not aggregate
    /// over nothing.
    pub fn get(&self, attr: &str, e: EntityId) -> Result<Option<f64>> {
        self.columns
            .get(attr)
            .map(|c| c.get(e))
            .ok_or_else(|| KgError::UnknownAttribute(attr.to_owned()))
    }

    /// Whether a column named `attr` exists.
    pub fn has_attribute(&self, attr: &str) -> bool {
        self.columns.contains_key(attr)
    }

    /// Names of all attribute columns (unordered).
    pub fn attribute_names(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(String::as_str)
    }

    /// Number of entities with a value in column `attr` (0 if no column).
    pub fn count_present(&self, attr: &str) -> usize {
        self.columns
            .get(attr)
            .map(|c| c.values.iter().filter(|v| v.is_some()).count())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut a = AttributeStore::new();
        a.set("age", EntityId(3), 41.0);
        assert_eq!(a.get("age", EntityId(3)).unwrap(), Some(41.0));
        assert_eq!(a.get("age", EntityId(0)).unwrap(), None);
        assert_eq!(a.get("age", EntityId(99)).unwrap(), None);
    }

    #[test]
    fn missing_column_is_an_error() {
        let a = AttributeStore::new();
        assert!(matches!(
            a.get("age", EntityId(0)),
            Err(KgError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn overwrite_takes_latest() {
        let mut a = AttributeStore::new();
        a.set("year", EntityId(1), 1997.0);
        a.set("year", EntityId(1), 2001.0);
        assert_eq!(a.get("year", EntityId(1)).unwrap(), Some(2001.0));
    }

    #[test]
    fn column_introspection() {
        let mut a = AttributeStore::new();
        a.set("quality", EntityId(0), 4.5);
        a.set("quality", EntityId(7), 3.0);
        assert!(a.has_attribute("quality"));
        assert!(!a.has_attribute("age"));
        assert_eq!(a.count_present("quality"), 2);
        assert_eq!(a.count_present("age"), 0);
        let names: Vec<_> = a.attribute_names().collect();
        assert_eq!(names, vec!["quality"]);
    }
}
