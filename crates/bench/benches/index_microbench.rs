//! Micro-benchmarks of the index building blocks: JL projection,
//! sort-order construction, best-binary-split enumeration, cracking, and
//! region search. These isolate the costs the figure-level benches
//! aggregate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vkg::core::config::SplitStrategy;
use vkg::core::geometry::{Mbr, PointSet};
use vkg::core::index::CrackingIndex;
use vkg::core::rtree::SortOrders;
use vkg::prelude::JlTransform;

fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let coords: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
    PointSet::from_rows(dim, coords)
}

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_micro");

    // JL projection of one 48-dim vector into α = 3.
    let t = JlTransform::new(48, 3, 7);
    let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.3).sin()).collect();
    group.bench_function("jl_apply_48_to_3", |b| b.iter(|| black_box(t.apply(&x))));

    // Sort-order construction over 10k points (the root-partition cost of
    // the very first query).
    let ps = random_points(10_000, 3, 1);
    group.bench_function("sort_orders_build_10k", |b| {
        b.iter(|| black_box(SortOrders::build(&ps, ps.all_ids())))
    });

    // First-query crack of a 10k-point index.
    group.bench_function("first_crack_10k", |b| {
        b.iter(|| {
            let mut idx = CrackingIndex::new(
                random_points(10_000, 3, 2),
                32,
                8,
                2.0,
                SplitStrategy::Greedy,
            );
            idx.crack(&Mbr::of_ball(&[1.0, 1.0, 1.0], 1.0));
            black_box(idx.node_count())
        })
    });

    // Region search on a converged index.
    let mut idx = CrackingIndex::new(
        random_points(50_000, 3, 3),
        32,
        8,
        2.0,
        SplitStrategy::Greedy,
    );
    let region = Mbr::of_ball(&[0.0, 0.0, 0.0], 1.0);
    idx.crack(&region);
    group.bench_function("search_region_50k_converged", |b| {
        b.iter(|| {
            let mut count = 0usize;
            idx.search_region(&region, |_| count += 1);
            black_box(count)
        })
    });

    // Bulk load as the reference cost the cracking amortizes away.
    group.bench_function("bulk_load_10k", |b| {
        b.iter(|| {
            black_box(CrackingIndex::bulk_load(
                random_points(10_000, 3, 4),
                32,
                8,
                2.0,
            ))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_micro
}
criterion_main!(benches);
