// pretend: crates/core/src/wal/append.rs
// Fixture for the io-fallible rule: discarding the Result of file IO
// on the durability path must fire; propagating it must not.

use std::fs::File;
use std::io::Write;

fn propagated(file: &mut File) -> std::io::Result<()> {
    file.write_all(b"record")?;
    file.flush()?;
    file.sync_data()?;
    Ok(())
}

fn matched(file: &mut File) -> bool {
    match file.flush() {
        Ok(()) => true,
        Err(_) => false,
    }
}

fn discarded_by_let(file: &mut File) {
    let _ = file.flush(); // expect: io-fallible
    let _ = file.sync_all(); // expect: io-fallible
    let _ = file.set_len(0); // expect: io-fallible
}

fn discarded_by_ok(file: &mut File) {
    file.write_all(b"record").ok(); // expect: io-fallible
    file.sync_data().ok(); // expect: io-fallible
}

fn suppressed(file: &mut File) {
    // lint: allow(io-fallible, best-effort tail flush on the shutdown path)
    let _ = file.flush();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_discard() {
        let mut f = std::fs::File::create("/tmp/x").unwrap();
        let _ = std::io::Write::flush(&mut f);
    }
}
