//! The virtual knowledge graph facade (Definition 1).
//!
//! Assembles the materialized graph `G = (V, E)`, its attributes, the
//! embedding store (the algorithm 𝒜 inducing the predicted edges `E'`),
//! the JL transform S₁ → S₂ and the cracking index into one queryable
//! object. Queries follow the paper's default E′-only semantics: results
//! never include edges already in `E`, nor the query entity itself.

use vkg_embed::EmbeddingStore;
use vkg_kg::{AttributeStore, EntityId, KgError, KnowledgeGraph, RelationId};
use vkg_transform::JlTransform;

use crate::config::VkgConfig;
use crate::geometry::{Mbr, PointSet};
use crate::index::CrackingIndex;
use crate::query::aggregate::{
    self, AggregateKind, AggregateResult, AggregateSpec, DeviationBound,
};
use crate::query::probability::{inverse_distance_probabilities, radius_for_threshold};
use crate::query::topk::{find_top_k, TopKResult};
use crate::stats::IndexStats;

/// Which endpoint of the triple the query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Given a head entity `h`, find tails `t` of likely `(h, r, t)` —
    /// query center `h + r`.
    Tails,
    /// Given a tail entity `t`, find heads `h` of likely `(h, r, t)` —
    /// query center `t − r`.
    Heads,
}

/// Errors raised by query processing.
#[derive(Debug)]
pub enum QueryError {
    /// The query entity id is out of range.
    UnknownEntity(u32),
    /// The relation id is out of range.
    UnknownRelation(u32),
    /// The aggregate references an attribute that does not exist.
    UnknownAttribute(String),
    /// An attribute aggregate was requested without naming an attribute.
    MissingAttribute,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownEntity(id) => write!(f, "unknown entity id {id}"),
            QueryError::UnknownRelation(id) => write!(f, "unknown relation id {id}"),
            QueryError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            QueryError::MissingAttribute => {
                write!(f, "aggregate kind requires an attribute name")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A knowledge graph extended with predicted, probabilistic edges, indexed
/// for predictive top-k and aggregate queries.
#[derive(Debug)]
pub struct VirtualKnowledgeGraph {
    graph: KnowledgeGraph,
    attributes: AttributeStore,
    embeddings: EmbeddingStore,
    transform: JlTransform,
    index: CrackingIndex,
    config: VkgConfig,
}

impl VirtualKnowledgeGraph {
    /// Assembles a virtual knowledge graph with an **online cracking**
    /// index (starts as a root-only tree; queries shape it).
    ///
    /// # Panics
    /// Panics if the embedding store's entity count does not match the
    /// graph's, or the configuration is invalid.
    pub fn assemble(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> Self {
        let (points, transform) = Self::project(&graph, &embeddings, &config);
        let mut index = CrackingIndex::new(
            points,
            config.leaf_capacity,
            config.fanout,
            config.beta,
            config.split_strategy,
        );
        index.set_query_aware_cost(config.query_aware_cost);
        Self {
            graph,
            attributes,
            embeddings,
            transform,
            index,
            config,
        }
    }

    /// Assembles with a fully **bulk-loaded** offline index (the
    /// BULKLOADCHUNK baseline of §VI).
    pub fn assemble_bulk_loaded(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> Self {
        let (points, transform) = Self::project(&graph, &embeddings, &config);
        let index =
            CrackingIndex::bulk_load(points, config.leaf_capacity, config.fanout, config.beta);
        Self {
            graph,
            attributes,
            embeddings,
            transform,
            index,
            config,
        }
    }

    fn project(
        graph: &KnowledgeGraph,
        embeddings: &EmbeddingStore,
        config: &VkgConfig,
    ) -> (PointSet, JlTransform) {
        config.validate();
        assert_eq!(
            embeddings.num_entities(),
            graph.num_entities(),
            "embedding store and graph disagree on entity count"
        );
        assert_eq!(
            embeddings.num_relations(),
            graph.num_relations(),
            "embedding store and graph disagree on relation count"
        );
        let transform = JlTransform::new(embeddings.dim(), config.alpha, config.transform_seed);
        let projected = transform.apply_matrix(embeddings.entity_matrix());
        (PointSet::from_rows(config.alpha, projected), transform)
    }

    /// The materialized knowledge graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// The attribute store.
    pub fn attributes(&self) -> &AttributeStore {
        &self.attributes
    }

    /// The embedding store (space S₁).
    pub fn embeddings(&self) -> &EmbeddingStore {
        &self.embeddings
    }

    /// The configuration in effect.
    pub fn config(&self) -> &VkgConfig {
        &self.config
    }

    /// Index statistics (splits, nodes, per-query access counters).
    pub fn index_stats(&self) -> &IndexStats {
        self.index.stats()
    }

    /// Number of index nodes (Fig. 9 metric).
    pub fn index_node_count(&self) -> usize {
        self.index.node_count()
    }

    /// Approximate index size in bytes (Figs. 10–11 metric).
    pub fn index_bytes(&self) -> usize {
        self.index.index_bytes()
    }

    /// Resets the per-query access counters.
    pub fn reset_access_counters(&mut self) {
        self.index.stats_mut().reset_access_counters();
    }

    /// The query center in S₁ for an entity/relation/direction.
    pub fn query_point_s1(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
    ) -> Result<Vec<f64>, QueryError> {
        self.check(entity, relation)?;
        Ok(match direction {
            Direction::Tails => self.embeddings.tail_query_point(entity, relation),
            Direction::Heads => self.embeddings.head_query_point(entity, relation),
        })
    }

    fn check(&self, entity: EntityId, relation: RelationId) -> Result<(), QueryError> {
        if entity.index() >= self.graph.num_entities() {
            return Err(QueryError::UnknownEntity(entity.0));
        }
        if relation.index() >= self.graph.num_relations() {
            return Err(QueryError::UnknownRelation(relation.0));
        }
        Ok(())
    }

    /// Top-k predicted entities for `(entity, relation)` in `direction`
    /// (Q1-style queries; Algorithm 3).
    pub fn top_k(
        &mut self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
    ) -> Result<TopKResult, QueryError> {
        self.top_k_filtered(entity, relation, direction, k, |_| true)
    }

    /// Top-k restricted to entities accepted by `filter` (e.g. only
    /// movies). The E′ semantics (skip known edges, skip self) always
    /// apply on top of the filter.
    pub fn top_k_filtered(
        &mut self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        filter: impl Fn(EntityId) -> bool,
    ) -> Result<TopKResult, QueryError> {
        let q_s1 = self.query_point_s1(entity, relation, direction)?;
        let q_s2 = self.transform.apply(&q_s1);
        let known: std::collections::HashSet<u32> = match direction {
            Direction::Tails => self.graph.tails(entity, relation).map(|e| e.0).collect(),
            Direction::Heads => self.graph.heads(entity, relation).map(|e| e.0).collect(),
        };
        let embeddings = &self.embeddings;
        let result = find_top_k(
            &mut self.index,
            &q_s2,
            k,
            self.config.epsilon,
            self.config.alpha,
            |id| embeddings.distance_to_entity(&q_s1, EntityId(id)),
            |id| id == entity.0 || known.contains(&id) || !filter(EntityId(id)),
        );
        Ok(result)
    }

    /// Answers an aggregate query over the probability ball around the
    /// query center (§V-B).
    pub fn aggregate(
        &mut self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        spec: &AggregateSpec,
    ) -> Result<AggregateResult, QueryError> {
        // Validate the attribute before any work.
        let attr = match spec.kind {
            AggregateKind::Count => None,
            _ => {
                let name = spec
                    .attribute
                    .as_deref()
                    .ok_or(QueryError::MissingAttribute)?;
                if !self.attributes.has_attribute(name) {
                    return Err(QueryError::UnknownAttribute(name.to_owned()));
                }
                Some(name.to_owned())
            }
        };

        // Step 1: nearest predicted entity fixes d_min (probability 1).
        let top1 = self.top_k(entity, relation, direction, 1)?;
        let Some(nearest) = top1.predictions.first().cloned() else {
            return Ok(AggregateResult {
                estimate: 0.0,
                accessed: 0,
                ball_size: 0,
                bound: DeviationBound {
                    mu: 0.0,
                    increment_mass: 0.0,
                },
            });
        };
        let d_min = nearest.distance;
        let r_tau = radius_for_threshold(d_min, spec.p_tau);

        // Step 2: gather the ball members through the index.
        let q_s1 = self.query_point_s1(entity, relation, direction)?;
        let q_s2 = self.transform.apply(&q_s1);
        let region = Mbr::of_ball(&q_s2, r_tau * (1.0 + self.config.epsilon));
        let known: std::collections::HashSet<u32> = match direction {
            Direction::Tails => self.graph.tails(entity, relation).map(|e| e.0).collect(),
            Direction::Heads => self.graph.heads(entity, relation).map(|e| e.0).collect(),
        };
        // Candidates arrive with the MBR of their contour element; the
        // element-center distance in S₂ is the cheap proxy ranking which
        // points to *access* and the probability estimate for the ones we
        // never access (§V-B: the index knows per-element counts and
        // average distances; only accessed points get exact distances).
        let mut candidates: Vec<(u32, f64)> = Vec::new();
        self.index.search_region_elements(&region, |id, elem_mbr| {
            let center = elem_mbr.center();
            let approx: f64 = center[..q_s2.len()]
                .iter()
                .zip(&q_s2)
                .map(|(c, q)| (c - q) * (c - q))
                .sum::<f64>()
                .sqrt();
            candidates.push((id, approx));
        });

        // Schema-level filtering (attribute presence is catalog metadata,
        // not a record access) and E′ semantics.
        let mut filtered: Vec<(u32, f64)> = Vec::with_capacity(candidates.len());
        for (id, approx) in candidates {
            if id == entity.0 || known.contains(&id) {
                continue;
            }
            if let Some(name) = &attr {
                match self.attributes.get(name, EntityId(id)) {
                    Ok(Some(_)) => {}
                    Ok(None) => continue,
                    Err(KgError::UnknownAttribute(a)) => {
                        return Err(QueryError::UnknownAttribute(a))
                    }
                    Err(_) => continue,
                }
            }
            // The anchoring nearest entity is always accessed first.
            let key = if id == nearest.id { 0.0 } else { approx };
            filtered.push((id, key));
        }
        filtered.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        // Step 3: access the `a` most-promising points exactly; estimate
        // the rest from their element geometry.
        let budget = spec.sample_size.unwrap_or(usize::MAX);
        let mut accessed: Vec<(f64, f64)> = Vec::new(); // (distance, value)
        let mut unaccessed_dists: Vec<f64> = Vec::new();
        let mut s1_evals = 0u64;
        for (id, approx) in filtered {
            if accessed.len() < budget {
                let d = self.embeddings.distance_to_entity(&q_s1, EntityId(id));
                s1_evals += 1;
                if d > r_tau {
                    continue;
                }
                let value = match &attr {
                    None => 1.0,
                    Some(name) => self
                        .attributes
                        .get(name, EntityId(id))
                        .expect("attribute validated above")
                        .expect("candidates filtered to attribute holders"),
                };
                accessed.push((d, value));
            } else if approx <= r_tau {
                unaccessed_dists.push(approx);
            }
        }
        self.index.stats_mut().s1_distance_evals += s1_evals;
        accessed.sort_by(|x, y| x.0.total_cmp(&y.0));

        let distances: Vec<f64> = accessed.iter().map(|m| m.0).collect();
        let values: Vec<f64> = accessed.iter().map(|m| m.1).collect();
        // Probabilities are relative to the closest member of the result
        // population (for attribute aggregates the closest *attribute
        // holder*, which may differ from the global anchor).
        let ref_d = distances.first().copied().unwrap_or(d_min).max(1e-12);
        let mut probs = inverse_distance_probabilities(&distances);
        probs.extend(
            unaccessed_dists
                .into_iter()
                .map(|d| (ref_d / d.max(ref_d)).min(1.0)),
        );
        let a = accessed.len();
        let b = probs.len();

        // Step 4: estimate + Theorem 4 bound, then crack for the region.
        let estimate = match spec.kind {
            AggregateKind::Count => aggregate::estimate_count(&probs),
            AggregateKind::Sum => aggregate::estimate_sum(&values, &probs),
            AggregateKind::Avg => aggregate::estimate_avg(&values, &probs),
            AggregateKind::Max => aggregate::estimate_max(&values, &probs[..a]),
            AggregateKind::Min => aggregate::estimate_min(&values, &probs[..a]),
        };
        // v_m for the unaccessed points, estimated from the sample (the
        // paper's no-domain-knowledge alternative). For AVG the paper
        // divides both μ and the martingale increments by the count, so
        // the increment values are v_i / E[count].
        let v_max = values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let bound = if spec.kind == AggregateKind::Avg {
            let count = aggregate::estimate_count(&probs).max(1.0);
            let scaled: Vec<f64> = values.iter().map(|v| v / count).collect();
            aggregate::deviation_bound(estimate, &scaled, b - a, v_max / count)
        } else {
            aggregate::deviation_bound(estimate, &values, b - a, v_max)
        };

        self.index.crack(&region);

        Ok(AggregateResult {
            estimate,
            accessed: a,
            ball_size: b,
            bound,
        })
    }

    // ------------------------------------------------------------------
    // Dynamic knowledge-graph updates (the paper's §VIII future work:
    // "when there are local updates, the embedding changes should be
    // local too, as most (h, r, t) soft constraints still hold. We plan
    // to do incremental updates on our partial index.")
    // ------------------------------------------------------------------

    /// Adds a new entity with a known S₁ embedding (e.g. produced by the
    /// external embedding pipeline for a cold-start item). The entity is
    /// projected into S₂ and spliced into the partial index in place — no
    /// rebuild.
    ///
    /// # Panics
    /// Panics if the embedding's dimensionality does not match the store.
    pub fn add_entity_dynamic(&mut self, name: &str, s1_embedding: &[f64]) -> EntityId {
        let id = self.graph.add_entity(name);
        if id.index() < self.embeddings.num_entities() {
            // The name was already interned — treat as an embedding update.
            self.embeddings
                .entity_mut(id)
                .copy_from_slice(s1_embedding);
            let s2 = self.transform.apply(s1_embedding);
            self.index.update_point(id.0, &s2);
            return id;
        }
        let store_id = self.embeddings.push_entity(s1_embedding);
        debug_assert_eq!(store_id, id, "graph and store ids must stay aligned");
        let s2 = self.transform.apply(s1_embedding);
        let point_id = self.index.insert_point(&s2);
        debug_assert_eq!(point_id, id.0, "index point ids must stay aligned");
        id
    }

    /// Adds a fact `(h, r, t)` to `E` and locally refines the embeddings:
    /// `refine_steps` gradient steps pull `h + r` toward `t` (the TransE
    /// positive-pair objective, no negative sampling — a *local* change,
    /// per the paper's intuition that local graph updates should move
    /// embeddings locally). Both endpoints' S₂ points are updated in the
    /// partial index in place.
    ///
    /// Returns whether the edge was new.
    pub fn add_fact_dynamic(
        &mut self,
        h: EntityId,
        r: RelationId,
        t: EntityId,
        refine_steps: usize,
        learning_rate: f64,
    ) -> Result<bool, QueryError> {
        self.check(h, r)?;
        self.check(t, r)?;
        let added = self
            .graph
            .add_triple(h, r, t)
            .map_err(|_| QueryError::UnknownEntity(h.0))?;
        if !added {
            return Ok(false);
        }
        let d = self.embeddings.dim();
        for _ in 0..refine_steps {
            let mut grad = vec![0.0; d];
            {
                let (hv, rv, tv) = (
                    self.embeddings.entity(h),
                    self.embeddings.relation(r),
                    self.embeddings.entity(t),
                );
                for i in 0..d {
                    grad[i] = 2.0 * (hv[i] + rv[i] - tv[i]);
                }
            }
            for i in 0..d {
                self.embeddings.entity_mut(h)[i] -= learning_rate * grad[i];
                self.embeddings.entity_mut(t)[i] += learning_rate * grad[i];
            }
        }
        let h_s2 = self.transform.apply(self.embeddings.entity(h));
        self.index.update_point(h.0, &h_s2);
        let t_s2 = self.transform.apply(self.embeddings.entity(t));
        self.index.update_point(t.0, &t_s2);
        Ok(true)
    }

    /// Sets (or updates) an attribute of an entity — aggregate queries
    /// observe the new value immediately.
    pub fn set_attribute_dynamic(&mut self, attr: &str, entity: EntityId, value: f64) {
        self.attributes.set(attr, entity, value);
    }

    /// Direct access to the index (benchmarks, invariant checks).
    pub fn index(&self) -> &CrackingIndex {
        &self.index
    }

    /// Mutable access to the index.
    pub fn index_mut(&mut self) -> &mut CrackingIndex {
        &mut self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitStrategy;

    /// A small synthetic world with hand-crafted geometry:
    /// users u0..u3 at distinct positions, items m0..m5 clustered so that
    /// u's "+likes" lands near specific items.
    fn tiny_world(dim: usize) -> (KnowledgeGraph, AttributeStore, EmbeddingStore) {
        let mut g = KnowledgeGraph::new();
        let likes = g.add_relation("likes");
        let users: Vec<_> = (0..4).map(|i| g.add_entity(&format!("u{i}"))).collect();
        let items: Vec<_> = (0..6).map(|i| g.add_entity(&format!("m{i}"))).collect();
        // u0 already likes m0 (edge in E — must be skipped by queries).
        g.add_triple(users[0], likes, items[0]).unwrap();

        // Embeddings: dim-d vectors. Items sit at x = 10 + i, users at
        // x = i, relation "likes" translates by +10, so u_i + likes ≈ m_i.
        let mut ent = vec![0.0; 10 * dim];
        for (i, _) in users.iter().enumerate() {
            ent[i * dim] = i as f64;
        }
        for (j, _) in items.iter().enumerate() {
            ent[(4 + j) * dim] = 10.0 + j as f64;
            ent[(4 + j) * dim + 1] = 0.5; // offset so items aren't colinear
        }
        let mut rel = vec![0.0; dim];
        rel[0] = 10.0;
        rel[1] = 0.5;
        let store = EmbeddingStore::from_raw(dim, ent, rel);

        let mut attrs = AttributeStore::new();
        for (j, &m) in items.iter().enumerate() {
            attrs.set("year", m, 2000.0 + j as f64);
        }
        (g, attrs, store)
    }

    fn config() -> VkgConfig {
        VkgConfig {
            alpha: 3,
            epsilon: 3.0,
            leaf_capacity: 2,
            fanout: 2,
            beta: 2.0,
            split_strategy: SplitStrategy::Greedy,
            query_aware_cost: true,
            transform_seed: 7,
        }
    }

    #[test]
    fn top_k_finds_nearest_unknown_item() {
        let (g, attrs, emb) = tiny_world(8);
        let mut vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let r = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        assert_eq!(r.predictions.len(), 2);
        let names: Vec<&str> = r
            .predictions
            .iter()
            .map(|p| vkg.graph().entity_name(EntityId(p.id)).unwrap())
            .collect();
        // m0 is a known edge → skipped; the nearest predictions are m1
        // then m2 (u0 + likes = (10, 0.5): m1 at distance 1 along x ...
        // actually m0 at 0 is skipped, m1 at 1, m2 at 2).
        assert_eq!(names, vec!["m1", "m2"]);
        assert_eq!(r.predictions[0].probability, 1.0);
    }

    #[test]
    fn heads_query_inverts_translation() {
        let (g, attrs, emb) = tiny_world(8);
        let mut vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let m2 = vkg.graph().entity_id("m2").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        // m2 − likes = (2, 0, …) → nearest user is u2.
        let r = vkg.top_k(m2, likes, Direction::Heads, 1).unwrap();
        let name = vkg
            .graph()
            .entity_name(EntityId(r.predictions[0].id))
            .unwrap();
        assert_eq!(name, "u2");
    }

    #[test]
    fn filter_restricts_candidates() {
        let (g, attrs, emb) = tiny_world(8);
        let mut vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        // Restrict to even-numbered items.
        let graph = vkg.graph().clone();
        let r = vkg
            .top_k_filtered(u0, likes, Direction::Tails, 2, |e| {
                graph
                    .entity_name(e)
                    .is_some_and(|n| n.starts_with('m') && n[1..].parse::<u32>().unwrap() % 2 == 0)
            })
            .unwrap();
        let names: Vec<&str> = r
            .predictions
            .iter()
            .map(|p| vkg.graph().entity_name(EntityId(p.id)).unwrap())
            .collect();
        assert_eq!(names, vec!["m2", "m4"], "m0 is a known edge");
    }

    #[test]
    fn aggregate_count_over_ball() {
        let (g, attrs, emb) = tiny_world(8);
        let mut vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let r = vkg
            .aggregate(u0, likes, Direction::Tails, &AggregateSpec::count(0.05))
            .unwrap();
        assert!(r.ball_size >= 1);
        assert!(r.estimate >= 1.0, "closest entity alone contributes 1");
        assert!(r.estimate <= r.ball_size as f64);
    }

    #[test]
    fn aggregate_avg_year() {
        let (g, attrs, emb) = tiny_world(8);
        let mut vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let spec = AggregateSpec::of(AggregateKind::Avg, "year", 0.05);
        let r = vkg.aggregate(u0, likes, Direction::Tails, &spec).unwrap();
        assert!(
            (2000.0..=2005.0).contains(&r.estimate),
            "avg year {} outside item range",
            r.estimate
        );
    }

    #[test]
    fn aggregate_rejects_unknown_attribute() {
        let (g, attrs, emb) = tiny_world(8);
        let mut vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let spec = AggregateSpec::of(AggregateKind::Avg, "nonexistent", 0.05);
        assert!(matches!(
            vkg.aggregate(u0, likes, Direction::Tails, &spec),
            Err(QueryError::UnknownAttribute(_))
        ));
        let spec = AggregateSpec {
            kind: AggregateKind::Sum,
            attribute: None,
            p_tau: 0.05,
            sample_size: None,
        };
        assert!(matches!(
            vkg.aggregate(u0, likes, Direction::Tails, &spec),
            Err(QueryError::MissingAttribute)
        ));
    }

    #[test]
    fn unknown_ids_rejected() {
        let (g, attrs, emb) = tiny_world(8);
        let mut vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let likes = vkg.graph().relation_id("likes").unwrap();
        assert!(matches!(
            vkg.top_k(EntityId(999), likes, Direction::Tails, 3),
            Err(QueryError::UnknownEntity(999))
        ));
        let u0 = vkg.graph().entity_id("u0").unwrap();
        assert!(matches!(
            vkg.top_k(u0, RelationId(42), Direction::Tails, 3),
            Err(QueryError::UnknownRelation(42))
        ));
    }

    #[test]
    fn bulk_loaded_agrees_with_cracking() {
        let (g, attrs, emb) = tiny_world(8);
        let mut online =
            VirtualKnowledgeGraph::assemble(g.clone(), attrs.clone(), emb.clone(), config());
        let mut bulk = VirtualKnowledgeGraph::assemble_bulk_loaded(g, attrs, emb, config());
        let u1 = online.graph().entity_id("u1").unwrap();
        let likes = online.graph().relation_id("likes").unwrap();
        let a = online.top_k(u1, likes, Direction::Tails, 3).unwrap();
        let b = bulk.top_k(u1, likes, Direction::Tails, 3).unwrap();
        assert_eq!(
            a.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            b.predictions.iter().map(|p| p.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn queries_crack_the_index() {
        let (g, attrs, emb) = tiny_world(8);
        // A tight ε keeps the query region smaller than the whole space
        // (with the default ε = 3 the tiny world's region covers all ten
        // points and the stop condition correctly leaves the root alone).
        let cfg = VkgConfig {
            epsilon: 0.3,
            ..config()
        };
        let mut vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, cfg);
        assert_eq!(vkg.index_node_count(), 1);
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let _ = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        assert!(vkg.index_node_count() > 1);
        vkg.index().check_invariants();
    }
}
