//! FINDTOP-KENTITIES (Algorithm 3, §V-A).
//!
//! The algorithm runs in the low-dimensional index space S₂ but ranks by
//! true S₁ distance: it seeds a top-k set from the contour element
//! containing the query point, inflates the k-th S₁ distance by `(1+ε)`
//! into an S₂ ball, and examines the ball's points while the ball
//! monotonically shrinks as better candidates arrive. When the region
//! stabilizes the index is cracked for it (line 9), so subsequent queries
//! near the same region find a finer tree.
//!
//! This module implements the algorithm generically over two closures —
//! the S₁ distance oracle and the skip predicate (known `E`-edges and the
//! query entity itself are excluded per §II's E′-only semantics) — so the
//! same code serves tail queries (`h + r`), head queries (`t − r`), and
//! the unit tests' synthetic geometry.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::{VkgError, VkgResult};
use crate::geometry::{kernels, Mbr, PointSet};
use crate::index::CrackingIndex;

use super::guarantees::{topk_guarantee, TopKGuarantee};
use super::probability::inverse_distance_probabilities;

/// One predicted edge endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Point id (= dense entity id).
    pub id: u32,
    /// Distance in the original embedding space S₁ (lower = more likely).
    pub distance: f64,
    /// Edge probability under the §V-B inverse-distance model.
    pub probability: f64,
}

/// Result of one top-k query.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// Up to `k` predictions, ascending by S₁ distance.
    pub predictions: Vec<Prediction>,
    /// The Theorem 2 guarantee computed from the reported distances.
    pub guarantee: TopKGuarantee,
    /// Number of candidate points whose S₁ distance was evaluated.
    pub s1_evals: u64,
    /// Number of points examined in S₂ (the cheap filter).
    pub candidates_examined: u64,
    /// The region the index was cracked for (Algorithm 3 line 9), kept so
    /// a result cache replaying this answer can reproduce the crack and
    /// keep cached and uncached trees identical. `None` for engines that
    /// never crack (the baselines).
    pub crack_region: Option<Mbr>,
}

/// Max-heap entry so the k-th (worst) current answer pops first.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    distance: f64,
    id: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Algorithm 3.
///
/// * `q_s2` — the query center in S₂ (the transformed `h + r` / `t − r`).
/// * `k` — number of entities requested.
/// * `epsilon` — the radius inflation of line 3 (`r_q = r*_k(1+ε)`).
/// * `alpha` — dimensionality of S₂ (for the Theorem 2 guarantee).
/// * `s1_distance(points, id)` — the true S₁ distance from the query
///   point to the entity's embedding (the expensive oracle; evaluations
///   are counted). The index's S₂ point set is passed through so oracles
///   that only need S₂ geometry can read it without re-projecting.
/// * `skip(id)` — true for entities excluded from `E'` (existing
///   neighbours, the query entity itself).
///
/// # Errors
/// [`VkgError::InvalidParameter`] when `k = 0` or `ε` is not positive.
pub fn find_top_k(
    index: &mut CrackingIndex,
    q_s2: &[f64],
    k: usize,
    epsilon: f64,
    alpha: usize,
    s1_distance: impl FnMut(&PointSet, u32) -> f64,
    skip: impl FnMut(u32) -> bool,
) -> VkgResult<TopKResult> {
    find_top_k_warm(index, q_s2, k, epsilon, alpha, &[], s1_distance, skip)
}

/// [`find_top_k`] warm-started from already-known `(id, s1_distance)`
/// pairs — the result cache's partial-hit path: a cached top-k′ answer
/// (k′ < k, same query, same epoch) seeds the k-set so the initial ball
/// of line 3 starts at its smallest admissible radius instead of being
/// re-derived from a seed scan. Warm pairs must come from an identical
/// query at an identical snapshot epoch (their distances and skip status
/// are trusted verbatim); they are not counted as oracle evaluations.
/// With `warm` empty this **is** `find_top_k`, byte for byte.
#[allow(clippy::too_many_arguments)]
pub fn find_top_k_warm(
    index: &mut CrackingIndex,
    q_s2: &[f64],
    k: usize,
    epsilon: f64,
    alpha: usize,
    warm: &[(u32, f64)],
    mut s1_distance: impl FnMut(&PointSet, u32) -> f64,
    mut skip: impl FnMut(u32) -> bool,
) -> VkgResult<TopKResult> {
    if k == 0 {
        return Err(VkgError::InvalidParameter("top-k requires k ≥ 1".into()));
    }
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(VkgError::InvalidParameter("ε must be positive".into()));
    }
    let mut s1_evals = 0u64;
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for &(id, d) in warm {
        push_candidate(&mut heap, k, id, d);
    }

    // Line 2: probe the smallest contour element containing q and seed
    // the k-set by walking its points outward along one sort order.
    let element = index.smallest_element_containing(q_s2);
    let seed_want = (k * 4).max(16);
    let seeds = index.seed_scan(element, q_s2, seed_want);
    // The warm set already holds exact distances for its ids; skipping
    // them here both saves oracle calls and keeps the heap duplicate-free
    // (`push_candidate` does not deduplicate).
    let warm_ids: std::collections::HashSet<u32> = warm.iter().map(|&(id, _)| id).collect();
    for id in seeds {
        if warm_ids.contains(&id) || skip(id) {
            continue;
        }
        let d = s1_distance(index.points(), id);
        s1_evals += 1;
        push_candidate(&mut heap, k, id, d);
    }

    // Lines 3–4: initial region. If seeding found fewer than k usable
    // entities the radius is unknown; fall back to the whole data region
    // (correct, just slower — happens only on degenerate inputs).
    let initial_region = match heap.peek() {
        Some(worst) if heap.len() >= k => Mbr::of_ball(q_s2, worst.distance * (1.0 + epsilon)),
        _ => index.points().mbr_of(&index.points().all_ids()),
    };

    // Gather the candidate ids in the initial region and consume them
    // nearest-in-S₂ first so the ball shrinks as early as possible (the
    // "increasing distance from q" traversal of lines 5–8). A lazy
    // min-heap beats a full sort: as soon as the nearest unexamined
    // candidate falls outside the shrunken ball, everything else does
    // too and the loop ends.
    let mut ids: Vec<u32> = Vec::new();
    index.search_region(&initial_region, |id| ids.push(id));
    let candidates_examined = ids.len() as u64;
    let mut d_s2 = vec![0.0f64; ids.len()];
    kernels::distances_sq(index.pool(), index.points(), &ids, q_s2, &mut d_s2);

    // The ball only shrinks, so candidates already outside the current
    // radius can never be examined — drop them before heapifying instead
    // of popping them one by one at the end of the loop.
    let mut current_r_sq = current_ball_radius_sq(&heap, k, epsilon);
    let mut frontier: BinaryHeap<std::cmp::Reverse<HeapEntry>> = ids
        .iter()
        .zip(&d_s2)
        .filter(|&(_, &d)| d <= current_r_sq)
        .map(|(&id, &d)| std::cmp::Reverse(HeapEntry { distance: d, id }))
        .collect();

    let mut seen: std::collections::HashSet<u32> = heap.iter().map(|e| e.id).collect();
    while let Some(std::cmp::Reverse(HeapEntry {
        distance: d_s2_sq,
        id,
    })) = frontier.pop()
    {
        // Line 5's loop condition: the region Q only shrinks, so once the
        // nearest remaining candidate is outside the current ball, all
        // data points in Q have been examined.
        if d_s2_sq > current_r_sq {
            break;
        }
        if !seen.insert(id) || skip(id) {
            continue;
        }
        let d = s1_distance(index.points(), id);
        s1_evals += 1;
        if push_candidate(&mut heap, k, id, d) {
            current_r_sq = current_ball_radius_sq(&heap, k, epsilon);
        }
    }

    // Line 9: crack the index for the final (stabilized) region.
    let final_region = match heap.peek() {
        None => initial_region,
        Some(worst) => Mbr::of_ball(q_s2, worst.distance * (1.0 + epsilon)),
    };
    index.crack(&final_region);
    index.stats_mut().s1_distance_evals += s1_evals;

    // Assemble ascending results with probabilities and guarantees.
    let mut entries: Vec<HeapEntry> = heap.into_vec();
    entries.sort();
    let distances: Vec<f64> = entries.iter().map(|e| e.distance).collect();
    let probabilities = inverse_distance_probabilities(&distances);
    let predictions = entries
        .into_iter()
        .zip(probabilities)
        .map(|(e, probability)| Prediction {
            id: e.id,
            distance: e.distance,
            probability,
        })
        .collect();
    let guarantee = topk_guarantee(&distances, epsilon, alpha);

    Ok(TopKResult {
        predictions,
        guarantee,
        s1_evals,
        candidates_examined,
        crack_region: Some(final_region),
    })
}

/// Pushes a candidate into the bounded max-heap; returns whether the k-th
/// distance changed (the ball can shrink).
fn push_candidate(heap: &mut BinaryHeap<HeapEntry>, k: usize, id: u32, distance: f64) -> bool {
    if heap.len() < k {
        heap.push(HeapEntry { distance, id });
        return true;
    }
    match heap.peek().map(|worst| worst.distance) {
        Some(kth) if distance < kth => {
            heap.pop();
            heap.push(HeapEntry { distance, id });
            true
        }
        _ => false,
    }
}

/// Squared S₂ ball radius for the current k-set (infinite until k found).
fn current_ball_radius_sq(heap: &BinaryHeap<HeapEntry>, k: usize, epsilon: f64) -> f64 {
    match heap.peek() {
        Some(worst) if heap.len() >= k => {
            let r = worst.distance * (1.0 + epsilon);
            r * r
        }
        _ => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitStrategy;
    use crate::geometry::PointSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic setup where S₁ *is* S₂ (identity transform): exactness
    /// is then required, which pins the algorithm's plumbing.
    fn identity_setup(n: usize, seed: u64) -> (CrackingIndex, Vec<[f64; 3]>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                ]
            })
            .collect();
        let coords: Vec<f64> = pts.iter().flatten().copied().collect();
        let ps = PointSet::from_rows(3, coords);
        let idx = CrackingIndex::new(ps, 16, 8, 2.0, SplitStrategy::Greedy);
        (idx, pts)
    }

    fn l2(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    fn brute_top_k(pts: &[[f64; 3]], q: &[f64], k: usize, skip: &dyn Fn(u32) -> bool) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..pts.len() as u32).filter(|&i| !skip(i)).collect();
        ids.sort_by(|&a, &b| l2(&pts[a as usize], q).total_cmp(&l2(&pts[b as usize], q)));
        ids.truncate(k);
        ids
    }

    #[test]
    fn exact_under_identity_transform() {
        let (mut idx, pts) = identity_setup(2_000, 1);
        let q = [1.0, -2.0, 3.0];
        let result = find_top_k(
            &mut idx,
            &q,
            5,
            1.0,
            3,
            |_, id| l2(&pts[id as usize], &q),
            |_| false,
        )
        .unwrap();
        let got: Vec<u32> = result.predictions.iter().map(|p| p.id).collect();
        let want = brute_top_k(&pts, &q, 5, &|_| false);
        assert_eq!(got, want);
        // Ascending distances, probabilities descending from 1.
        for w in result.predictions.windows(2) {
            assert!(w[0].distance <= w[1].distance);
            assert!(w[0].probability >= w[1].probability);
        }
        assert_eq!(result.predictions[0].probability, 1.0);
    }

    #[test]
    fn skip_predicate_excludes_neighbours() {
        let (mut idx, pts) = identity_setup(500, 2);
        let q = pts[7];
        let result = find_top_k(
            &mut idx,
            &q,
            3,
            1.0,
            3,
            |_, id| l2(&pts[id as usize], &q),
            |id| id == 7 || id == 11,
        )
        .unwrap();
        let got: Vec<u32> = result.predictions.iter().map(|p| p.id).collect();
        assert!(!got.contains(&7));
        assert!(!got.contains(&11));
        let want = brute_top_k(&pts, &q, 3, &|id| id == 7 || id == 11);
        assert_eq!(got, want);
    }

    #[test]
    fn repeated_queries_get_faster() {
        let (mut idx, pts) = identity_setup(20_000, 3);
        let q = [0.5, 0.5, 0.5];
        let first = find_top_k(
            &mut idx,
            &q,
            10,
            1.0,
            3,
            |_, id| l2(&pts[id as usize], &q),
            |_| false,
        )
        .unwrap();
        let second = find_top_k(
            &mut idx,
            &q,
            10,
            1.0,
            3,
            |_, id| l2(&pts[id as usize], &q),
            |_| false,
        )
        .unwrap();
        assert_eq!(
            first.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            second.predictions.iter().map(|p| p.id).collect::<Vec<_>>()
        );
        assert!(
            second.candidates_examined <= first.candidates_examined,
            "cracking must not increase examined candidates ({} → {})",
            first.candidates_examined,
            second.candidates_examined
        );
        idx.check_invariants();
    }

    #[test]
    fn fewer_points_than_k() {
        let (mut idx, pts) = identity_setup(3, 4);
        let q = [0.0, 0.0, 0.0];
        let result = find_top_k(
            &mut idx,
            &q,
            10,
            1.0,
            3,
            |_, id| l2(&pts[id as usize], &q),
            |_| false,
        )
        .unwrap();
        assert_eq!(result.predictions.len(), 3);
    }

    #[test]
    fn everything_skipped_yields_empty() {
        let (mut idx, pts) = identity_setup(50, 5);
        let q = [0.0, 0.0, 0.0];
        let result = find_top_k(
            &mut idx,
            &q,
            5,
            1.0,
            3,
            |_, id| l2(&pts[id as usize], &q),
            |_| true,
        )
        .unwrap();
        assert!(result.predictions.is_empty());
        assert_eq!(result.guarantee.success_probability, 1.0);
    }

    #[test]
    fn s1_evals_bounded_by_examined_plus_seeds() {
        let (mut idx, pts) = identity_setup(5_000, 6);
        let q = [2.0, 2.0, 2.0];
        let result = find_top_k(
            &mut idx,
            &q,
            5,
            0.5,
            3,
            |_, id| l2(&pts[id as usize], &q),
            |_| false,
        )
        .unwrap();
        assert!(result.s1_evals <= result.candidates_examined + 16 + 20);
        assert!(result.s1_evals >= 5);
    }

    #[test]
    fn guarantee_attached() {
        let (mut idx, pts) = identity_setup(1_000, 7);
        let q = [0.0, 0.0, 0.0];
        let r = find_top_k(
            &mut idx,
            &q,
            5,
            3.0,
            3,
            |_, id| l2(&pts[id as usize], &q),
            |_| false,
        )
        .unwrap();
        assert_eq!(r.guarantee.ratios.len(), 5);
        assert!(r.guarantee.success_probability > 0.5);
    }
}
