//! The lint rules and the engine that runs them.
//!
//! Two layers (DESIGN.md §3.7):
//!
//! * **Token rules** match needles against the scrubbed text of one
//!   file (`no-unwrap`, `no-raw-sync`, …).
//! * **Semantic rules** run over the item model and workspace call
//!   graph built by [`crate::parser`] / [`crate::callgraph`]:
//!   `lock-order`, `no-panic-on-request-path`, `relaxed-justify` /
//!   `seqcst-justify` (statement-attached), and `wire-exhaustive`.
//!
//! Every rule reports findings as `file:line:col: rule: message`. A
//! finding is suppressed by an annotation comment
//!
//! ```text
//! // lint: allow(rule-name, free-text reason)
//! ```
//!
//! on the same line as the finding or on a comment line up to two lines
//! above it. The reason is mandatory — an allow without one is itself
//! reported (`malformed-allow`), and an allow that suppresses nothing
//! is reported under `--strict` (`unused-allow`), so suppressions stay
//! auditable in both directions. `#[cfg(test)]` regions (the attribute
//! plus the brace-matched item that follows) are exempt from every rule.

use crate::callgraph;
use crate::lexer::{scrub, Scrubbed};
use crate::model::{default_config, LockConfig};
use crate::parser::{self, FileModel, PanicKind, TokKind};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// 1-indexed column (byte offset within the line).
    pub col: usize,
    /// Rule identifier, e.g. `no-unwrap`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// `file:line:col: rule: message` — editor-clickable.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    /// GitHub Actions annotation format (`::error file=…`).
    pub fn render_github(&self) -> String {
        format!(
            "::error file={},line={},col={}::{}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    /// The stable identity used by `--baseline` comparison: message
    /// texts may be reworded, but file/line/rule identify a site.
    pub fn baseline_key(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.rule)
    }
}

/// Names of all rules, for `allow(..)` validation.
pub const RULES: &[&str] = &[
    "no-unwrap",
    "no-raw-sync",
    "relaxed-justify",
    "seqcst-justify",
    "no-truncating-cast",
    "no-instant-now",
    "no-raw-timing",
    "no-alloc-in-kernel",
    "no-global-engine-lock",
    "lock-order",
    "no-panic-on-request-path",
    "wire-exhaustive",
    "io-fallible",
];

/// The full lint result for a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Rule findings (unsuppressed).
    pub findings: Vec<Finding>,
    /// Valid allows that suppressed nothing (reported under `--strict`).
    pub unused_allows: Vec<Finding>,
}

/// A parsed `// lint: allow(rule, reason)` annotation.
struct Allow {
    /// Line the annotation comment sits on.
    line: usize,
    rule: String,
    has_reason: bool,
    /// Suppressed at least one finding.
    used: bool,
}

fn parse_allows(scrubbed: &Scrubbed) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &scrubbed.comments {
        // The annotation must *start* the comment — prose or docs that
        // merely mention the syntax (like this crate's own) don't count.
        let Some(rest) = c.text.strip_prefix("lint: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            allows.push(Allow {
                line: c.line,
                rule: String::new(),
                has_reason: false,
                used: false,
            });
            continue;
        };
        let inner = &rest[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), !why.trim().is_empty()),
            None => (inner.trim().to_string(), false),
        };
        allows.push(Allow {
            line: c.line,
            rule,
            has_reason: reason,
            used: false,
        });
    }
    allows
}

/// Lines covered by `#[cfg(test)]` regions: the attribute line through
/// the end of the brace-matched block that follows it.
fn test_region_lines(code: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut offset = 0usize;
    let bytes = code.as_bytes();
    while let Some(found) = code[offset..].find("#[cfg(test)]") {
        let start = offset + found;
        let start_line = line_of(code, start);
        // Find the opening brace of the item the attribute decorates.
        let mut i = start;
        while i < bytes.len() && bytes[i] != b'{' {
            i += 1;
        }
        let mut depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let end_line = line_of(code, i.min(bytes.len().saturating_sub(1)));
        regions.push((start_line, end_line));
        offset = i.min(bytes.len());
        if offset <= start {
            break;
        }
    }
    regions
}

fn line_of(code: &str, byte: usize) -> usize {
    code.as_bytes()[..byte.min(code.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Byte offset → (line, col), both 1-indexed.
fn position(code: &str, byte: usize) -> (usize, usize) {
    let prefix = &code.as_bytes()[..byte.min(code.len())];
    let line = prefix.iter().filter(|&&b| b == b'\n').count() + 1;
    let col = byte
        - prefix
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1)
        + 1;
    (line, col)
}

/// Whether `path` (repo-relative, `/`-separated) is in scope for a rule.
struct Scope;

impl Scope {
    /// The panic-free zones: the serving layer, the core's facade,
    /// snapshot, query, and index modules, the data-ingest crates
    /// (`vkg-kg`, `vkg-embed`) whose IO/parse paths feed everything
    /// else, and the bench harness (a crashed load generator or
    /// experiment sweep loses the whole run's results).
    fn no_unwrap(path: &str) -> bool {
        path.starts_with("crates/server/src/")
            || path == "crates/core/src/vkg.rs"
            || path == "crates/core/src/snapshot.rs"
            || path.starts_with("crates/core/src/query/")
            || path.starts_with("crates/core/src/index/")
            || path.starts_with("crates/core/src/wal/")
            || path.starts_with("crates/kg/src/")
            || path.starts_with("crates/embed/src/")
            || path.starts_with("crates/bench/src/")
    }

    /// The durability path: IO results there are load-bearing — a
    /// discarded flush error becomes an acked-but-lost write.
    fn io_fallible(path: &str) -> bool {
        path.starts_with("crates/core/src/wal/")
    }

    /// Everything except `vkg-sync` itself (and vendored shims) must go
    /// through the facade for lock/atomic primitives. Only shipped code
    /// (`src/` trees) is in scope — integration tests may use std
    /// helpers like `Barrier` that the facade deliberately omits.
    fn no_raw_sync(path: &str) -> bool {
        path.starts_with("crates/") && !path.starts_with("crates/sync/") && path.contains("/src/")
    }

    /// Same scope as `no_raw_sync`: every `Ordering::Relaxed` in the
    /// product crates needs a written justification. `SeqCst` needs one
    /// too — outside `crates/sync`, whose model runtime legitimately
    /// sequentializes everything.
    fn ordering_justify(path: &str) -> bool {
        Self::no_raw_sync(path)
    }

    /// The fail-closed decode paths.
    fn wire_decode(path: &str) -> bool {
        path == "crates/server/src/wire.rs" || path == "crates/server/src/protocol.rs"
    }

    /// The wire-protocol opcode registry.
    fn wire_protocol(path: &str) -> bool {
        path == "crates/server/src/protocol.rs"
    }

    /// The per-call hot paths that must not allocate: the blocked
    /// distance kernels and the pool's chunk-claim loop (DESIGN.md
    /// §3.4). Setup-time allocations are waived explicitly with
    /// `// lint: allow(no-alloc-in-kernel, …)`.
    fn alloc_free_kernel(path: &str) -> bool {
        path == "crates/core/src/geometry/kernels.rs" || path == "crates/sync/src/pool.rs"
    }

    /// All shipped code takes time through the `vkg_obs::Clock` seam
    /// (`Clock`/`Stopwatch`) so tests can mock it — except `vkg-obs`
    /// itself (the seam's implementation sits on `Instant`) and the
    /// bench binaries, whose open-loop pacing wants raw monotonic time.
    /// Decode files are additionally covered by `no-instant-now`.
    fn no_raw_timing(path: &str) -> bool {
        path.starts_with("crates/")
            && path.contains("/src/")
            && !path.starts_with("crates/obs/src/")
            && !path.starts_with("crates/bench/src/bin/")
    }

    /// Every engine lock must live inside the shard router: a
    /// `RwLock<IndexState>` constructed anywhere else reintroduces the
    /// single global lock the sharded engine exists to remove.
    fn no_global_engine_lock(path: &str) -> bool {
        path.starts_with("crates/")
            && path.contains("/src/")
            && path != "crates/core/src/engine/shard.rs"
    }
}

/// Per-file state shared by every rule: the scrubbed text, allows with
/// use-tracking, test regions, and accumulated findings.
struct FileCtx {
    path: String,
    scrubbed: Scrubbed,
    allows: Vec<Allow>,
    test_regions: Vec<(usize, usize)>,
    findings: Vec<Finding>,
}

impl FileCtx {
    fn new(path: &str, src: &str) -> Self {
        let scrubbed = scrub(src);
        let allows = parse_allows(&scrubbed);
        let test_regions = test_region_lines(&scrubbed.code);
        FileCtx {
            path: path.to_string(),
            scrubbed,
            allows,
            test_regions,
            findings: Vec::new(),
        }
    }

    fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| s <= line && line <= e)
    }

    /// Records a finding at byte offset `at` unless the line is inside
    /// a test region or suppressed by a valid allow on the same line or
    /// up to two lines above (allows that fire are marked used).
    fn push(&mut self, at: usize, rule: &'static str, message: String) {
        let (line, col) = position(&self.scrubbed.code, at);
        self.push_at(line, col, rule, message);
    }

    fn push_at(&mut self, line: usize, col: usize, rule: &'static str, message: String) {
        if self.in_test_region(line) {
            return;
        }
        if let Some(a) = self.allows.iter_mut().find(|a| {
            a.has_reason
                && a.rule == rule
                && (a.line == line || a.line + 1 == line || a.line + 2 == line)
        }) {
            a.used = true;
            return;
        }
        self.findings.push(Finding {
            file: self.path.clone(),
            line,
            col,
            rule,
            message,
        });
    }
}

/// Lints a set of files as one workspace: per-file token and semantic
/// rules, then the cross-file call-graph rules. `design` is the text of
/// DESIGN.md when available (the wire-exhaustiveness doc check is
/// skipped without it, e.g. under `--self-test`).
pub fn lint_files(
    files: &[(String, String)],
    cfg: &LockConfig,
    design: Option<&str>,
) -> LintReport {
    let mut ctxs: Vec<FileCtx> = Vec::new();
    let mut models: Vec<FileModel> = Vec::new();
    for (path, src) in files {
        let ctx = FileCtx::new(path, src);
        models.push(parser::parse(path, &ctx.scrubbed.code));
        ctxs.push(ctx);
    }
    for (ctx, model) in ctxs.iter_mut().zip(&models) {
        file_rules(ctx, model, cfg, design);
    }
    graph_rules(&mut ctxs, &models, cfg);

    let mut report = LintReport::default();
    for ctx in ctxs {
        for a in &ctx.allows {
            let valid = a.has_reason && RULES.contains(&a.rule.as_str());
            if valid && !a.used && !ctx.in_test_region(a.line) {
                report.unused_allows.push(Finding {
                    file: ctx.path.clone(),
                    line: a.line,
                    col: 1,
                    rule: "unused-allow",
                    message: format!(
                        "`lint: allow({}, ..)` suppresses nothing; delete it so the \
                         audit trail stays honest",
                        a.rule
                    ),
                });
            }
        }
        report.findings.extend(ctx.findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    report
}

/// Runs every rule over one file in isolation (unit-test and fixture
/// convenience; the semantic rules see a one-file workspace with the
/// embedded `lockorder.toml`).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let files = vec![(rel_path.to_string(), src.to_string())];
    lint_files(&files, &default_config(), None).findings
}

fn file_rules(ctx: &mut FileCtx, model: &FileModel, cfg: &LockConfig, design: Option<&str>) {
    // Malformed allows are findings themselves, never suppressions.
    let mut malformed = Vec::new();
    for a in &ctx.allows {
        if a.rule.is_empty() || !a.has_reason {
            malformed.push((
                a.line,
                "lint: allow(rule, reason) requires both a rule and a reason".to_string(),
            ));
        } else if !RULES.contains(&a.rule.as_str()) {
            malformed.push((
                a.line,
                format!("unknown rule `{}` in lint: allow(..)", a.rule),
            ));
        }
    }
    for (line, message) in malformed {
        ctx.findings.push(Finding {
            file: ctx.path.clone(),
            line,
            col: 1,
            rule: "malformed-allow",
            message,
        });
    }

    let rel_path = ctx.path.clone();
    let code = ctx.scrubbed.code.clone();

    if Scope::no_unwrap(&rel_path) {
        for (needle, what) in [
            (".unwrap()", "unwrap() can panic"),
            (".expect(", "expect() can panic"),
            ("panic!", "panic! aborts the worker"),
            ("unreachable!", "unreachable! aborts the worker"),
            ("todo!", "todo! aborts the worker"),
        ] {
            for at in find_all(&code, needle) {
                ctx.push(
                    at,
                    "no-unwrap",
                    format!(
                        "{what}; return a typed error instead, or annotate with \
                         `// lint: allow(no-unwrap, why it cannot fire)`"
                    ),
                );
            }
        }
    }

    if Scope::io_fallible(&rel_path) {
        io_fallible_rule(ctx);
    }

    if Scope::no_raw_sync(&rel_path) {
        for primitive in [
            "std::sync::Mutex",
            "std::sync::RwLock",
            "std::sync::Condvar",
            "std::sync::Barrier",
            "std::sync::atomic",
            "parking_lot",
        ] {
            for at in find_all(&code, primitive) {
                ctx.push(
                    at,
                    "no-raw-sync",
                    format!(
                        "direct use of `{primitive}`; go through `vkg_sync` so model \
                         checking sees this synchronization"
                    ),
                );
            }
        }
        // Grouped imports: `use std::sync::{…, Mutex, …}`.
        for at in find_all(&code, "use std::sync::{") {
            let rest = &code[at..code.len().min(at + 200)];
            let inner_end = rest.find('}').unwrap_or(rest.len());
            let inner = &rest[..inner_end];
            for primitive in ["Mutex", "RwLock", "Condvar", "Barrier"] {
                if contains_word(inner, primitive) {
                    ctx.push(
                        at,
                        "no-raw-sync",
                        format!(
                            "`{primitive}` imported from `std::sync`; go through \
                             `vkg_sync` so model checking sees this synchronization"
                        ),
                    );
                }
            }
        }
    }

    if Scope::ordering_justify(&rel_path) {
        ordering_rules(ctx, model);
    }

    if Scope::no_global_engine_lock(&rel_path) {
        for needle in [
            "RwLock<IndexState",
            "RwLock::new(IndexState",
            "RwLock::with_name(IndexState",
        ] {
            for at in find_all(&code, needle) {
                ctx.push(
                    at,
                    "no-global-engine-lock",
                    "engine state must be locked per shard; construct IndexState locks \
                     only inside the shard router (crates/core/src/engine/shard.rs)"
                        .to_string(),
                );
            }
        }
    }

    if Scope::wire_decode(&rel_path) {
        for narrow in [
            " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
        ] {
            for at in find_all(&code, narrow) {
                // Make sure the match is the whole cast target (` as u8`
                // must not fire inside ` as u864`-like idents — none
                // exist, but stay principled).
                let end = at + narrow.len();
                if code.as_bytes().get(end).copied().is_some_and(is_ident_byte) {
                    continue;
                }
                ctx.push(
                    at + 1,
                    "no-truncating-cast",
                    format!(
                        "truncating `{}` cast in a decode path; use `try_from` with a \
                         typed error, or annotate with the bound that makes it safe",
                        narrow.trim()
                    ),
                );
            }
        }
        for at in find_all(&code, "Instant::now()") {
            ctx.push(
                at,
                "no-instant-now",
                "decode paths must be deterministic; take time at the call site, \
                 not inside the codec"
                    .to_string(),
            );
        }
    }

    if Scope::wire_protocol(&rel_path) {
        wire_exhaustive(ctx, model, design);
    }

    if Scope::no_raw_timing(&rel_path) {
        for needle in ["Instant::now(", "SystemTime::now("] {
            for at in find_all(&code, needle) {
                ctx.push(
                    at,
                    "no-raw-timing",
                    format!(
                        "`{needle}..)` bypasses the clock seam; take time via \
                         `vkg_obs::Clock`/`Stopwatch` so tests can mock it, or annotate \
                         with `// lint: allow(no-raw-timing, why raw time is required)`"
                    ),
                );
            }
        }
    }

    if Scope::alloc_free_kernel(&rel_path) {
        alloc_rules(ctx, model);
    }

    let _ = cfg;
}

/// `relaxed-justify` / `seqcst-justify` v2: statement-attached. Every
/// `Ordering::Relaxed` operand needs a `// relaxed:` comment between
/// the start of its statement (minus two lines, for wrapped comments)
/// and the operand's line — and after the previous atomic operand of
/// the statement, so each operand is justified individually. `SeqCst`
/// outside `crates/sync` needs a `// seqcst:` comment the same way.
fn ordering_rules(ctx: &mut FileCtx, model: &FileModel) {
    let code = ctx.scrubbed.code.clone();
    let toks = &model.toks;
    // Contiguous comment lines form one block; a block justifies an
    // operand when it carries the marker anywhere in its text and ends
    // inside the attachment window (so a wrapped multi-line comment
    // attaches by where it *ends*, not where the marker happens to sit).
    struct Block {
        start: usize,
        end: usize,
        relaxed: bool,
        seqcst: bool,
    }
    let mut blocks: Vec<Block> = Vec::new();
    for c in &ctx.scrubbed.comments {
        match blocks.last_mut() {
            Some(b) if b.end + 1 >= c.line && b.end <= c.line => {
                b.end = c.line;
                b.relaxed |= c.text.contains("relaxed:");
                b.seqcst |= c.text.contains("seqcst:");
            }
            _ => blocks.push(Block {
                start: c.line,
                end: c.line,
                relaxed: c.text.contains("relaxed:"),
                seqcst: c.text.contains("seqcst:"),
            }),
        }
    }
    let mut stmt_start_line = 1usize;
    let mut pending_stmt = true;
    let mut prev_operand_line = 0usize;
    let mut sites: Vec<(usize, usize, bool, usize)> = Vec::new(); // (at, line, is_seqcst, window_lo)
    for i in 0..toks.len() {
        let t = toks[i];
        let text = &code[t.start..t.end];
        if t.kind == TokKind::Punct && matches!(text, ";" | "{" | "}") {
            pending_stmt = true;
            prev_operand_line = 0;
            continue;
        }
        if pending_stmt {
            // The window opens two lines before the statement so a
            // wrapped two-line justification comment still attaches.
            stmt_start_line = t.line;
            pending_stmt = false;
        }
        if t.kind == TokKind::Ident
            && text == "Ordering"
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Punct
            && &code[toks[i + 1].start..toks[i + 1].end] == "::"
            && toks[i + 2].kind == TokKind::Ident
        {
            let which = &code[toks[i + 2].start..toks[i + 2].end];
            let line = toks[i + 2].line;
            // A previous justified operand closes the window behind it —
            // unless it sits on the same line (one comment may cover
            // both orderings of a one-line compare_exchange). Acquire/
            // Release operands need no comment and consume nothing.
            let eff_prev = if prev_operand_line < line {
                prev_operand_line
            } else {
                0
            };
            let lo = stmt_start_line.saturating_sub(2).max(eff_prev);
            match which {
                "Relaxed" => sites.push((t.start, line, false, lo)),
                "SeqCst" => sites.push((t.start, line, true, lo)),
                _ => continue,
            }
            prev_operand_line = line;
        }
    }
    for (at, line, is_seqcst, lo) in sites {
        let justified = blocks.iter().any(|b| {
            let marked = if is_seqcst { b.seqcst } else { b.relaxed };
            marked && b.end >= lo && b.start <= line
        });
        if justified {
            continue;
        }
        if is_seqcst {
            ctx.push(
                at,
                "seqcst-justify",
                "Ordering::SeqCst outside crates/sync without a `// seqcst: <why total \
                 order is required>` comment attached to this statement; prefer \
                 Acquire/Release with an invariant, or justify the fence"
                    .to_string(),
            );
        } else {
            ctx.push(
                at,
                "relaxed-justify",
                "Ordering::Relaxed without a `// relaxed: <why no ordering is needed>` \
                 comment attached to this statement (each Relaxed operand needs its own)"
                    .to_string(),
            );
        }
    }
}

/// `io-fallible`: on the durability path, the `Result` of file IO
/// (`flush`, `write_all`, `sync_all`/`sync_data`, `set_len`) must be
/// propagated, not discarded — `let _ = file.flush()` (or `.ok()`)
/// turns a failed flush into an acked-but-lost write. The check is
/// statement-scoped: an IO call whose enclosing statement discards its
/// result fires; one whose result flows onward (`?`, `match`, binding
/// to a used name) does not.
fn io_fallible_rule(ctx: &mut FileCtx) {
    const IO_CALLS: &[&str] = &[
        ".flush(",
        ".write_all(",
        ".sync_all(",
        ".sync_data(",
        ".set_len(",
    ];
    let code = ctx.scrubbed.code.clone();
    let bytes = code.as_bytes();
    for needle in IO_CALLS {
        for at in find_all(&code, needle) {
            // The enclosing statement: from just past the previous
            // `;`/`{`/`}` through the terminating `;`.
            let start = bytes[..at]
                .iter()
                .rposition(|&b| matches!(b, b';' | b'{' | b'}'))
                .map_or(0, |p| p + 1);
            // Stop forward at a brace too: `match file.flush() { .. }`
            // hands its result onward and must not absorb the next
            // statement's text.
            let end = code[at..]
                .find([';', '{', '}'])
                .map_or(code.len(), |p| at + p);
            let stmt = &code[start..end];
            if stmt.contains("let _ =") || stmt.contains(".ok()") {
                ctx.push(
                    at,
                    "io-fallible",
                    format!(
                        "result of `{}..)` is discarded on the durability path; a \
                         swallowed IO error here acks a write the disk never took — \
                         propagate it (or annotate with `// lint: allow(io-fallible, \
                         why the loss is safe)`)",
                        needle
                    ),
                );
            }
        }
    }
}

/// `no-alloc-in-kernel`, token-aware: `.collect()`, `.to_vec()` (both
/// including turbofish forms like `.collect::<Vec<u32>>()`), and
/// `Vec::new`.
fn alloc_rules(ctx: &mut FileCtx, model: &FileModel) {
    let code = ctx.scrubbed.code.clone();
    let toks = &model.toks;
    let txt = |i: usize| -> &str { toks.get(i).map(|t| &code[t.start..t.end]).unwrap_or("") };
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let name = txt(i);
        let method = i > 0 && txt(i - 1) == ".";
        if method && matches!(name, "collect" | "to_vec") {
            ctx.push(
                tok.start,
                "no-alloc-in-kernel",
                format!(
                    "`.{name}(..)` allocates inside a hot kernel/steal-loop file; hoist \
                     the allocation to the caller, or annotate a sanctioned setup \
                     cost with `// lint: allow(no-alloc-in-kernel, why)`"
                ),
            );
        }
        if name == "Vec" && txt(i + 1) == "::" && txt(i + 2) == "new" {
            ctx.push(
                tok.start,
                "no-alloc-in-kernel",
                "`Vec::new` allocates inside a hot kernel/steal-loop file; hoist \
                 the allocation to the caller, or annotate a sanctioned setup \
                 cost with `// lint: allow(no-alloc-in-kernel, why)`"
                    .to_string(),
            );
        }
    }
}

/// `wire-exhaustive`: every `u8` opcode constant in `mod op` must be
/// matched in a `decode` function of the same file, and (when DESIGN.md
/// is supplied) documented there.
fn wire_exhaustive(ctx: &mut FileCtx, model: &FileModel, design: Option<&str>) {
    let code = ctx.scrubbed.code.clone();
    // Idents appearing in any non-test `decode` body.
    let mut decode_idents: Vec<&str> = Vec::new();
    for f in &model.fns {
        if f.name != "decode" || f.is_test {
            continue;
        }
        for t in &model.toks[f.body.0..f.body.1.min(model.toks.len())] {
            if t.kind == TokKind::Ident {
                decode_idents.push(&code[t.start..t.end]);
            }
        }
    }
    for c in &model.consts {
        if !c.is_u8 || c.mods.last().map(String::as_str) != Some("op") {
            continue;
        }
        if !decode_idents.iter().any(|i| *i == c.name) {
            ctx.push_at(
                c.line,
                1,
                "wire-exhaustive",
                format!(
                    "opcode `op::{}` is declared but matched in no `decode` fn; a frame \
                     carrying it would fail as UnknownOpcode despite being a declared \
                     message",
                    c.name
                ),
            );
        }
        if let Some(doc) = design {
            if !contains_word(doc, &c.name) {
                ctx.push_at(
                    c.line,
                    1,
                    "wire-exhaustive",
                    format!("opcode `op::{}` is not documented in DESIGN.md", c.name),
                );
            }
        }
    }
}

/// Cross-file rules: lock-order and the request-path panic audit.
fn graph_rules(ctxs: &mut [FileCtx], models: &[FileModel], cfg: &LockConfig) {
    let analysis = callgraph::analyze(models, cfg);
    fn idx_of(ctxs: &[FileCtx], file: &str) -> Option<usize> {
        ctxs.iter().position(|c| c.path == file)
    }

    for v in &analysis.lock_violations {
        let Some(i) = idx_of(ctxs, &v.file) else {
            continue;
        };
        ctxs[i].push(
            v.at,
            "lock-order",
            format!(
                "acquires `{}` while holding `{}`, against the declared DAG \
                 (crates/xtask/lockorder.toml); static acquisition path: {}",
                v.to,
                v.from,
                v.path.join(" -> ")
            ),
        );
    }

    for p in &analysis.panics {
        // Unwrap/expect/panic-macro sites inside the token-level
        // `no-unwrap` scope are already policed (and justified) there;
        // this rule adds reachability context for everything else —
        // notably `[]`-indexing, and whole files (crates/core/src/
        // engine/) the token rule does not cover.
        let covered_by_no_unwrap = Scope::no_unwrap(&p.file)
            && matches!(
                p.kind,
                PanicKind::Unwrap | PanicKind::Expect | PanicKind::Macro
            );
        if covered_by_no_unwrap {
            continue;
        }
        let Some(i) = idx_of(ctxs, &p.file) else {
            continue;
        };
        ctxs[i].push(
            p.at,
            "no-panic-on-request-path",
            format!(
                "{} can panic and is reachable from request entry `{}` (static call \
                 path: {}); return a typed error, restructure without the panic \
                 source, or annotate with `// lint: allow(no-panic-on-request-path, \
                 why it cannot fire)`",
                p.what,
                p.chain.first().map(String::as_str).unwrap_or("?"),
                p.chain.join(" -> ")
            ),
        );
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut offset = 0;
    while let Some(at) = haystack[offset..].find(needle) {
        out.push(offset + at);
        offset += at + needle.len();
    }
    out
}

fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut offset = 0;
    while let Some(at) = text[offset..].find(word) {
        let start = offset + at;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        offset = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_flagged_in_scope_only() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_source("crates/server/src/server.rs", src).len(), 1);
        assert_eq!(lint_source("crates/core/src/engine.rs", src).len(), 0);
        assert_eq!(lint_source("crates/core/src/query/topk.rs", src).len(), 1);
        assert_eq!(lint_source("crates/bench/src/workload.rs", src).len(), 1);
        assert_eq!(
            lint_source("crates/bench/src/bin/serve_load.rs", src).len(),
            1
        );
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f() {\n    // lint: allow(no-unwrap, infallible: len checked above)\n    x.unwrap();\n}\n";
        assert_eq!(lint_source("crates/server/src/server.rs", src), vec![]);
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "fn f() {\n    // lint: allow(no-unwrap)\n    x.unwrap();\n}\n";
        let f = lint_source("crates/server/src/server.rs", src);
        assert!(f.iter().any(|f| f.rule == "malformed-allow"));
        assert!(f.iter().any(|f| f.rule == "no-unwrap"), "not suppressed");
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let src = "// lint: allow(no-such-rule, because)\nfn f() {}\n";
        let f = lint_source("crates/server/src/server.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "malformed-allow");
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); panic!(\"t\"); }\n}\n";
        assert_eq!(lint_source("crates/server/src/server.rs", src), vec![]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { let s = \"x.unwrap()\"; } // panic! here\n";
        assert_eq!(lint_source("crates/server/src/server.rs", src), vec![]);
    }

    #[test]
    fn raw_sync_imports_flagged() {
        let grouped = "use std::sync::{Arc, Mutex};\n";
        let f = lint_source("crates/core/src/vkg.rs", grouped);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-raw-sync");
        let arc_only = "use std::sync::{Arc, PoisonError};\nuse std::sync::mpsc;\n";
        assert_eq!(lint_source("crates/core/src/vkg.rs", arc_only), vec![]);
        let pl = "use parking_lot::RwLock;\n";
        assert_eq!(lint_source("crates/core/src/vkg.rs", pl).len(), 1);
        assert_eq!(lint_source("crates/sync/src/passthrough.rs", pl), vec![]);
    }

    #[test]
    fn io_fallible_statement_scoped_on_durability_path() {
        let discard = "fn f(file: &mut std::fs::File) {\n    let _ = file.flush();\n}\n";
        let f = lint_source("crates/core/src/wal/mod.rs", discard);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "io-fallible");
        let swallow = "fn f(file: &mut std::fs::File) {\n    file.sync_data().ok();\n}\n";
        assert_eq!(lint_source("crates/core/src/wal/mod.rs", swallow).len(), 1);
        let propagated = "fn f(file: &mut std::fs::File) -> std::io::Result<()> {\n    \
                          file.flush()?;\n    Ok(())\n}\n";
        assert_eq!(
            lint_source("crates/core/src/wal/mod.rs", propagated),
            vec![]
        );
        // A `match` hands the result onward; the statement scan must
        // not absorb a later statement's discard.
        let matched = "fn f(file: &mut std::fs::File) -> bool {\n    \
                       match file.flush() {\n    Ok(()) => true,\n    Err(_) => false,\n    }\n}\n\
                       fn g() { let _ = 1; }\n";
        assert_eq!(lint_source("crates/core/src/wal/mod.rs", matched), vec![]);
        // Out of scope: the same discard off the durability path is
        // someone else's judgement call.
        assert_eq!(lint_source("crates/server/src/server.rs", discard), vec![]);
    }

    #[test]
    fn relaxed_needs_justification() {
        let bare = "fn f(a: &A) { a.x.load(Ordering::Relaxed); }\n";
        let f = lint_source("crates/server/src/queue.rs", bare);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "relaxed-justify");
        let justified =
            "fn f(a: &A) {\n    // relaxed: pure statistic\n    a.x.load(Ordering::Relaxed);\n}\n";
        assert_eq!(lint_source("crates/server/src/queue.rs", justified), vec![]);
        let same_line = "fn f(a: &A) { a.x.load(Ordering::Relaxed); // relaxed: stat\n}\n";
        assert_eq!(lint_source("crates/server/src/queue.rs", same_line), vec![]);
    }

    #[test]
    fn relaxed_justification_is_statement_attached() {
        // A justification does not leak past its two-line attachment
        // window into later statements.
        let leaky = "fn f(a: &A) {\n\
                     // relaxed: stat\n\
                     a.x.load(Ordering::Relaxed);\n\
                     let y = 1;\n\
                     let z = y;\n\
                     a.y.load(Ordering::Relaxed);\n\
                     }\n";
        let f = lint_source("crates/server/src/queue.rs", leaky);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
        // Every operand of one long statement needs its own comment
        // *after* the previous operand …
        let struct_lit = "fn f(a: &A) -> S {\n\
                          S {\n\
                          // relaxed: stat one\n\
                          x: a.x.load(Ordering::Relaxed),\n\
                          y: a.y.load(Ordering::Relaxed),\n\
                          }\n\
                          }\n";
        let f = lint_source("crates/server/src/queue.rs", struct_lit);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
        // … and is clean when each one has it.
        let each = "fn f(a: &A) -> S {\n\
                    S {\n\
                    // relaxed: stat one\n\
                    x: a.x.load(Ordering::Relaxed),\n\
                    // relaxed: stat two\n\
                    y: a.y.load(Ordering::Relaxed),\n\
                    }\n\
                    }\n";
        assert_eq!(lint_source("crates/server/src/queue.rs", each), vec![]);
    }

    #[test]
    fn seqcst_needs_justification_outside_sync() {
        let bare = "fn f(a: &A) { a.x.store(true, Ordering::SeqCst); }\n";
        let f = lint_source("crates/server/src/server.rs", bare);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "seqcst-justify");
        let justified = "fn f(a: &A) {\n    // seqcst: drain flag must totally order with admits\n    a.x.store(true, Ordering::SeqCst);\n}\n";
        assert_eq!(
            lint_source("crates/server/src/server.rs", justified),
            vec![]
        );
        // crates/sync may SeqCst freely (the model runtime is built on it).
        assert_eq!(lint_source("crates/sync/src/model.rs", bare), vec![]);
        // Acquire/Release need no comment anywhere.
        let acqrel =
            "fn f(a: &A) { a.x.load(Ordering::Acquire); a.x.store(1, Ordering::Release); }\n";
        assert_eq!(lint_source("crates/server/src/queue.rs", acqrel), vec![]);
    }

    #[test]
    fn truncating_casts_only_in_decode_files() {
        let src = "fn f(x: usize) -> u32 { x as u32 }\n";
        let f = lint_source("crates/server/src/wire.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-truncating-cast");
        assert_eq!(lint_source("crates/server/src/server.rs", src), vec![]);
        // Widening casts are fine even in decode files.
        let widen = "fn f(x: u32) -> u64 { x as u64 }\n";
        assert_eq!(lint_source("crates/server/src/wire.rs", widen), vec![]);
    }

    #[test]
    fn instant_now_flagged_in_decode_files() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let f = lint_source("crates/server/src/protocol.rs", src);
        // Decode files get both the determinism rule and the clock-seam
        // rule — they police different properties of the same call.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.rule == "no-instant-now"));
        assert!(f.iter().any(|f| f.rule == "no-raw-timing"));
    }

    #[test]
    fn raw_timing_flagged_outside_clock_seam() {
        let src = "fn f() { let t = Instant::now(); let w = SystemTime::now(); }\n";
        let f = lint_source("crates/core/src/engine/shard.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "no-raw-timing"));
        // The seam's own implementation and the bench binaries are out
        // of scope; integration tests under `tests/` are too.
        assert_eq!(lint_source("crates/obs/src/clock.rs", src), vec![]);
        assert_eq!(
            lint_source("crates/bench/src/bin/serve_load.rs", src),
            vec![]
        );
        assert_eq!(lint_source("tests/end_to_end.rs", src), vec![]);
        let allowed =
            "fn f() {\n    // lint: allow(no-raw-timing, pacing needs raw monotonic time)\n    \
                       let t = Instant::now();\n}\n";
        assert_eq!(
            lint_source("crates/core/src/engine/shard.rs", allowed),
            vec![]
        );
    }

    #[test]
    fn alloc_flagged_in_kernel_files_only() {
        let src = "fn f() { let v: Vec<u32> = it.collect(); let w = s.to_vec(); }\n";
        let f = lint_source("crates/core/src/geometry/kernels.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "no-alloc-in-kernel"));
        assert_eq!(lint_source("crates/sync/src/pool.rs", src).len(), 2);
        assert_eq!(
            lint_source("crates/core/src/geometry/points.rs", src),
            vec![]
        );
        let allowed = "fn f() {\n    // lint: allow(no-alloc-in-kernel, slot setup)\n    \
                       let v = Vec::new();\n}\n";
        assert_eq!(
            lint_source("crates/core/src/geometry/kernels.rs", allowed),
            vec![]
        );
    }

    #[test]
    fn alloc_rule_sees_through_turbofish() {
        // The lexer-gap satellite: `.collect::<Vec<u32>>()` must fire
        // exactly like `.collect()` (the old needle missed it).
        let src = "fn f() { let v = it.collect::<Vec<u32>>(); }\n";
        let f = lint_source("crates/core/src/geometry/kernels.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-alloc-in-kernel");
    }

    #[test]
    fn lock_order_inversion_flagged_with_path() {
        let src = "impl E {\n\
                   fn bad(&self) {\n\
                   let log = self.crack_log.lock();\n\
                   let s = self.state.write();\n\
                   }\n\
                   }\n";
        let f = lint_source("crates/core/src/engine/shard.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-order");
        assert!(f[0].message.contains("vkg.cracklog"), "{}", f[0].message);
        assert!(f[0].message.contains("E::bad"), "{}", f[0].message);
        // The sanctioned order is clean.
        let ok = "impl E {\n\
                  fn good(&self) {\n\
                  let s = self.state.write();\n\
                  let log = self.crack_log.lock();\n\
                  }\n\
                  }\n";
        assert_eq!(lint_source("crates/core/src/engine/shard.rs", ok), vec![]);
    }

    #[test]
    fn request_path_panic_flagged_with_chain() {
        let src = "fn worker_loop() { helper(); }\n\
                   fn helper(xs: &[u32]) -> u32 { xs[0] }\n\
                   fn not_reachable(ys: &[u32]) -> u32 { ys[1] }\n";
        let f = lint_source("crates/server/src/server.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-panic-on-request-path");
        assert_eq!(f[0].line, 2);
        assert!(
            f[0].message.contains("worker_loop -> helper"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn wire_exhaustive_checks_decode_and_design() {
        let src = "pub mod op {\n\
                   pub const A: u8 = 0x01;\n\
                   pub const B: u8 = 0x02;\n\
                   }\n\
                   impl Request {\n\
                   pub fn decode(x: u8) -> Option<u8> { match x { op::A => Some(x), _ => None } }\n\
                   }\n";
        let files = vec![("crates/server/src/protocol.rs".to_string(), src.to_string())];
        // Without DESIGN.md: only the decode check runs.
        let f = lint_files(&files, &default_config(), None).findings;
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wire-exhaustive");
        assert_eq!(f[0].line, 3, "B is the undecodable opcode");
        // With DESIGN.md mentioning only A, B is flagged twice.
        let f = lint_files(&files, &default_config(), Some("opcode A is documented")).findings;
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "wire-exhaustive" && x.line == 3));
    }

    #[test]
    fn unused_allow_surfaces_in_report() {
        let src = "fn f() {\n    // lint: allow(no-unwrap, stale reason)\n    let x = 1;\n}\n";
        let files = vec![("crates/server/src/server.rs".to_string(), src.to_string())];
        let report = lint_files(&files, &default_config(), None);
        assert!(report.findings.is_empty());
        assert_eq!(report.unused_allows.len(), 1, "{:?}", report.unused_allows);
        assert_eq!(report.unused_allows[0].rule, "unused-allow");
        // A used allow is not reported.
        let src = "fn f() {\n    // lint: allow(no-unwrap, checked)\n    x.unwrap();\n}\n";
        let files = vec![("crates/server/src/server.rs".to_string(), src.to_string())];
        let report = lint_files(&files, &default_config(), None);
        assert!(report.findings.is_empty() && report.unused_allows.is_empty());
    }

    #[test]
    fn finding_renders_clickable_and_github() {
        let f = Finding {
            file: "crates/server/src/wire.rs".into(),
            line: 7,
            col: 3,
            rule: "no-unwrap",
            message: "boom".into(),
        };
        assert_eq!(f.render(), "crates/server/src/wire.rs:7:3: no-unwrap: boom");
        assert!(f
            .render_github()
            .starts_with("::error file=crates/server/src/wire.rs,line=7"));
        assert_eq!(f.baseline_key(), "crates/server/src/wire.rs:7:no-unwrap");
    }
}
