//! Blocked distance kernels over contiguous [`PointSet`] rows.
//!
//! The hot loops of the paper — candidate evaluation inside top-k
//! refinement (§V, Algorithm 3), contour sweeps, and MBR construction —
//! all reduce to "squared Euclidean distance from many stored points to
//! one query point". This module provides three tiers:
//!
//! * a **scalar reference** ([`scalar_distances_sq`]) that evaluates
//!   the textbook `Σ (aᵢ − bᵢ)²` per point — the exact pre-kernel
//!   formula, kept both for testing and as the bit-identical serial
//!   path;
//! * a **blocked kernel** ([`blocked_distances_sq`]) using the
//!   `|p|² − 2·p·q + |q|²` decomposition with the per-point norms
//!   cached in [`PointSet`] and a 4-wide manually unrolled dot
//!   product, trading exact bit-identity (≤ 1e-9 relative error,
//!   property-tested) for roughly half the arithmetic and much better
//!   instruction-level parallelism;
//! * **pooled dispatchers** ([`distances_sq`], [`par_mbr_of`]) that
//!   split the id list over a [`Pool`] — a serial pool (width 1)
//!   always takes the scalar path, so serial results never change.
//!
//! This file is under the `no-alloc-in-kernel` lint (DESIGN.md §3.4):
//! kernels must not allocate per call, save for the explicitly waived
//! chunk-slot setup in the pooled dispatchers.

use vkg_sync::pool::Pool;
use vkg_sync::Mutex;

use super::mbr::Mbr;
use super::points::PointSet;

/// Smallest `points × dim` work size worth dispatching a distance batch
/// to the pool. Gating on total floating-point work rather than point
/// count keeps low-dimensional batches — where each point is cheap —
/// from paying thread-coordination overhead that the arithmetic cannot
/// amortise (the `BENCH_core.json` jl regression was exactly this
/// mistake: dispatch decided by row count alone).
pub const DISTANCES_PAR_THRESHOLD: usize = 1 << 13;

/// Smallest `points × dim` work size worth dispatching an MBR sweep to
/// the pool. An MBR visit is two compares per coordinate — cheaper than
/// a distance — but the same work-based gate keeps the dispatch
/// decision honest on small inputs.
pub const MBR_PAR_THRESHOLD: usize = 1 << 13;

/// Minimum points per parallel chunk, so chunk bookkeeping stays noise.
const MIN_CHUNK: usize = 512;

/// Scalar reference: `out[i] = Σ (points[ids[i]][c] − q[c])²`.
///
/// This is byte-for-byte the evaluation order of
/// [`PointSet::distance_sq`], the pre-kernel serial code — width-1
/// pools route here so serial results stay bit-identical.
pub fn scalar_distances_sq(points: &PointSet, ids: &[u32], q: &[f64], out: &mut [f64]) {
    debug_assert_eq!(ids.len(), out.len());
    for (o, &id) in out.iter_mut().zip(ids) {
        *o = points.distance_sq(id, q);
    }
}

/// Blocked kernel: `out[i] = |p|² − 2·p·q + |q|²` with cached norms
/// and a 4-wide unrolled dot product. Clamped at zero (the
/// decomposition can round a tiny distance negative).
pub fn blocked_distances_sq(points: &PointSet, ids: &[u32], q: &[f64], out: &mut [f64]) {
    debug_assert_eq!(ids.len(), out.len());
    let q_norm_sq: f64 = dot4(q, q);
    let dim = points.dim();
    let coords = points.coords();
    let norms = points.norms_sq();
    for (o, &id) in out.iter_mut().zip(ids) {
        let i = id as usize * dim;
        let row = &coords[i..i + dim];
        let d = norms[id as usize] - 2.0 * dot4(row, q) + q_norm_sq;
        *o = d.max(0.0);
    }
}

/// Batched squared distances for `ids`, written id-aligned into `out`.
///
/// Serial pools take the exact scalar path; wider pools split the id
/// list into chunks and evaluate them with the blocked kernel on the
/// pool's workers. `ids` and `out` must be the same length.
pub fn distances_sq(pool: &Pool, points: &PointSet, ids: &[u32], q: &[f64], out: &mut [f64]) {
    assert_eq!(ids.len(), out.len(), "ids/out length mismatch");
    if pool.is_serial() {
        scalar_distances_sq(points, ids, q, out);
        return;
    }
    let n = ids.len();
    if n * points.dim() < DISTANCES_PAR_THRESHOLD {
        blocked_distances_sq(points, ids, q, out);
        return;
    }
    let chunks = (pool.width() * 4).min(n / MIN_CHUNK).max(1);
    let per = n.div_ceil(chunks);
    // Disjoint output windows, one mutex per chunk so workers get
    // `&mut` access without unsafe; every lock is uncontended.
    // lint: allow(no-alloc-in-kernel, one slot vec per pooled call is the sanctioned setup cost)
    let slots: Vec<Mutex<&mut [f64]>> = out.chunks_mut(per).map(Mutex::new).collect();
    pool.run(slots.len(), |c| {
        let start = c * per;
        let mut window = slots[c].lock();
        let len = window.len();
        blocked_distances_sq(points, &ids[start..start + len], q, &mut window);
    });
}

/// The minimum bounding region of `ids`, computed over the pool.
///
/// Per-chunk partial MBRs are merged at the barrier; min/max merging
/// is order-independent, so the result is identical at every width
/// (and a serial pool runs the exact sequential sweep).
pub fn par_mbr_of(pool: &Pool, points: &PointSet, ids: &[u32]) -> Mbr {
    if pool.is_serial() || ids.len() * points.dim() < MBR_PAR_THRESHOLD {
        return points.mbr_of(ids);
    }
    let merged = Mutex::new(Mbr::empty(points.dim()));
    pool.run_chunked(ids.len(), MIN_CHUNK, |start, end| {
        let mut local = Mbr::empty(points.dim());
        for &id in &ids[start..end] {
            local.include_point(points.point(id));
        }
        merged.lock().include_mbr(&local);
    });
    let out = *merged.lock();
    out
}

/// 4-wide unrolled dot product. Four independent accumulators let the
/// CPU overlap the multiply-adds; the pairwise reduction at the end
/// keeps the summation tree fixed so results are deterministic.
#[inline]
fn dot4(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i + 4 <= n {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut tail = 0.0;
    while i < n {
        tail += a[i] * b[i];
        i += 1;
    }
    (s0 + s2) + (s1 + s3) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(dim: usize, n: usize) -> (PointSet, Vec<f64>) {
        // Deterministic pseudo-random coordinates (xorshift).
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 100.0 - 10.0
        };
        let coords: Vec<f64> = (0..n * dim).map(|_| next()).collect();
        let q: Vec<f64> = (0..dim).map(|_| next()).collect();
        (PointSet::from_rows(dim, coords), q)
    }

    #[test]
    fn blocked_matches_scalar_within_tolerance() {
        for dim in [1, 2, 3, 4, 5, 6, 7, 8] {
            let (ps, q) = sample(dim, 64);
            let ids: Vec<u32> = (0..64).collect();
            let mut scalar = vec![0.0; 64];
            let mut blocked = vec![0.0; 64];
            scalar_distances_sq(&ps, &ids, &q, &mut scalar);
            blocked_distances_sq(&ps, &ids, &q, &mut blocked);
            for (s, b) in scalar.iter().zip(&blocked) {
                let tol = 1e-9 * s.abs().max(1.0);
                assert!((s - b).abs() <= tol, "dim {dim}: {s} vs {b}");
            }
        }
    }

    #[test]
    fn serial_pool_is_bit_identical_to_scalar() {
        let (ps, q) = sample(6, 100);
        let ids: Vec<u32> = (0..100).collect();
        let mut reference = vec![0.0; 100];
        for (o, &id) in reference.iter_mut().zip(&ids) {
            *o = ps.distance_sq(id, &q);
        }
        let mut out = vec![0.0; 100];
        distances_sq(&Pool::serial(), &ps, &ids, &q, &mut out);
        assert_eq!(out, reference, "width 1 must be the exact serial path");
    }

    #[test]
    fn pooled_dispatch_covers_large_inputs() {
        let n = 4096 + 17;
        assert!(n * 4 >= DISTANCES_PAR_THRESHOLD, "must exercise dispatch");
        let (ps, q) = sample(4, n);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut serial = vec![0.0; n];
        scalar_distances_sq(&ps, &ids, &q, &mut serial);
        let mut pooled = vec![0.0; n];
        distances_sq(&Pool::new(4), &ps, &ids, &q, &mut pooled);
        for (s, b) in serial.iter().zip(&pooled) {
            assert!((s - b).abs() <= 1e-9 * s.abs().max(1.0));
        }
    }

    #[test]
    fn small_work_skips_pool_dispatch() {
        // Below the work threshold a wide pool still answers (via the
        // inline blocked kernel) — and within the blocked tolerance.
        let n = 256;
        let dim = 4;
        assert!(n * dim < DISTANCES_PAR_THRESHOLD);
        let (ps, q) = sample(dim, n);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut serial = vec![0.0; n];
        scalar_distances_sq(&ps, &ids, &q, &mut serial);
        let mut pooled = vec![0.0; n];
        distances_sq(&Pool::new(4), &ps, &ids, &q, &mut pooled);
        for (s, b) in serial.iter().zip(&pooled) {
            assert!((s - b).abs() <= 1e-9 * s.abs().max(1.0));
        }
    }

    #[test]
    fn par_mbr_matches_serial_sweep() {
        let n = 4096;
        assert!(n * 3 >= MBR_PAR_THRESHOLD, "must exercise dispatch");
        let (ps, _) = sample(3, n);
        let ids: Vec<u32> = (0..n as u32).collect();
        let serial = ps.mbr_of(&ids);
        let pooled = par_mbr_of(&Pool::new(4), &ps, &ids);
        for axis in 0..3 {
            assert_eq!(serial.min(axis), pooled.min(axis));
            assert_eq!(serial.max(axis), pooled.max(axis));
        }
    }

    #[test]
    fn dot4_handles_every_tail_length() {
        for n in 0..9 {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 - 1.0).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot4(&a, &b) - naive).abs() < 1e-12, "n={n}");
        }
    }
}
