//! TransE: translating embeddings for multi-relational data (Bordes et
//! al., NIPS 2013 — the paper's reference [6] and default algorithm 𝒜).
//!
//! TransE learns vectors such that `h + r ≈ t` for observed triples, by
//! minimizing the margin-based ranking loss
//!
//! ```text
//!   L = Σ_{(h,r,t) ∈ E} Σ_{(h',r,t') ∈ corrupt(h,r,t)}
//!         [ γ + d(h + r, t) − d(h' + r, t') ]₊
//! ```
//!
//! with stochastic gradient descent, uniform negative sampling (corrupt
//! the head or the tail, never both), and entity vectors projected to the
//! unit ball after every epoch — all as in the original paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vkg_kg::{EntityId, KnowledgeGraph, RelationId};

use crate::store::EmbeddingStore;
use crate::vector::normalize;

/// Hyper-parameters for [`TransE::train`].
#[derive(Debug, Clone)]
pub struct TransEConfig {
    /// Embedding dimensionality `d` (paper uses 50–100).
    pub dim: usize,
    /// Number of passes over the training triples.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Ranking margin γ.
    pub margin: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransEConfig {
    fn default() -> Self {
        Self {
            dim: 50,
            epochs: 50,
            learning_rate: 0.01,
            margin: 1.0,
            seed: 0x7261_6e73, // "rans"
        }
    }
}

impl TransEConfig {
    /// A fast configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            dim: 16,
            epochs: 20,
            ..Self::default()
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Mean margin-ranking loss per triple, one entry per epoch.
    pub epoch_loss: Vec<f64>,
}

impl TrainStats {
    /// Loss of the final epoch (`None` if no epochs ran).
    pub fn final_loss(&self) -> Option<f64> {
        self.epoch_loss.last().copied()
    }
}

/// The TransE trainer.
#[derive(Debug)]
pub struct TransE {
    cfg: TransEConfig,
}

impl TransE {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(cfg: TransEConfig) -> Self {
        Self { cfg }
    }

    /// Trains embeddings on all triples of `graph`.
    ///
    /// Returns the store and per-epoch loss telemetry.
    pub fn train(&self, graph: &KnowledgeGraph) -> (EmbeddingStore, TrainStats) {
        let n = graph.num_entities();
        let m = graph.num_relations();
        let d = self.cfg.dim;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        let mut store = EmbeddingStore::zeros(n, m, d);
        init_uniform(&mut store, &mut rng);

        let triples: Vec<_> = graph.triples().to_vec();
        let mut order: Vec<usize> = (0..triples.len()).collect();
        let mut epoch_loss = Vec::with_capacity(self.cfg.epochs);

        for _ in 0..self.cfg.epochs {
            // Project entity vectors onto the unit ball (TransE line 5).
            for e in 0..n {
                normalize(store.entity_mut(EntityId(e as u32)));
            }
            shuffle(&mut order, &mut rng);
            let mut total = 0.0;
            for &ti in &order {
                let t = triples[ti];
                let (nh, nt) = corrupt(graph, t.head, t.relation, t.tail, &mut rng);
                total += self.sgd_step(&mut store, t.head, t.relation, t.tail, nh, nt);
            }
            let denom = triples.len().max(1) as f64;
            epoch_loss.push(total / denom);
        }

        (store, TrainStats { epoch_loss })
    }

    /// One margin-ranking SGD step; returns the (pre-step) hinge loss.
    fn sgd_step(
        &self,
        store: &mut EmbeddingStore,
        h: EntityId,
        r: RelationId,
        t: EntityId,
        nh: EntityId,
        nt: EntityId,
    ) -> f64 {
        let d = store.dim();
        let pos = triple_score(store, h, r, t);
        let neg = triple_score(store, nh, r, nt);
        let loss = (self.cfg.margin + pos - neg).max(0.0);
        if loss <= 0.0 {
            return 0.0;
        }
        let lr = self.cfg.learning_rate;

        // Gradient of d(h+r,t)² = ‖h+r−t‖²: ∂/∂h = 2(h+r−t), ∂/∂t = −2(h+r−t).
        let mut grad_pos = vec![0.0; d];
        {
            let (hv, rv, tv) = (store.entity(h), store.relation(r), store.entity(t));
            for i in 0..d {
                grad_pos[i] = 2.0 * (hv[i] + rv[i] - tv[i]);
            }
        }
        let mut grad_neg = vec![0.0; d];
        {
            let (hv, rv, tv) = (store.entity(nh), store.relation(r), store.entity(nt));
            for i in 0..d {
                grad_neg[i] = 2.0 * (hv[i] + rv[i] - tv[i]);
            }
        }

        // Descend the positive distance, ascend the negative distance.
        for i in 0..d {
            store.entity_mut(h)[i] -= lr * grad_pos[i];
            store.entity_mut(t)[i] += lr * grad_pos[i];
            store.entity_mut(nh)[i] += lr * grad_neg[i];
            store.entity_mut(nt)[i] -= lr * grad_neg[i];
            store.relation_mut(r)[i] -= lr * (grad_pos[i] - grad_neg[i]);
        }
        loss
    }
}

/// Squared-L2 TransE score (used during training; queries use plain L2,
/// which is order-equivalent).
fn triple_score(store: &EmbeddingStore, h: EntityId, r: RelationId, t: EntityId) -> f64 {
    let d = store.dim();
    let (hv, rv, tv) = (store.entity(h), store.relation(r), store.entity(t));
    let mut s = 0.0;
    for i in 0..d {
        let x = hv[i] + rv[i] - tv[i];
        s += x * x;
    }
    s
}

/// Uniform initialization in `[-6/√d, 6/√d]` with relation vectors
/// normalized once, as in the original TransE paper.
fn init_uniform<R: Rng>(store: &mut EmbeddingStore, rng: &mut R) {
    let d = store.dim();
    let bound = 6.0 / (d as f64).sqrt();
    for e in 0..store.num_entities() {
        for v in store.entity_mut(EntityId(e as u32)).iter_mut() {
            *v = rng.gen_range(-bound..bound);
        }
    }
    for r in 0..store.num_relations() {
        let row = store.relation_mut(RelationId(r as u32));
        for v in row.iter_mut() {
            *v = rng.gen_range(-bound..bound);
        }
        normalize(row);
    }
}

/// Fisher–Yates shuffle (avoids pulling in `rand`'s slice extension trait
/// just for this).
fn shuffle<R: Rng>(order: &mut [usize], rng: &mut R) {
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
}

/// Corrupts a triple by replacing its head or tail with a uniformly random
/// entity, redrawing if the corrupted triple happens to exist in `E`
/// (the "filtered" negative sampling of the TransE paper).
fn corrupt<R: Rng>(
    graph: &KnowledgeGraph,
    h: EntityId,
    r: RelationId,
    t: EntityId,
    rng: &mut R,
) -> (EntityId, EntityId) {
    let n = graph.num_entities() as u32;
    for _ in 0..16 {
        let candidate = EntityId(rng.gen_range(0..n));
        let (nh, nt) = if rng.gen_bool(0.5) {
            (candidate, t)
        } else {
            (h, candidate)
        };
        if !graph.has_edge(nh, r, nt) {
            return (nh, nt);
        }
    }
    // Degenerate graphs (nearly complete) fall through; return as-is.
    (h, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small chain graph: a_i --next--> a_{i+1}, plus a "type" relation.
    fn chain_graph(n: usize) -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        for i in 0..n.saturating_sub(1) {
            g.add_fact(&format!("a{i}"), "next", &format!("a{}", i + 1))
                .unwrap();
        }
        for i in 0..n {
            g.add_fact(&format!("a{i}"), "is_a", "node").unwrap();
        }
        g
    }

    #[test]
    fn loss_decreases_over_training() {
        let g = chain_graph(30);
        let (_, stats) = TransE::new(TransEConfig::fast()).train(&g);
        let first = stats.epoch_loss[0];
        let last = stats.final_loss().unwrap();
        assert!(
            last < first,
            "loss did not decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn trained_triples_score_better_than_random_pairs() {
        let g = chain_graph(30);
        let (store, _) = TransE::new(TransEConfig::fast()).train(&g);
        let next = g.relation_id("next").unwrap();
        let mut pos = 0.0;
        let mut neg = 0.0;
        let mut pairs = 0;
        for i in 0..25 {
            let h = g.entity_id(&format!("a{i}")).unwrap();
            let t = g.entity_id(&format!("a{}", i + 1)).unwrap();
            // Negative: skip two ahead — not an edge.
            let f = g.entity_id(&format!("a{}", i + 3));
            if let Some(f) = f {
                pos += store.triple_distance(h, next, t);
                neg += store.triple_distance(h, next, f);
                pairs += 1;
            }
        }
        assert!(pairs > 0);
        assert!(
            pos / pairs as f64 <= neg / pairs as f64,
            "positives ({pos}) should score no worse than negatives ({neg})"
        );
    }

    #[test]
    fn output_shapes_match_graph() {
        let g = chain_graph(10);
        let cfg = TransEConfig {
            dim: 8,
            epochs: 2,
            ..TransEConfig::default()
        };
        let (store, stats) = TransE::new(cfg).train(&g);
        assert_eq!(store.num_entities(), g.num_entities());
        assert_eq!(store.num_relations(), g.num_relations());
        assert_eq!(store.dim(), 8);
        assert_eq!(stats.epoch_loss.len(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = chain_graph(12);
        let (a, _) = TransE::new(TransEConfig::fast()).train(&g);
        let (b, _) = TransE::new(TransEConfig::fast()).train(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn entity_norms_bounded_after_training() {
        // Entities are re-normalized at the start of each epoch and moved
        // at most a few SGD steps after; norms must stay moderate.
        let g = chain_graph(20);
        let (store, _) = TransE::new(TransEConfig::fast()).train(&g);
        for e in 0..store.num_entities() {
            let n = crate::vector::norm(store.entity(EntityId(e as u32)));
            assert!(n < 3.0, "entity {e} norm {n} exploded");
        }
    }

    #[test]
    fn empty_graph_trains_trivially() {
        let g = KnowledgeGraph::new();
        let cfg = TransEConfig {
            dim: 4,
            epochs: 3,
            ..TransEConfig::default()
        };
        let (store, stats) = TransE::new(cfg).train(&g);
        assert_eq!(store.num_entities(), 0);
        assert_eq!(stats.epoch_loss, vec![0.0, 0.0, 0.0]);
    }
}
