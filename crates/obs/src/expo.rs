//! Human-readable text exposition of a [`MetricsSnapshot`], with a
//! lossless parser.
//!
//! One record per line, whitespace-separated (metric names therefore
//! must not contain whitespace — all workspace names are dotted
//! identifiers like `server.queue.shed`):
//!
//! ```text
//! # vkg-obs exposition v1
//! counter server.queue.shed 3
//! gauge server.queue.depth 0
//! hist server.latency_us total=120 max_us=5333 buckets=14:2,40:118
//! spans recorded=120 dropped=56
//! span id=119 op=1 shard=0 outcome=0 queue_ns=81000 lock_ns=2000 exec_ns=410000 encode_ns=3000 batch_ns=0 refine_steps=961
//! ```
//!
//! [`parse`] inverts [`render`] exactly (`parse(render(s)) == s`), which
//! the roundtrip tests pin down; unknown line kinds are an error, not
//! skipped, so a corrupted dump cannot silently read as a smaller one.

use std::fmt;

use crate::snapshot::{HistSnapshot, MetricsSnapshot};
use crate::span::{Span, SpanOutcome};

/// Version tag on the first line; bump when the format changes shape.
pub const HEADER: &str = "# vkg-obs exposition v1";

/// A parse failure: the line number (1-based) and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpoError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What was wrong.
    pub msg: &'static str,
}

impl fmt::Display for ExpoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exposition parse error at line {}: {}",
            self.line, self.msg
        )
    }
}

impl std::error::Error for ExpoError {}

/// Renders a snapshot as text. Inverted exactly by [`parse`].
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for (name, v) in &snap.counters {
        out.push_str(&format!("counter {name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("gauge {name} {v}\n"));
    }
    for (name, h) in &snap.hists {
        let buckets: Vec<String> = h.buckets.iter().map(|(i, c)| format!("{i}:{c}")).collect();
        out.push_str(&format!(
            "hist {name} total={} max_us={} buckets={}\n",
            h.total,
            h.max_us,
            buckets.join(",")
        ));
    }
    out.push_str(&format!(
        "spans recorded={} dropped={}\n",
        snap.spans_recorded, snap.spans_dropped
    ));
    for s in &snap.spans {
        out.push_str(&format!(
            "span id={} op={} shard={} outcome={} queue_ns={} lock_ns={} exec_ns={} encode_ns={} batch_ns={} refine_steps={}\n",
            s.id,
            s.op,
            s.shard,
            s.outcome as u8,
            s.queue_ns,
            s.lock_ns,
            s.exec_ns,
            s.encode_ns,
            s.batch_ns,
            s.refine_steps,
        ));
    }
    out
}

fn err<T>(line: usize, msg: &'static str) -> Result<T, ExpoError> {
    Err(ExpoError { line, msg })
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, ExpoError> {
    tok.parse().map_err(|_| ExpoError {
        line,
        msg: "expected an unsigned integer",
    })
}

/// Splits `key=value`, checking the key matches.
fn kv<'a>(tok: Option<&'a str>, key: &'static str, line: usize) -> Result<&'a str, ExpoError> {
    let Some(tok) = tok else {
        return err(line, "missing field");
    };
    match tok.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => err(line, "unexpected field name"),
    }
}

/// Parses text produced by [`render`] back into a snapshot.
pub fn parse(text: &str) -> Result<MetricsSnapshot, ExpoError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first == HEADER => {}
        _ => return err(1, "missing or unsupported header"),
    }
    let mut snap = MetricsSnapshot::default();
    let mut saw_spans_line = false;
    for (idx, raw) in lines {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let mut toks = raw.split_whitespace();
        match toks.next() {
            Some("counter") => {
                let name = toks.next().ok_or(ExpoError {
                    line,
                    msg: "counter needs a name",
                })?;
                let v = parse_u64(
                    toks.next().ok_or(ExpoError {
                        line,
                        msg: "counter needs a value",
                    })?,
                    line,
                )?;
                snap.counters.push((name.to_string(), v));
            }
            Some("gauge") => {
                let name = toks.next().ok_or(ExpoError {
                    line,
                    msg: "gauge needs a name",
                })?;
                let v = parse_u64(
                    toks.next().ok_or(ExpoError {
                        line,
                        msg: "gauge needs a value",
                    })?,
                    line,
                )?;
                snap.gauges.push((name.to_string(), v));
            }
            Some("hist") => {
                let name = toks.next().ok_or(ExpoError {
                    line,
                    msg: "hist needs a name",
                })?;
                let total = parse_u64(kv(toks.next(), "total", line)?, line)?;
                let max_us = parse_u64(kv(toks.next(), "max_us", line)?, line)?;
                let bucket_str = kv(toks.next(), "buckets", line)?;
                let mut buckets = Vec::new();
                if !bucket_str.is_empty() {
                    for pair in bucket_str.split(',') {
                        let Some((i, c)) = pair.split_once(':') else {
                            return err(line, "bucket must be idx:count");
                        };
                        let idx32 = parse_u64(i, line)?;
                        if idx32 > u64::from(u32::MAX) {
                            return err(line, "bucket index out of range");
                        }
                        buckets.push((idx32 as u32, parse_u64(c, line)?));
                    }
                }
                snap.hists.push((
                    name.to_string(),
                    HistSnapshot {
                        total,
                        max_us,
                        buckets,
                    },
                ));
            }
            Some("spans") => {
                snap.spans_recorded = parse_u64(kv(toks.next(), "recorded", line)?, line)?;
                snap.spans_dropped = parse_u64(kv(toks.next(), "dropped", line)?, line)?;
                saw_spans_line = true;
            }
            Some("span") => {
                let id = parse_u64(kv(toks.next(), "id", line)?, line)?;
                let op = parse_u64(kv(toks.next(), "op", line)?, line)?;
                let shard = parse_u64(kv(toks.next(), "shard", line)?, line)?;
                let outcome = parse_u64(kv(toks.next(), "outcome", line)?, line)?;
                if op > u64::from(u8::MAX) || shard > u64::from(u32::MAX) {
                    return err(line, "span field out of range");
                }
                snap.spans.push(Span {
                    id,
                    op: op as u8,
                    shard: shard as u32,
                    outcome: SpanOutcome::from_u8(outcome.min(255) as u8),
                    queue_ns: parse_u64(kv(toks.next(), "queue_ns", line)?, line)?,
                    lock_ns: parse_u64(kv(toks.next(), "lock_ns", line)?, line)?,
                    exec_ns: parse_u64(kv(toks.next(), "exec_ns", line)?, line)?,
                    encode_ns: parse_u64(kv(toks.next(), "encode_ns", line)?, line)?,
                    batch_ns: parse_u64(kv(toks.next(), "batch_ns", line)?, line)?,
                    refine_steps: parse_u64(kv(toks.next(), "refine_steps", line)?, line)?,
                });
            }
            _ => return err(line, "unknown record kind"),
        }
        if toks.next().is_some() {
            return err(line, "trailing tokens");
        }
    }
    if !saw_spans_line {
        return err(text.lines().count().max(1), "missing spans summary line");
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("core.cracks".to_string(), 12),
                ("server.queue.shed".to_string(), 3),
            ],
            gauges: vec![("server.queue.depth".to_string(), 0)],
            hists: vec![(
                "server.latency_us".to_string(),
                HistSnapshot {
                    total: 5,
                    max_us: 900,
                    buckets: vec![(0, 1), (40, 4)],
                },
            )],
            spans: vec![Span {
                id: 7,
                op: 1,
                shard: 2,
                outcome: SpanOutcome::Ok,
                queue_ns: 10,
                lock_ns: 20,
                exec_ns: 30,
                encode_ns: 40,
                batch_ns: 5,
                refine_steps: 50,
            }],
            spans_recorded: 8,
            spans_dropped: 1,
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let snap = sample();
        let text = render(&snap);
        assert_eq!(parse(&text), Ok(snap));
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = MetricsSnapshot::default();
        assert_eq!(parse(&render(&snap)), Ok(snap));
    }

    #[test]
    fn empty_bucket_list_roundtrips() {
        let snap = MetricsSnapshot {
            hists: vec![("h".to_string(), HistSnapshot::default())],
            ..MetricsSnapshot::default()
        };
        assert_eq!(parse(&render(&snap)), Ok(snap));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("").is_err());
        assert!(parse("counter a 1\n").is_err());
        let hdr = format!("{HEADER}\n");
        assert!(parse(&format!("{hdr}bogus x 1\nspans recorded=0 dropped=0\n")).is_err());
        assert!(parse(&format!("{hdr}counter a\nspans recorded=0 dropped=0\n")).is_err());
        assert!(parse(&format!("{hdr}counter a one\nspans recorded=0 dropped=0\n")).is_err());
        assert!(parse(&format!(
            "{hdr}counter a 1 extra\nspans recorded=0 dropped=0\n"
        ))
        .is_err());
        assert!(parse(&format!(
            "{hdr}hist h total=1 max_us=2 buckets=3\nspans recorded=0 dropped=0\n"
        ))
        .is_err());
        // Missing the spans summary line entirely.
        assert!(parse(&format!("{hdr}counter a 1\n")).is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let text = format!("{HEADER}\ncounter ok 1\nbroken\n");
        let e = parse(&text).expect_err("line 3 is invalid");
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }
}
