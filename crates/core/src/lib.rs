//! The paper's primary contribution: an **online cracking R-tree index**
//! over JL-transformed knowledge-graph embeddings, and query processing
//! for predictive top-k entity and aggregate queries.
//!
//! Module map (paper section in parentheses):
//!
//! * [`geometry`] — points in the low-dimensional index space S₂ and
//!   minimum bounding regions.
//! * [`rtree`] — the top-down bulk-loading machinery of Algorithm 1
//!   (BULKLOADCHUNK): multi-sort-order partitions, best-binary-split
//!   selection, and the two-component node-splitting cost model (§IV-B1).
//! * [`index`] — the cracking/uneven R-tree itself (§IV-C): the greedy
//!   INCREMENTALINDEXBUILD, the A*-style TOP-KSPLITSINDEXBUILD
//!   (Algorithm 2), contours (Definition 2), and a full offline bulk-load
//!   path used as the evaluation baseline.
//! * [`query`] — FINDTOP-KENTITIES (Algorithm 3, §V-A) and the
//!   COUNT/SUM/AVG/MAX/MIN estimators with martingale deviation bounds
//!   (§V-B, Theorem 4).
//! * [`snapshot`] — the immutable read side: graph + attributes +
//!   embeddings + JL transform frozen into an `Arc`-shareable
//!   [`VkgSnapshot`] that any number of readers can query lock-free.
//! * [`engine`] — the [`engine::QueryEngine`] trait every query-capable
//!   structure implements (the cracking index, the bulk-loaded R-tree,
//!   and the baselines in `vkg-baselines`), plus [`engine::IndexState`],
//!   the mutable index half, and [`engine::ShardedEngine`], which
//!   partitions it by query relationship — per-shard cracking locks and
//!   epochs, routed by hashing relation ids.
//! * [`error`] — the workspace [`VkgError`] type threaded through every
//!   fallible engine entry point.
//! * [`metrics`] — the per-facade `vkg-obs` registry and the typed
//!   handles the query paths record into (queries, refine steps,
//!   latency), plus sampling of engine-side counters into gauges.
//! * [`cache`] — the epoch-keyed semantic result cache the facade
//!   consults on its read path when [`VkgConfig::cache_capacity`] > 0:
//!   hits are validated against the exact pinned epochs and replay the
//!   filling query's crack regions, so they are provably identical to
//!   recomputation.
//! * [`wal`] — the durability layer (§3.9): a length-prefixed,
//!   checksummed, epoch-stamped write-ahead log for dynamic writes,
//!   replayed on startup with torn-tail truncation, plus the
//!   deterministic [`wal::fault::FaultPlane`] injection seam every
//!   durability touchpoint routes through.
//! * [`vkg`] — the `VirtualKnowledgeGraph` facade assembling an
//!   `Arc<VkgSnapshot>` + locked [`engine::IndexState`] into one
//!   queryable object (Definition 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod error;
pub mod geometry;
pub mod index;
pub mod metrics;
pub mod query;
pub mod rtree;
pub mod snapshot;
pub mod stats;
pub mod vkg;
pub mod wal;

pub use cache::ResultCache;
pub use config::{SplitStrategy, VkgConfig};
pub use engine::{
    shard_of_relation, Accuracy, EngineStats, IndexState, Neighbor, QueryEngine, ShardSetGuard,
    ShardedEngine,
};
pub use error::{VkgError, VkgResult};
pub use index::CrackingIndex;
pub use metrics::VkgMetrics;
pub use query::aggregate::{AggregateKind, AggregateResult, AggregateSpec};
pub use query::topk::TopKResult;
pub use snapshot::{Direction, VkgSnapshot};
pub use stats::IndexStats;
pub use vkg::{SnapRef, VirtualKnowledgeGraph, WalRecoveryReport};
pub use wal::fault::{FaultPlane, FaultSpec};
pub use wal::{WalError, WalRecord};
