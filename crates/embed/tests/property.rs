//! Property-based tests for vector algebra, the embedding store and its
//! persistence formats.

use proptest::prelude::*;
use vkg_embed::vector;
use vkg_embed::EmbeddingStore;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len..=len)
}

proptest! {
    /// Triangle inequality and symmetry for the L2 metric.
    #[test]
    fn l2_is_a_metric(a in finite_vec(8), b in finite_vec(8), c in finite_vec(8)) {
        let ab = vector::l2_distance(&a, &b);
        let ba = vector::l2_distance(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        let ac = vector::l2_distance(&a, &c);
        let cb = vector::l2_distance(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-9, "triangle violated: {ab} > {ac} + {cb}");
        prop_assert!(ab >= 0.0);
        prop_assert_eq!(vector::l2_distance(&a, &a), 0.0);
    }

    /// `l2_distance_sq` is consistent with `l2_distance`.
    #[test]
    fn squared_matches_plain(a in finite_vec(6), b in finite_vec(6)) {
        let d = vector::l2_distance(&a, &b);
        let d2 = vector::l2_distance_sq(&a, &b);
        prop_assert!((d * d - d2).abs() < 1e-6 * d2.max(1.0));
    }

    /// L1 dominates L2 and both lower-bound via Cauchy–Schwarz.
    #[test]
    fn norm_inequalities(a in finite_vec(10), b in finite_vec(10)) {
        let l1 = vector::l1_distance(&a, &b);
        let l2 = vector::l2_distance(&a, &b);
        prop_assert!(l1 + 1e-9 >= l2, "L1 {l1} < L2 {l2}");
        prop_assert!(l1 <= l2 * (10f64).sqrt() + 1e-9);
    }

    /// Normalization yields unit vectors (except the zero vector).
    #[test]
    fn normalize_unit(mut v in finite_vec(7)) {
        let n = vector::norm(&v);
        vector::normalize(&mut v);
        if n > 1e-9 {
            prop_assert!((vector::norm(&v) - 1.0).abs() < 1e-9);
        }
    }

    /// add/sub are inverse; dot is bilinear in the first argument.
    #[test]
    fn vector_algebra(a in finite_vec(5), b in finite_vec(5), s in -3.0f64..3.0) {
        let sum = vector::add(&a, &b);
        let back = vector::sub(&sum, &b);
        for (x, y) in back.iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        let scaled: Vec<f64> = a.iter().map(|x| x * s).collect();
        let lhs = vector::dot(&scaled, &b);
        let rhs = s * vector::dot(&a, &b);
        prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.abs().max(1.0));
    }

    /// Store roundtrips losslessly through the binary format, and within
    /// float-printing precision through TSV.
    #[test]
    fn store_persistence_roundtrips(
        n in 1usize..8,
        m in 1usize..4,
        dim in 1usize..10,
        seed: u64,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ents: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let rels: Vec<f64> = (0..m * dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let store = EmbeddingStore::from_raw(dim, ents, rels);

        let bin = vkg_embed::io::to_binary(&store);
        let back = vkg_embed::io::from_binary(&bin).unwrap();
        prop_assert_eq!(&back, &store);

        let mut tsv = Vec::new();
        vkg_embed::io::write_tsv(&store, &mut tsv).unwrap();
        let back = vkg_embed::io::read_tsv(tsv.as_slice()).unwrap();
        prop_assert_eq!(back, store);
    }

    /// tail/head query points invert each other: (h + r) − r = h.
    #[test]
    fn query_points_invert(dim in 1usize..12, seed: u64) {
        use rand::{Rng, SeedableRng};
        use vkg_kg::{EntityId, RelationId};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ents: Vec<f64> = (0..3 * dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let rels: Vec<f64> = (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let store = EmbeddingStore::from_raw(dim, ents, rels);
        let h = EntityId(1);
        let r = RelationId(0);
        let fwd = store.tail_query_point(h, r);
        // Pretend the tail sits exactly at h + r; then the head query
        // from there recovers h.
        let back: Vec<f64> = fwd.iter().zip(store.relation(r)).map(|(a, b)| a - b).collect();
        for (x, y) in back.iter().zip(store.entity(h)) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }
}
