//! TOP-KSPLITSINDEXBUILD (Algorithm 2): A*-style exploration of top-k
//! split choices.
//!
//! A *change candidate* is a (partial) script of split-choice indices: at
//! every decision point of the incremental build, instead of committing
//! to the locally best split, the search may take any of the `k` best
//! candidates. A script shorter than the run's decision count is
//! completed greedily (choice 0), so every state in the priority queue
//! carries an **exact** achievable cost `(c_Q, c_O)` — the weight of
//! Algorithm 2's queue. The head of the queue is popped (line 5); if its
//! script already pins every decision it "exhausts all elements"
//! (lines 11–12) and is adopted; otherwise it is expanded with the top-k
//! choices at its first free decision (lines 13–19).
//!
//! The paper notes the extra search is "affordable when the number of
//! choices is small" thanks to aggressive pruning; we bound the number of
//! queue pops (`MAX_POPS_PER_CHOICE · k + MAX_POPS_BASE`) so worst-case
//! cracking stays near-linear, falling back to the best script found.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::geometry::Mbr;
use crate::rtree::SplitCost;

use super::build::RunCost;
use super::chooser::ScriptChooser;
use super::{CrackingIndex, NodeId};

const MAX_POPS_BASE: usize = 8;
const MAX_POPS_PER_CHOICE: usize = 4;

/// Elements smaller than this multiple of the leaf capacity are cracked
/// greedily without entering the A* search: alternative splits of a
/// near-leaf partition cannot change the contour cost materially, and
/// keeping them out of the dry runs keeps converged-index queries cheap.
const SEARCH_MIN_LEAVES: usize = 8;

/// One contour change candidate: a choice script plus the exact cost of
/// its greedy completion.
#[derive(Debug, Clone, PartialEq)]
struct Candidate {
    cost: SplitCost,
    script: Vec<u8>,
    /// Branching factor at each decision point of the completed run.
    available: Vec<u8>,
}

impl Candidate {
    fn is_complete(&self) -> bool {
        self.script.len() >= self.available.len()
    }
}

impl Eq for Candidate {}

// BinaryHeap is a max-heap; invert so the cheapest candidate pops first.
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .cmp(&self.cost)
            // Prefer more-determined scripts on cost ties: they terminate
            // the search sooner at equal quality.
            .then_with(|| self.script.len().cmp(&other.script.len()))
            .then_with(|| other.script.cmp(&self.script))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Algorithm 2 over every unsplit element overlapping `q` and
/// installs the winning change candidate.
pub(crate) fn crack_topk(index: &mut CrackingIndex, q: &Mbr, k: usize) {
    let all: Vec<NodeId> = index.unsplit_elements_overlapping(q);
    if all.is_empty() {
        return;
    }
    // Only large elements enter the search; small ones crack greedily.
    let threshold = SEARCH_MIN_LEAVES * index.leaf_capacity();
    let (elements, small): (Vec<NodeId>, Vec<NodeId>) = all
        .into_iter()
        .partition(|&id| index.element_point_ids(id).len() > threshold);
    for id in small {
        index.crack_element(id, q, &mut super::chooser::GreedyChooser);
    }
    if elements.is_empty() {
        return;
    }

    let dry_run = |index: &CrackingIndex, script: &[u8]| -> Candidate {
        let mut chooser = ScriptChooser::new(script.to_vec(), k);
        let mut total = RunCost::default();
        for &id in &elements {
            let c = index.dry_run_element(id, q, &mut chooser);
            total.cq += c.cq;
            total.co += c.co;
            total.splits += c.splits;
        }
        Candidate {
            cost: SplitCost::new(total.cq, total.co),
            script: script.to_vec(),
            available: chooser.available,
        }
    };

    // Lines 1–3: seed the queue with the initial candidate.
    let mut queue: BinaryHeap<Candidate> = BinaryHeap::new();
    queue.push(dry_run(index, &[]));

    let max_pops = MAX_POPS_BASE + MAX_POPS_PER_CHOICE * k;
    let mut pops = 0usize;
    let mut winner: Option<Candidate> = None;

    // Lines 4–19: best-first expansion.
    while let Some(cand) = queue.pop() {
        pops += 1;
        if cand.is_complete() || pops >= max_pops {
            winner = Some(cand);
            break;
        }
        let pos = cand.script.len();
        let branching = usize::from(cand.available[pos]).min(k).max(1);
        for j in 0..branching {
            let mut script = cand.script.clone();
            script.push(j as u8);
            queue.push(dry_run(index, &script));
        }
    }

    // lint: allow(no-unwrap, the queue is seeded with one candidate and every non-terminal pop pushes at least one more; the loop can only exit via break with winner set)
    let winner = winner.expect("queue seeded with one candidate");
    let mut chooser = ScriptChooser::new(winner.script, k);
    for &id in &elements {
        index.crack_element(id, q, &mut chooser);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitStrategy;
    use crate::geometry::PointSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let coords: Vec<f64> = (0..n * 3).map(|_| rng.gen_range(-10.0..10.0)).collect();
        PointSet::from_rows(3, coords)
    }

    #[test]
    fn candidate_ordering_is_min_cost_first() {
        let cheap = Candidate {
            cost: SplitCost::new(1, 0.0),
            script: vec![],
            available: vec![2],
        };
        let pricey = Candidate {
            cost: SplitCost::new(2, 0.0),
            script: vec![],
            available: vec![2],
        };
        let mut heap = BinaryHeap::new();
        heap.push(pricey.clone());
        heap.push(cheap.clone());
        assert_eq!(heap.pop().unwrap().cost, cheap.cost);
    }

    #[test]
    fn ties_prefer_determined_scripts() {
        let longer = Candidate {
            cost: SplitCost::new(1, 1.0),
            script: vec![0, 1],
            available: vec![2, 2],
        };
        let shorter = Candidate {
            cost: SplitCost::new(1, 1.0),
            script: vec![0],
            available: vec![2, 2],
        };
        let mut heap = BinaryHeap::new();
        heap.push(shorter);
        heap.push(longer.clone());
        assert_eq!(heap.pop().unwrap().script, longer.script);
    }

    #[test]
    fn topk_cost_never_worse_than_greedy_for_same_query() {
        // Both methods crack for the same region; the top-k searched
        // contour must reach a (c_Q, c_O) no worse than greedy's, because
        // the greedy completion is always in the candidate set.
        let ps = random_points(4_000, 77);
        let q = Mbr::of_ball(&[1.0, 2.0, 3.0], 2.0);

        let mut greedy_idx = CrackingIndex::new(ps.clone(), 16, 8, 2.0, SplitStrategy::Greedy);
        let g_elems = greedy_idx.unsplit_elements_overlapping(&q);
        let mut g_cost = RunCost::default();
        for &id in &g_elems {
            let c = greedy_idx.crack_element(id, &q, &mut super::super::chooser::GreedyChooser);
            g_cost.cq += c.cq;
            g_cost.co += c.co;
        }

        let topk_idx = CrackingIndex::new(ps, 16, 8, 2.0, SplitStrategy::TopK { choices: 3 });
        let elements = topk_idx.unsplit_elements_overlapping(&q);
        // Reproduce the search's dry-run for the empty script (greedy) and
        // verify the search winner can only improve on it.
        let mut chooser = ScriptChooser::new(vec![], 3);
        let mut base = RunCost::default();
        for &id in &elements {
            let c = topk_idx.dry_run_element(id, &q, &mut chooser);
            base.cq += c.cq;
            base.co += c.co;
        }
        assert_eq!(base.cq, g_cost.cq);
        assert!((base.co - g_cost.co).abs() < 1e-9);
    }

    #[test]
    fn crack_topk_handles_empty_region() {
        let ps = random_points(100, 5);
        let mut idx = CrackingIndex::new(ps, 16, 8, 2.0, SplitStrategy::TopK { choices: 2 });
        let far = Mbr::of_ball(&[500.0, 500.0, 500.0], 1.0);
        idx.crack(&far);
        assert_eq!(idx.node_count(), 1);
        idx.check_invariants();
    }
}
