//! The virtual knowledge graph facade (Definition 1).
//!
//! Assembles an immutable, `Arc`-shared [`VkgSnapshot`] (graph +
//! attributes + embeddings + JL transform) with a lock-guarded
//! [`ShardedEngine`] (relation-partitioned cracking indices and their
//! query pipelines) into one queryable object. The split means the
//! locks guard **only** the index shards: any number of readers resolve
//! entities, embeddings and query points through the snapshot without
//! ever touching a lock, while a query ⟨e, r⟩ — which may crack the
//! index — serializes on *r's shard lock only*, so traffic on one hot
//! relation never stalls queries on another
//! ([`VirtualKnowledgeGraph::with_published_shard`]). Multi-relation
//! aggregates fan out across shards through the data-parallel pool and
//! merge their Theorem 4 bounds per shard
//! ([`VirtualKnowledgeGraph::aggregate_multi`]).
//!
//! Dynamic updates are **epoch-swapped**: every write takes `&self`,
//! acquires every shard lock in ascending order (single-writer; an
//! update splices the new point into every shard's tree), builds a
//! fresh snapshot, and *publishes* it by swapping the shared `Arc` and
//! bumping the epoch counters — the global epoch on every publication,
//! each shard's epoch when the publication mutated that shard's index.
//! Readers holding an older `Arc` clone keep a consistent pre-update
//! view; new readers pick up the new epoch with a single pointer load.
//! Because publication happens only under *all* shard locks, a reader
//! holding any one shard lock sees both the global epoch and its
//! shard's epoch pinned. This is the concurrency contract the serving
//! layer (`vkg-server`) extends across the process boundary. Snapshots
//! share components structurally ([`VkgSnapshot`] holds each store
//! behind its own `Arc`), so per-write cost is proportional to the
//! component the write mutates — not to the whole dataset.
//!
//! Queries follow the paper's default E′-only semantics: results never
//! include edges already in `E`, nor the query entity itself.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use vkg_embed::EmbeddingStore;
use vkg_kg::{AttributeStore, EntityId, KnowledgeGraph, RelationId};
use vkg_obs::{Clock, MetricsSnapshot, Registry};
use vkg_sync::pool::Pool;
use vkg_sync::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::cache::{AggregateLookup, CacheKey, ResultCache, TopKLookup};
use crate::config::VkgConfig;
use crate::engine::{IndexState, QueryEngine, ShardSetGuard, ShardedEngine};
use crate::error::{VkgError, VkgResult};
use crate::index::CrackingIndex;
use crate::metrics::VkgMetrics;
use crate::query::aggregate::{self, AggregateResult, AggregateSpec};
use crate::query::topk::TopKResult;
use crate::snapshot::VkgSnapshot;
use crate::stats::IndexStats;
use crate::wal::{self, fault::FaultPlane, TokenMap, WalRecord};

pub use crate::snapshot::Direction;

/// Former name of the facade's error type, kept as an alias after query
/// errors became the workspace-wide [`VkgError`].
pub type QueryError = VkgError;

/// Read access to the facade's index (shard 0 — the only shard under
/// the default single-shard layout), holding that shard's read lock for
/// the guard's lifetime.
pub struct IndexGuard<'a>(RwLockReadGuard<'a, IndexState>);

impl Deref for IndexGuard<'_> {
    type Target = CrackingIndex;

    fn deref(&self) -> &CrackingIndex {
        self.0.index()
    }
}

/// Exclusive access to the facade's index (shard 0), holding that
/// shard's write lock for the guard's lifetime. Dynamic updates block
/// behind it (they need every shard); queries on relations owned by
/// other shards do not.
pub struct IndexGuardMut<'a>(RwLockWriteGuard<'a, IndexState>);

impl Deref for IndexGuardMut<'_> {
    type Target = CrackingIndex;

    fn deref(&self) -> &CrackingIndex {
        self.0.index()
    }
}

impl DerefMut for IndexGuardMut<'_> {
    fn deref_mut(&mut self) -> &mut CrackingIndex {
        self.0.index_mut()
    }
}

/// A borrow projected out of the currently-published snapshot.
///
/// The facade's component accessors ([`VirtualKnowledgeGraph::graph`]
/// and friends) hand these out instead of plain references because the
/// published snapshot can be *swapped* by a concurrent dynamic update:
/// the `SnapRef` pins the epoch it was taken at (an `Arc` clone), so the
/// borrow stays valid — and internally consistent — however long it is
/// held, without holding any lock.
pub struct SnapRef<T: ?Sized + 'static> {
    snap: Arc<VkgSnapshot>,
    project: fn(&VkgSnapshot) -> &T,
}

impl<T: ?Sized> Deref for SnapRef<T> {
    type Target = T;

    fn deref(&self) -> &T {
        (self.project)(&self.snap)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SnapRef<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// The published read side: the current snapshot plus the epoch counter
/// that advances on every publication.
#[derive(Debug)]
struct Published {
    epoch: u64,
    snap: Arc<VkgSnapshot>,
}

/// The epochs pinned by [`VirtualKnowledgeGraph::with_published_engine`]:
/// the global epoch plus **every** shard's epoch, all exact for the
/// closure's duration because the closure holds every shard lock and
/// publication needs all of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnginePin {
    /// The global snapshot epoch (one per publication).
    pub epoch: u64,
    /// Per-shard epochs (one per publication that mutated the shard's
    /// index), in shard order.
    pub shard_epochs: Vec<u64>,
}

/// The epochs pinned by [`VirtualKnowledgeGraph::with_published_shard`]:
/// exact while the shard's lock is held, because publication needs
/// every shard lock — including this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPin {
    /// The global snapshot epoch.
    pub epoch: u64,
    /// The shard serving the call (the router's choice).
    pub shard: usize,
    /// That shard's epoch.
    pub shard_epoch: u64,
}

/// One relation's slice of a multi-relation aggregate
/// ([`VirtualKnowledgeGraph::aggregate_multi`]).
#[derive(Debug, Clone)]
pub struct RelationAggregate {
    /// The relation this partial answers.
    pub relation: RelationId,
    /// The shard that served it.
    pub shard: usize,
    /// The global epoch the serving worker observed under its shard
    /// lock. Per-shard consistent: concurrent writers may advance the
    /// epoch between two shards of one fan-out, never within one.
    pub epoch: u64,
    /// The partial estimate with its own Theorem 4 bound.
    pub result: AggregateResult,
}

/// A multi-relation aggregate: the per-shard partials (input order) and
/// their merged estimate with the combined Theorem 4 bound.
#[derive(Debug, Clone)]
pub struct MultiAggregateResult {
    /// The merged estimate (see `query::aggregate::merge_partials`).
    pub combined: AggregateResult,
    /// One partial per queried relation, in input order.
    pub parts: Vec<RelationAggregate>,
}

/// What [`VirtualKnowledgeGraph::attach_wal`] reconstructed from the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecoveryReport {
    /// Valid records replayed into the engine, in append order.
    pub replayed: u64,
    /// Torn-tail bytes truncated from the log before appends resumed.
    pub truncated_bytes: u64,
    /// The snapshot epoch after replay finished.
    pub epoch: u64,
}

/// The durability state guarded by the `vkg.wal` lock: the append
/// handle (absent until [`VirtualKnowledgeGraph::attach_wal`]) and the
/// idempotency map. The map works with the WAL detached too, so a
/// duplicated `AddFactDynamic` frame never double-applies even on a
/// purely in-memory facade.
#[derive(Debug)]
struct Durability {
    writer: Option<wal::Writer>,
    dedup: TokenMap,
}

/// Retry horizon of the idempotency map: how many distinct tokens the
/// facade remembers before FIFO eviction. Far beyond any client's
/// bounded-retry window.
const TOKEN_CAPACITY: usize = 4096;

/// A knowledge graph extended with predicted, probabilistic edges, indexed
/// for predictive top-k and aggregate queries.
///
/// All query **and update** methods take `&self`: reads go through the
/// currently-published snapshot lock-free, index mutations a query
/// implies (cracking) serialize behind the owning relation's shard
/// lock, and dynamic updates act as a single writer (all shard locks,
/// ascending) that publishes a fresh snapshot epoch. The facade is
/// `Send + Sync` and is shared behind an `Arc` by the serving layer
/// with no outer lock.
#[derive(Debug)]
pub struct VirtualKnowledgeGraph {
    published: RwLock<Published>,
    engine: ShardedEngine,
    metrics: VkgMetrics,
    /// The epoch-keyed result cache ([`crate::cache`]), present when
    /// [`VkgConfig::cache_capacity`] > 0. Consulted only inside shard
    /// closures (epochs pinned), so every hit is provably identical to
    /// recomputation.
    cache: Option<ResultCache>,
    /// WAL writer + idempotency map (DESIGN.md §3.9). Ordered strictly
    /// after the shard locks: the write path appends under all shard
    /// locks, *before* the publication the record guards.
    durability: Mutex<Durability>,
}

impl VirtualKnowledgeGraph {
    /// Assembles a virtual knowledge graph with an **online cracking**
    /// index (starts as a root-only tree; queries shape it).
    ///
    /// # Panics
    /// Panics if the embedding store's entity count does not match the
    /// graph's, or the configuration is invalid. Use
    /// [`VirtualKnowledgeGraph::try_assemble`] to handle these as errors.
    pub fn assemble(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> Self {
        match Self::try_assemble(graph, attributes, embeddings, config) {
            Ok(vkg) => vkg,
            // lint: allow(no-unwrap, documented `# Panics` contract; try_assemble is the fallible form)
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`VirtualKnowledgeGraph::assemble`]. Metrics
    /// record into a live per-facade registry on a real clock; use
    /// [`VirtualKnowledgeGraph::try_assemble_with_metrics`] to supply a
    /// no-op registry (overhead baselines) or a mock clock.
    pub fn try_assemble(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> VkgResult<Self> {
        Self::try_assemble_with_metrics(
            graph,
            attributes,
            embeddings,
            config,
            Registry::active(),
            Clock::real(),
        )
    }

    /// [`VirtualKnowledgeGraph::try_assemble`] with an explicit metrics
    /// registry and clock. A [`Registry::noop`] registry turns every
    /// per-query record into a single branch — the configuration the
    /// overhead microbench compares against.
    pub fn try_assemble_with_metrics(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
        registry: Registry,
        clock: Clock,
    ) -> VkgResult<Self> {
        let snapshot = Arc::new(VkgSnapshot::new(graph, attributes, embeddings, config)?);
        let engine = ShardedEngine::cracking(&snapshot);
        Ok(Self::from_parts(snapshot, engine, registry, clock))
    }

    fn from_parts(
        snapshot: Arc<VkgSnapshot>,
        engine: ShardedEngine,
        registry: Registry,
        clock: Clock,
    ) -> Self {
        let cache = match snapshot.config().cache_capacity {
            0 => None,
            capacity => Some(ResultCache::new(capacity)),
        };
        Self {
            published: RwLock::with_name(
                Published {
                    epoch: 0,
                    snap: snapshot,
                },
                "vkg.published",
            ),
            engine,
            metrics: VkgMetrics::new(registry, clock),
            cache,
            durability: Mutex::with_name(
                Durability {
                    writer: None,
                    dedup: TokenMap::new(TOKEN_CAPACITY),
                },
                "vkg.wal",
            ),
        }
    }

    /// Assembles with a fully **bulk-loaded** offline index (the
    /// BULKLOADCHUNK baseline of §VI).
    ///
    /// # Panics
    /// Panics under the same conditions as
    /// [`VirtualKnowledgeGraph::assemble`].
    pub fn assemble_bulk_loaded(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> Self {
        match Self::try_assemble_bulk_loaded(graph, attributes, embeddings, config) {
            Ok(vkg) => vkg,
            // lint: allow(no-unwrap, documented `# Panics` contract; try_assemble_bulk_loaded is the fallible form)
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`VirtualKnowledgeGraph::assemble_bulk_loaded`].
    pub fn try_assemble_bulk_loaded(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> VkgResult<Self> {
        let snapshot = Arc::new(VkgSnapshot::new(graph, attributes, embeddings, config)?);
        let engine = ShardedEngine::bulk_loaded(&snapshot);
        Ok(Self::from_parts(
            snapshot,
            engine,
            Registry::active(),
            Clock::real(),
        ))
    }

    /// The immutable read side, shareable across threads. Clones of this
    /// `Arc` stay valid (and lock-free) while other threads query — they
    /// observe the snapshot as of the clone, unaffected by later dynamic
    /// updates (which publish a fresh snapshot).
    pub fn snapshot(&self) -> Arc<VkgSnapshot> {
        self.published.read().snap.clone()
    }

    /// The currently-published `(epoch, snapshot)` pair, read atomically.
    /// The epoch starts at 0 and advances by one per dynamic update, so
    /// two reads with equal epochs saw byte-identical snapshots.
    pub fn published(&self) -> (u64, Arc<VkgSnapshot>) {
        let p = self.published.read();
        (p.epoch, p.snap.clone())
    }

    /// The current snapshot epoch (number of published dynamic updates).
    pub fn epoch(&self) -> u64 {
        self.published.read().epoch
    }

    /// The materialized knowledge graph (pinned at the current epoch).
    pub fn graph(&self) -> SnapRef<KnowledgeGraph> {
        SnapRef {
            snap: self.snapshot(),
            project: VkgSnapshot::graph,
        }
    }

    /// The attribute store (pinned at the current epoch).
    pub fn attributes(&self) -> SnapRef<AttributeStore> {
        SnapRef {
            snap: self.snapshot(),
            project: VkgSnapshot::attributes,
        }
    }

    /// The embedding store, space S₁ (pinned at the current epoch).
    pub fn embeddings(&self) -> SnapRef<EmbeddingStore> {
        SnapRef {
            snap: self.snapshot(),
            project: VkgSnapshot::embeddings,
        }
    }

    /// The configuration in effect (pinned at the current epoch).
    pub fn config(&self) -> SnapRef<VkgConfig> {
        SnapRef {
            snap: self.snapshot(),
            project: VkgSnapshot::config,
        }
    }

    /// Index statistics (splits, nodes, per-query access counters),
    /// summed across shards.
    pub fn index_stats(&self) -> IndexStats {
        self.engine.merged_index_stats()
    }

    /// The facade's metric handles (registry, clock, typed counters).
    pub fn metrics(&self) -> &VkgMetrics {
        &self.metrics
    }

    /// A full metrics snapshot: the per-query counters and latency
    /// histogram recorded on the hot path, plus engine-side statistics
    /// (index size, crack-log traffic, pool dispatch) sampled into
    /// gauges at the moment of the call. Empty if the facade was
    /// assembled with a [`Registry::noop`] registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot_with_engine(&self.engine)
    }

    /// Number of index nodes across all shards (Fig. 9 metric).
    pub fn index_node_count(&self) -> usize {
        self.engine.node_count()
    }

    /// Approximate index size in bytes across all shards (Figs. 10–11
    /// metric).
    pub fn index_bytes(&self) -> usize {
        self.engine.index_bytes()
    }

    /// Resets the per-query access counters on every shard.
    pub fn reset_access_counters(&self) {
        for i in 0..self.engine.shard_count() {
            self.engine.write_shard(i).reset_access_counters();
        }
    }

    /// Number of engine shards (the configured [`VkgConfig::shards`]).
    pub fn shard_count(&self) -> usize {
        self.engine.shard_count()
    }

    /// The shard serving `relation`'s queries (the router's choice).
    pub fn shard_of(&self, relation: RelationId) -> usize {
        self.engine.shard_of(relation)
    }

    /// Every shard's epoch, in shard order — a monotone lock-free
    /// snapshot (exact only under the corresponding shard lock).
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.engine.shard_epochs()
    }

    /// One shard's epoch (see [`VirtualKnowledgeGraph::shard_epochs`]).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.engine.shard_epoch(shard)
    }

    /// Waits for every in-flight query to finish: acquires and releases
    /// all shard locks in order. After `quiesce` returns, any query
    /// admitted before the call has completed (the server's drain
    /// barrier).
    pub fn quiesce(&self) {
        drop(self.engine.lock_all());
    }

    /// The query center in S₁ for an entity/relation/direction.
    pub fn query_point_s1(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
    ) -> VkgResult<Vec<f64>> {
        self.snapshot().query_point_s1(entity, relation, direction)
    }

    /// Runs `f` with **one** shard's lock held — the shard the router
    /// assigns to `relation` — against the currently-published snapshot.
    /// This is the epoch-consistent entry point queries build on: while
    /// `f` runs no dynamic update can publish (publication needs every
    /// shard lock, including the one `f` holds), so both epochs in the
    /// [`ShardPin`] are exact for the whole call. Queries on relations
    /// owned by *other* shards proceed concurrently.
    ///
    /// `f` must not call back into this facade (shard locks are not
    /// reentrant).
    pub fn with_published_shard<R>(
        &self,
        relation: RelationId,
        f: impl FnOnce(ShardPin, &VkgSnapshot, &mut IndexState) -> R,
    ) -> R {
        self.with_published_shard_index(self.engine.shard_of(relation), f)
    }

    /// [`VirtualKnowledgeGraph::with_published_shard`] addressed by
    /// shard index instead of relation — the entry point for callers
    /// that already routed (the serving layer's same-shard batches:
    /// one lock acquisition and one crack-log sync serve a whole group
    /// of requests routed to `shard`).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn with_published_shard_index<R>(
        &self,
        shard: usize,
        f: impl FnOnce(ShardPin, &VkgSnapshot, &mut IndexState) -> R,
    ) -> R {
        let mut state = self.engine.write_shard(shard);
        // Bring this shard's contour up to the canonical crack sequence
        // before serving, and log what `f`'s query cracked afterwards,
        // so every shard count answers identically (see the crack-log
        // notes in `engine::shard`).
        self.engine.sync_shard(shard, &mut state);
        let (epoch, snap) = self.published();
        let pin = ShardPin {
            epoch,
            shard,
            shard_epoch: self.engine.shard_epoch(shard),
        };
        let r = f(pin, &snap, &mut state);
        self.engine.publish_cracks(shard, &mut state);
        r
    }

    /// Runs `f` with **every** shard lock held (ascending) against the
    /// currently-published snapshot — the whole-engine entry point for
    /// inspection and maintenance. While `f` runs no query executes and
    /// no dynamic update can publish, so the global epoch and the whole
    /// shard-epoch vector in the [`EnginePin`] are exact for the call.
    ///
    /// `f` must not call back into this facade (shard locks are not
    /// reentrant).
    pub fn with_published_engine<R>(
        &self,
        f: impl FnOnce(&EnginePin, &VkgSnapshot, &mut ShardSetGuard<'_>) -> R,
    ) -> R {
        let mut shards = self.engine.lock_all();
        let (epoch, snap) = self.published();
        let pin = EnginePin {
            epoch,
            shard_epochs: self.engine.shard_epochs(),
        };
        f(&pin, &snap, &mut shards)
    }

    /// Top-k predicted entities for `(entity, relation)` in `direction`
    /// (Q1-style queries; Algorithm 3). Takes only `relation`'s shard
    /// lock.
    pub fn top_k(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
    ) -> VkgResult<TopKResult> {
        let start = self.metrics.clock().now();
        let r = self.with_published_shard(relation, |pin, snap, state| {
            self.top_k_pinned(pin, snap, state, entity, relation, direction, k)
        });
        self.metrics
            .record_query(start, r.as_ref().map_or(0, |t| t.s1_evals), r.is_ok());
        r
    }

    /// Top-k restricted to entities accepted by `filter` (e.g. only
    /// movies). The E′ semantics (skip known edges, skip self) always
    /// apply on top of the filter.
    ///
    /// Closure filters have no deterministic fingerprint, so this entry
    /// point always bypasses the result cache; callers whose filter has
    /// a canonical encoding (the wire protocol's filter expressions)
    /// should use [`VirtualKnowledgeGraph::top_k_filtered_pinned`] with
    /// the fingerprint inside a shard closure instead.
    pub fn top_k_filtered(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        filter: impl Fn(EntityId) -> bool,
    ) -> VkgResult<TopKResult> {
        let start = self.metrics.clock().now();
        let r = self.with_published_shard(relation, |_pin, snap, state| {
            state.top_k_filtered(snap, entity, relation, direction, k, &filter)
        });
        self.metrics
            .record_query(start, r.as_ref().map_or(0, |t| t.s1_evals), r.is_ok());
        r
    }

    /// The cache-aware top-k execution path, run inside a shard closure
    /// (the [`ShardPin`] proves both epochs are exact). Serves from the
    /// result cache when possible — replaying the filling query's crack
    /// region so the tree evolves exactly as if the query had executed —
    /// and otherwise computes (warm-started when a smaller same-query
    /// entry exists) and fills the cache.
    ///
    /// This is the entry point the serving layer drives per batched
    /// request while holding one shard lock for the whole group; the
    /// facade's own [`VirtualKnowledgeGraph::top_k`] wraps it. It does
    /// **not** record query latency metrics — callers own that.
    #[allow(clippy::too_many_arguments)]
    pub fn top_k_pinned(
        &self,
        pin: ShardPin,
        snap: &VkgSnapshot,
        state: &mut IndexState,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
    ) -> VkgResult<TopKResult> {
        self.top_k_cached(
            pin,
            snap,
            state,
            entity,
            relation,
            direction,
            k,
            None,
            &|_| true,
        )
    }

    /// [`VirtualKnowledgeGraph::top_k_pinned`] with a candidate filter.
    /// `fingerprint` is a deterministic byte encoding of the filter
    /// (equal bytes ⇒ equal predicate — the wire protocol's filter
    /// encoding qualifies); with `None` the call bypasses the cache,
    /// because a bare closure cannot be keyed.
    #[allow(clippy::too_many_arguments)]
    pub fn top_k_filtered_pinned(
        &self,
        pin: ShardPin,
        snap: &VkgSnapshot,
        state: &mut IndexState,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        fingerprint: Option<&[u8]>,
        filter: &dyn Fn(EntityId) -> bool,
    ) -> VkgResult<TopKResult> {
        match fingerprint {
            Some(bytes) => self.top_k_cached(
                pin,
                snap,
                state,
                entity,
                relation,
                direction,
                k,
                Some(bytes.to_vec()),
                filter,
            ),
            None => state.top_k_filtered(snap, entity, relation, direction, k, filter),
        }
    }

    /// Shared cacheable top-k path. `key_filter` is the key's filter
    /// fingerprint (`None` = the unfiltered query), distinct from the
    /// executable `filter` closure, which always runs on misses.
    #[allow(clippy::too_many_arguments)]
    fn top_k_cached(
        &self,
        pin: ShardPin,
        snap: &VkgSnapshot,
        state: &mut IndexState,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        key_filter: Option<Vec<u8>>,
        filter: &dyn Fn(EntityId) -> bool,
    ) -> VkgResult<TopKResult> {
        // `k == 0` must surface the engine's typed rejection; a prefix
        // cut of a cached entry would instead fabricate an empty Ok.
        let (Some(cache), true) = (self.cache.as_ref(), k > 0) else {
            return state.top_k_warm(snap, entity, relation, direction, k, &[], filter);
        };
        let cfg = snap.config();
        let key = CacheKey::top_k(entity.0, relation.0, direction, key_filter);
        let mut warm = Vec::new();
        match cache.lookup_top_k(&key, k, pin.epoch, pin.shard_epoch, cfg.epsilon, cfg.alpha) {
            TopKLookup::Hit { result, prefix } => {
                if let Some(region) = &result.crack_region {
                    // Replay the filling query's crack (idempotent, and
                    // journaled exactly like a live crack) so cached and
                    // uncached trees — and their crack-log traffic to
                    // sibling shards — stay identical.
                    state.index_mut().crack(region);
                }
                if prefix {
                    self.metrics.record_cache_prefix_hit();
                } else {
                    self.metrics.record_cache_hit();
                }
                return Ok(result);
            }
            TopKLookup::Partial { warm: seeds } => {
                warm = seeds;
                self.metrics.record_cache_miss();
            }
            TopKLookup::Stale => {
                self.metrics.record_cache_invalidate();
                self.metrics.record_cache_miss();
            }
            TopKLookup::Miss => self.metrics.record_cache_miss(),
        }
        let r = state.top_k_warm(snap, entity, relation, direction, k, &warm, filter)?;
        cache.insert_top_k(key, k, pin.epoch, pin.shard_epoch, &r);
        Ok(r)
    }

    /// The cache-aware aggregate execution path, run inside a shard
    /// closure — the aggregate counterpart of
    /// [`VirtualKnowledgeGraph::top_k_pinned`]. Sampled specs
    /// (`sample_size.is_some()`) always bypass the cache: their access
    /// order depends on tree shape, so their answers are not
    /// reproducible across differently-cracked trees.
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate_pinned(
        &self,
        pin: ShardPin,
        snap: &VkgSnapshot,
        state: &mut IndexState,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        spec: &AggregateSpec,
    ) -> VkgResult<AggregateResult> {
        let cacheable = spec.sample_size.is_none();
        let Some(cache) = self.cache.as_ref().filter(|_| cacheable) else {
            return state.aggregate(snap, entity, relation, direction, spec);
        };
        let key = CacheKey::aggregate(entity.0, relation.0, direction, spec);
        match cache.lookup_aggregate(&key, pin.epoch, pin.shard_epoch) {
            AggregateLookup::Hit(result) => {
                for region in &result.crack_regions {
                    // Replay both fill-time cracks (inner top-1, then
                    // the probability ball) — see `top_k_cached`.
                    state.index_mut().crack(region);
                }
                self.metrics.record_cache_hit();
                return Ok(result);
            }
            AggregateLookup::Stale => {
                self.metrics.record_cache_invalidate();
                self.metrics.record_cache_miss();
            }
            AggregateLookup::Miss => self.metrics.record_cache_miss(),
        }
        let r = state.aggregate(snap, entity, relation, direction, spec)?;
        cache.insert_aggregate(key, pin.epoch, pin.shard_epoch, &r);
        Ok(r)
    }

    /// Answers an aggregate query over the probability ball around the
    /// query center (§V-B). Takes only `relation`'s shard lock.
    pub fn aggregate(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        spec: &AggregateSpec,
    ) -> VkgResult<AggregateResult> {
        let start = self.metrics.clock().now();
        let r = self.with_published_shard(relation, |pin, snap, state| {
            self.aggregate_pinned(pin, snap, state, entity, relation, direction, spec)
        });
        // Aggregates refine by accessing exact S₁ distances; the access
        // count is the refine-step analogue top-k reports as s1_evals.
        self.metrics.record_query(
            start,
            r.as_ref().map_or(0, |a| a.accessed as u64),
            r.is_ok(),
        );
        r
    }

    /// Answers one aggregate query *per relation* and merges the partial
    /// estimates with their Theorem 4 bounds combined per shard (see
    /// `query::aggregate::merge_partials` for the combinators and their
    /// proofs). COUNT/SUM partials add exactly; AVG is the ball-size
    /// weighted mean; MAX/MIN take the extremum with a union-bound tail.
    ///
    /// The fan-out runs through the data-parallel pool: relations are
    /// grouped by owning shard, each worker takes **one** shard lock
    /// (never two — no cross-shard lock nesting, hence no ordering
    /// concerns) and answers that shard's relations in input order.
    /// Consistency is per shard: each partial records the epoch its
    /// worker observed; a concurrent writer may land between two shards
    /// of one fan-out, never inside one.
    pub fn aggregate_multi(
        &self,
        entity: EntityId,
        relations: &[RelationId],
        direction: Direction,
        spec: &AggregateSpec,
    ) -> VkgResult<MultiAggregateResult> {
        if relations.is_empty() {
            return Err(VkgError::InvalidParameter(
                "aggregate_multi needs at least one relation".into(),
            ));
        }
        let start = self.metrics.clock().now();
        let r = self.aggregate_multi_inner(entity, relations, direction, spec);
        let steps = r.as_ref().map_or(0, |m| {
            m.parts.iter().map(|p| p.result.accessed as u64).sum()
        });
        self.metrics.record_query(start, steps, r.is_ok());
        r
    }

    fn aggregate_multi_inner(
        &self,
        entity: EntityId,
        relations: &[RelationId],
        direction: Direction,
        spec: &AggregateSpec,
    ) -> VkgResult<MultiAggregateResult> {
        // Group (input slot, relation) by owning shard, preserving input
        // order within each group.
        let shard_count = self.engine.shard_count();
        let mut by_shard: Vec<Vec<(usize, RelationId)>> = vec![Vec::new(); shard_count];
        for (slot, &r) in relations.iter().enumerate() {
            by_shard[self.engine.shard_of(r)].push((slot, r));
        }
        let groups: Vec<(usize, Vec<(usize, RelationId)>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .collect();
        let slots: Vec<Mutex<Option<VkgResult<RelationAggregate>>>> =
            relations.iter().map(|_| Mutex::new(None)).collect();
        let width = self.config().threads.min(groups.len()).max(1);
        // The fan-out pool shares the engine's dispatch statistics, so
        // the serial-vs-parallel gauges cover multi-relation queries too.
        let pool = Pool::new(width).with_stats(self.engine.pool_stats().clone());
        pool.run(groups.len(), |gi| {
            let (shard, group) = &groups[gi];
            let mut state = self.engine.write_shard(*shard);
            self.engine.sync_shard(*shard, &mut state);
            // Re-read under the shard lock: the epoch is pinned for this
            // worker's whole group (publication needs this lock too).
            let (epoch, snap) = self.published();
            // Exact under the held shard lock, like the pin built by
            // `with_published_shard_index` — so per-relation partials
            // share the result cache with single-relation aggregates.
            let pin = ShardPin {
                epoch,
                shard: *shard,
                shard_epoch: self.engine.shard_epoch(*shard),
            };
            for &(slot, relation) in group {
                let answer = self
                    .aggregate_pinned(pin, &snap, &mut state, entity, relation, direction, spec)
                    .map(|result| RelationAggregate {
                        relation,
                        shard: *shard,
                        epoch,
                        result,
                    });
                *slots[slot].lock() = Some(answer);
            }
            self.engine.publish_cracks(*shard, &mut state);
        });
        let mut parts = Vec::with_capacity(relations.len());
        for slot in slots {
            // Every slot is filled: `Pool::run` covers all group indices
            // and re-throws worker panics before returning.
            let filled = slot.into_inner().ok_or_else(|| {
                VkgError::InvalidParameter("fan-out worker dropped a relation".into())
            })?;
            parts.push(filled?);
        }
        let partials: Vec<AggregateResult> = parts.iter().map(|p| p.result.clone()).collect();
        let combined = aggregate::merge_partials(spec.kind, &partials);
        Ok(MultiAggregateResult { combined, parts })
    }

    // ------------------------------------------------------------------
    // Dynamic knowledge-graph updates (the paper's §VIII future work:
    // "when there are local updates, the embedding changes should be
    // local too, as most (h, r, t) soft constraints still hold. We plan
    // to do incremental updates on our partial index.")
    //
    // Updates take `&self` and act as a single writer: they serialize on
    // *all* shard locks (ascending — an update must splice the new point
    // into every shard's tree), build the next snapshot off to the side
    // (cloning is cheap — components are Arc-shared, and the CoW
    // mutators copy only the stores a write touches), and publish it
    // with an epoch bump. Index-mutating writes also bump every shard's
    // epoch. Concurrent readers holding an older snapshot clone keep a
    // consistent (pre-update) view.
    // ------------------------------------------------------------------

    /// Publishes `next` as the new snapshot epoch. Callers must hold
    /// **every** shard lock so the shard indices and the published
    /// snapshot advance together (and so any single held shard lock pins
    /// the epoch for its holder).
    fn publish(&self, next: VkgSnapshot) -> u64 {
        let mut p = self.published.write();
        p.epoch += 1;
        p.snap = Arc::new(next);
        p.epoch
    }

    /// Adds a new entity with a known S₁ embedding (e.g. produced by the
    /// external embedding pipeline for a cold-start item). The entity is
    /// projected into S₂ and spliced into the partial index in place — no
    /// rebuild.
    ///
    /// # Errors
    /// A typed [`VkgError`] if the embedding's dimensionality does not
    /// match the store or the dense id space is exhausted; the failed
    /// write publishes nothing.
    ///
    /// # Panics
    /// Panics if the S₁ embedding length disagrees with the embedding
    /// store (caught before any index mutation).
    pub fn add_entity_dynamic(&self, name: &str, s1_embedding: &[f64]) -> VkgResult<EntityId> {
        let mut shards = self.engine.lock_all();
        let mut next = (*self.snapshot()).clone();
        let id = next.graph_mut().add_entity(name);
        if id.index() < next.embeddings().num_entities() {
            // The name was already interned — treat as an embedding update.
            next.embeddings_mut()
                .entity_mut(id)
                .copy_from_slice(s1_embedding);
            let s2 = next.transform().apply(s1_embedding);
            for state in shards.iter_mut() {
                state.index_mut().update_point(id.0, &s2)?;
            }
            self.publish(next);
            self.engine.bump_all_epochs();
            return Ok(id);
        }
        let store_id = next.embeddings_mut().push_entity(s1_embedding);
        debug_assert_eq!(store_id, id, "graph and store ids must stay aligned");
        let s2 = next.transform().apply(s1_embedding);
        for state in shards.iter_mut() {
            // Identical trees hold identical point sets, so the new point
            // gets the same dense id in every shard.
            let point_id = state.index_mut().insert_point(&s2)?;
            debug_assert_eq!(point_id, id.0, "index point ids must stay aligned");
        }
        self.publish(next);
        self.engine.bump_all_epochs();
        Ok(id)
    }

    /// Adds a fact `(h, r, t)` to `E` and locally refines the embeddings:
    /// `refine_steps` gradient steps pull `h + r` toward `t` (the TransE
    /// positive-pair objective, no negative sampling — a *local* change,
    /// per the paper's intuition that local graph updates should move
    /// embeddings locally). Both endpoints' S₂ points are updated in the
    /// partial index in place.
    ///
    /// Returns `(added, epoch)`: whether the edge was new, and the exact
    /// epoch this write published (for a duplicate, the epoch current
    /// while the write held the shard locks — no publication happens).
    pub fn add_fact_dynamic(
        &self,
        h: EntityId,
        r: RelationId,
        t: EntityId,
        refine_steps: usize,
        learning_rate: f64,
    ) -> VkgResult<(bool, u64)> {
        self.add_fact_durable(0, h, r, t, refine_steps, learning_rate)
    }

    /// [`VirtualKnowledgeGraph::add_fact_dynamic`] carrying a client
    /// idempotency token (0 = untokened). The durability contract, in
    /// order, all under every shard lock:
    ///
    /// 1. a tokened retry of a remembered write is answered from the
    ///    idempotency map without touching the graph;
    /// 2. with a WAL attached, the record is appended **and flushed**
    ///    before any reader-visible mutation — a failure here returns
    ///    [`VkgError::Durability`] with the published state untouched;
    /// 3. only then do the shard indices update and the new snapshot
    ///    publish. A crash between 2 and 3 replays an unacked write on
    ///    recovery, which the token map then dedups against retries.
    pub fn add_fact_durable(
        &self,
        token: u64,
        h: EntityId,
        r: RelationId,
        t: EntityId,
        refine_steps: usize,
        learning_rate: f64,
    ) -> VkgResult<(bool, u64)> {
        let mut shards = self.engine.lock_all();
        if token != 0 {
            let d = self.durability.lock();
            if let Some(outcome) = d.dedup.get(token) {
                drop(d);
                self.metrics.record_wal_dedup_hit();
                return Ok(outcome);
            }
        }
        let cur = self.snapshot();
        cur.check_ids(h, r)?;
        cur.check_ids(t, r)?;
        let mut next = (*cur).clone();
        let added = next.graph_mut().add_triple(h, r, t)?;
        if !added {
            // All shard locks are still held, so no concurrent writer can
            // publish between the duplicate check and this epoch read.
            let epoch = self.epoch();
            if token != 0 {
                self.durability.lock().dedup.insert(token, (false, epoch));
            }
            return Ok((false, epoch));
        }
        let d = next.embeddings().dim();
        for _ in 0..refine_steps {
            let mut grad = vec![0.0; d];
            {
                let embeddings = next.embeddings();
                let (hv, rv, tv) = (
                    embeddings.entity(h),
                    embeddings.relation(r),
                    embeddings.entity(t),
                );
                for ((g, (&hi, &ri)), &ti) in grad.iter_mut().zip(hv.iter().zip(rv)).zip(tv).take(d)
                {
                    *g = 2.0 * (hi + ri - ti);
                }
            }
            let embeddings = next.embeddings_mut();
            for (e, &g) in embeddings.entity_mut(h).iter_mut().zip(&grad).take(d) {
                *e -= learning_rate * g;
            }
            for (e, &g) in embeddings.entity_mut(t).iter_mut().zip(&grad).take(d) {
                *e += learning_rate * g;
            }
        }
        let h_s2 = next.transform().apply(next.embeddings().entity(h));
        let t_s2 = next.transform().apply(next.embeddings().entity(t));
        // Log + flush BEFORE any reader-visible mutation. Everything
        // above only touched `next` (a private clone), so a WAL failure
        // aborts the write with the published state untouched.
        {
            // The epoch this write will publish, read before taking the
            // wal lock (vkg.wal orders after the shard locks only).
            let record = WalRecord {
                epoch: self.epoch() + 1,
                token,
                h: h.0,
                r: r.0,
                t: t.0,
                refine_steps: refine_steps as u32,
                learning_rate,
            };
            let mut d = self.durability.lock();
            if let Some(writer) = d.writer.as_mut() {
                writer.append(&record).map_err(VkgError::from)?;
                drop(d);
                self.metrics.record_wal_append();
            }
        }
        for state in shards.iter_mut() {
            state.index_mut().update_point(h.0, &h_s2)?;
            state.index_mut().update_point(t.0, &t_s2)?;
        }
        let epoch = self.publish(next);
        self.engine.bump_all_epochs();
        if token != 0 {
            self.durability.lock().dedup.insert(token, (true, epoch));
        }
        Ok((true, epoch))
    }

    /// Opens (creating if absent) the write-ahead log at `path`, replays
    /// its valid prefix through the normal dynamic write path, truncates
    /// any torn tail, and arms the writer: from this call on, every
    /// dynamic fact write is appended + flushed before it publishes.
    /// Replayed records re-seed the idempotency map, so a client
    /// retrying a write that was logged but never acked before a crash
    /// gets the original outcome instead of a duplicate apply.
    ///
    /// All I/O routes through `fault` — [`FaultPlane::none`] in
    /// production, a seeded injector under test.
    ///
    /// # Errors
    /// [`VkgError::Durability`] if the file is not a WAL or recovery
    /// I/O fails; a replayed record naming unknown ids surfaces its
    /// typed error.
    pub fn attach_wal(
        &self,
        path: &std::path::Path,
        fault: FaultPlane,
    ) -> VkgResult<WalRecoveryReport> {
        let recovered = wal::recover(path, fault).map_err(VkgError::from)?;
        for record in &recovered.records {
            let (added, epoch) = self.add_fact_dynamic(
                EntityId(record.h),
                RelationId(record.r),
                EntityId(record.t),
                record.refine_steps as usize,
                record.learning_rate,
            )?;
            if record.token != 0 {
                self.durability
                    .lock()
                    .dedup
                    .insert(record.token, (added, epoch));
            }
        }
        self.metrics
            .record_wal_recovery(recovered.stats.replayed, recovered.stats.truncated_bytes);
        let mut d = self.durability.lock();
        d.writer = Some(recovered.writer);
        drop(d);
        Ok(WalRecoveryReport {
            replayed: recovered.stats.replayed,
            truncated_bytes: recovered.stats.truncated_bytes,
            epoch: self.epoch(),
        })
    }

    /// Whether a WAL is attached (writes are durable before they ack).
    pub fn wal_attached(&self) -> bool {
        self.durability.lock().writer.is_some()
    }

    /// Sets (or updates) an attribute of an entity — aggregate queries
    /// observe the new value from the next epoch on. Bumps the global
    /// epoch but **no** shard epoch: no shard's index changes.
    pub fn set_attribute_dynamic(&self, attr: &str, entity: EntityId, value: f64) {
        let _shards = self.engine.lock_all();
        let mut next = (*self.snapshot()).clone();
        next.attributes_mut().set(attr, entity, value);
        self.publish(next);
    }

    /// Direct read access to the index (benchmarks, invariant checks).
    /// Holds shard 0's read lock while the guard lives.
    pub fn index(&self) -> IndexGuard<'_> {
        IndexGuard(self.engine.read_shard(0))
    }

    /// Exclusive access to the index (shard 0). Holds that shard's write
    /// lock while the guard lives — readers of
    /// [`VirtualKnowledgeGraph::graph`] /
    /// [`VirtualKnowledgeGraph::embeddings`] are *not* blocked, and
    /// neither are queries on relations owned by other shards; dynamic
    /// updates (which need every shard) are.
    pub fn index_mut(&self) -> IndexGuardMut<'_> {
        IndexGuardMut(self.engine.write_shard(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitStrategy;
    use crate::query::aggregate::AggregateKind;

    /// A small synthetic world with hand-crafted geometry:
    /// users u0..u3 at distinct positions, items m0..m5 clustered so that
    /// u's "+likes" lands near specific items.
    fn tiny_world(dim: usize) -> (KnowledgeGraph, AttributeStore, EmbeddingStore) {
        let mut g = KnowledgeGraph::new();
        let likes = g.add_relation("likes");
        let users: Vec<_> = (0..4).map(|i| g.add_entity(&format!("u{i}"))).collect();
        let items: Vec<_> = (0..6).map(|i| g.add_entity(&format!("m{i}"))).collect();
        // u0 already likes m0 (edge in E — must be skipped by queries).
        g.add_triple(users[0], likes, items[0]).unwrap();

        // Embeddings: dim-d vectors. Items sit at x = 10 + i, users at
        // x = i, relation "likes" translates by +10, so u_i + likes ≈ m_i.
        let mut ent = vec![0.0; 10 * dim];
        for (i, _) in users.iter().enumerate() {
            ent[i * dim] = i as f64;
        }
        for (j, _) in items.iter().enumerate() {
            ent[(4 + j) * dim] = 10.0 + j as f64;
            ent[(4 + j) * dim + 1] = 0.5; // offset so items aren't colinear
        }
        let mut rel = vec![0.0; dim];
        rel[0] = 10.0;
        rel[1] = 0.5;
        let store = EmbeddingStore::from_raw(dim, ent, rel);

        let mut attrs = AttributeStore::new();
        for (j, &m) in items.iter().enumerate() {
            attrs.set("year", m, 2000.0 + j as f64);
        }
        (g, attrs, store)
    }

    fn config() -> VkgConfig {
        VkgConfig {
            alpha: 3,
            epsilon: 3.0,
            leaf_capacity: 2,
            fanout: 2,
            beta: 2.0,
            split_strategy: SplitStrategy::Greedy,
            query_aware_cost: true,
            transform_seed: 7,
            threads: 1,
            shards: 1,
            cache_capacity: 0,
        }
    }

    #[test]
    fn top_k_finds_nearest_unknown_item() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let r = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        assert_eq!(r.predictions.len(), 2);
        let graph = vkg.graph();
        let names: Vec<&str> = r
            .predictions
            .iter()
            .map(|p| graph.entity_name(EntityId(p.id)).unwrap())
            .collect();
        // m0 is a known edge → skipped; the nearest predictions are m1
        // then m2 (u0 + likes = (10, 0.5): m1 at distance 1 along x ...
        // actually m0 at 0 is skipped, m1 at 1, m2 at 2).
        assert_eq!(names, vec!["m1", "m2"]);
        assert_eq!(r.predictions[0].probability, 1.0);
    }

    #[test]
    fn heads_query_inverts_translation() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let m2 = vkg.graph().entity_id("m2").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        // m2 − likes = (2, 0, …) → nearest user is u2.
        let r = vkg.top_k(m2, likes, Direction::Heads, 1).unwrap();
        let graph = vkg.graph();
        let name = graph.entity_name(EntityId(r.predictions[0].id)).unwrap();
        assert_eq!(name, "u2");
    }

    #[test]
    fn filter_restricts_candidates() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        // Restrict to even-numbered items.
        let graph = vkg.graph().clone();
        let r = vkg
            .top_k_filtered(u0, likes, Direction::Tails, 2, |e| {
                graph
                    .entity_name(e)
                    .is_some_and(|n| n.starts_with('m') && n[1..].parse::<u32>().unwrap() % 2 == 0)
            })
            .unwrap();
        let names: Vec<&str> = r
            .predictions
            .iter()
            .map(|p| graph.entity_name(EntityId(p.id)).unwrap())
            .collect();
        assert_eq!(names, vec!["m2", "m4"], "m0 is a known edge");
    }

    #[test]
    fn aggregate_count_over_ball() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let r = vkg
            .aggregate(u0, likes, Direction::Tails, &AggregateSpec::count(0.05))
            .unwrap();
        assert!(r.ball_size >= 1);
        assert!(r.estimate >= 1.0, "closest entity alone contributes 1");
        assert!(r.estimate <= r.ball_size as f64);
    }

    #[test]
    fn aggregate_avg_year() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let spec = AggregateSpec::of(AggregateKind::Avg, "year", 0.05);
        let r = vkg.aggregate(u0, likes, Direction::Tails, &spec).unwrap();
        assert!(
            (2000.0..=2005.0).contains(&r.estimate),
            "avg year {} outside item range",
            r.estimate
        );
    }

    #[test]
    fn aggregate_rejects_unknown_attribute() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let spec = AggregateSpec::of(AggregateKind::Avg, "nonexistent", 0.05);
        assert!(matches!(
            vkg.aggregate(u0, likes, Direction::Tails, &spec),
            Err(QueryError::UnknownAttribute(_))
        ));
        let spec = AggregateSpec {
            kind: AggregateKind::Sum,
            attribute: None,
            p_tau: 0.05,
            sample_size: None,
        };
        assert!(matches!(
            vkg.aggregate(u0, likes, Direction::Tails, &spec),
            Err(QueryError::MissingAttribute)
        ));
    }

    #[test]
    fn unknown_ids_rejected() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let likes = vkg.graph().relation_id("likes").unwrap();
        assert!(matches!(
            vkg.top_k(EntityId(999), likes, Direction::Tails, 3),
            Err(QueryError::UnknownEntity(999))
        ));
        let u0 = vkg.graph().entity_id("u0").unwrap();
        assert!(matches!(
            vkg.top_k(u0, RelationId(42), Direction::Tails, 3),
            Err(QueryError::UnknownRelation(42))
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        assert!(matches!(
            vkg.top_k(u0, likes, Direction::Tails, 0),
            Err(QueryError::InvalidParameter(_))
        ));
        let spec = AggregateSpec::count(1.5);
        assert!(matches!(
            vkg.aggregate(u0, likes, Direction::Tails, &spec),
            Err(QueryError::InvalidParameter(_))
        ));
    }

    #[test]
    fn try_assemble_reports_mismatch() {
        let (g, attrs, _) = tiny_world(8);
        let short = EmbeddingStore::from_raw(8, vec![0.0; 8], vec![0.0; 8]);
        assert!(matches!(
            VirtualKnowledgeGraph::try_assemble(g, attrs, short, config()),
            Err(VkgError::Mismatch { .. })
        ));
    }

    #[test]
    fn bulk_loaded_agrees_with_cracking() {
        let (g, attrs, emb) = tiny_world(8);
        let online =
            VirtualKnowledgeGraph::assemble(g.clone(), attrs.clone(), emb.clone(), config());
        let bulk = VirtualKnowledgeGraph::assemble_bulk_loaded(g, attrs, emb, config());
        let u1 = online.graph().entity_id("u1").unwrap();
        let likes = online.graph().relation_id("likes").unwrap();
        let a = online.top_k(u1, likes, Direction::Tails, 3).unwrap();
        let b = bulk.top_k(u1, likes, Direction::Tails, 3).unwrap();
        assert_eq!(
            a.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            b.predictions.iter().map(|p| p.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn queries_crack_the_index() {
        let (g, attrs, emb) = tiny_world(8);
        // A tight ε keeps the query region smaller than the whole space
        // (with the default ε = 3 the tiny world's region covers all ten
        // points and the stop condition correctly leaves the root alone).
        let cfg = VkgConfig {
            epsilon: 0.3,
            ..config()
        };
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, cfg);
        assert_eq!(vkg.index_node_count(), 1);
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let _ = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        assert!(vkg.index_node_count() > 1);
        vkg.index().check_invariants();
    }

    #[test]
    fn snapshot_clone_survives_dynamic_update() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let before = vkg.snapshot();
        let n = before.graph().num_entities();
        let dim = before.embeddings().dim();
        vkg.add_entity_dynamic("m_new", &vec![20.0; dim])
            .expect("well-shaped embedding");
        // The old snapshot is frozen; the facade sees the new entity.
        assert_eq!(before.graph().num_entities(), n);
        assert_eq!(vkg.graph().num_entities(), n + 1);
    }

    #[test]
    fn epoch_advances_once_per_publication() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        assert_eq!(vkg.epoch(), 0);
        let dim = vkg.embeddings().dim();
        vkg.add_entity_dynamic("m_new", &vec![20.0; dim])
            .expect("well-shaped embedding");
        assert_eq!(vkg.epoch(), 1);
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let m_new = vkg.graph().entity_id("m_new").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        // Queries never advance the epoch.
        let _ = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        assert_eq!(vkg.epoch(), 1);
        // The write reports the exact epoch it published.
        assert_eq!(
            vkg.add_fact_dynamic(u0, likes, m_new, 2, 0.01).unwrap(),
            (true, 2)
        );
        assert_eq!(vkg.epoch(), 2);
        // A duplicate fact is a no-op, publishes nothing, and reports
        // the epoch current during the (serialized) write.
        assert_eq!(
            vkg.add_fact_dynamic(u0, likes, m_new, 2, 0.01).unwrap(),
            (false, 2)
        );
        assert_eq!(vkg.epoch(), 2);
        vkg.set_attribute_dynamic("year", m_new, 2020.0);
        assert_eq!(vkg.epoch(), 3);
        // `published()` reads the pair atomically.
        let (epoch, snap) = vkg.published();
        assert_eq!(epoch, 3);
        assert_eq!(snap.graph().num_entities(), vkg.graph().num_entities());
    }

    #[test]
    fn dynamic_updates_take_shared_reference_behind_arc() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = std::sync::Arc::new(VirtualKnowledgeGraph::assemble(g, attrs, emb, config()));
        let likes = vkg.graph().relation_id("likes").unwrap();
        let u1 = vkg.graph().entity_id("u1").unwrap();
        let m3 = vkg.graph().entity_id("m3").unwrap();
        // No outer lock: the Arc alone suffices for the single writer.
        let writer = {
            let vkg = std::sync::Arc::clone(&vkg);
            std::thread::spawn(move || vkg.add_fact_dynamic(u1, likes, m3, 2, 0.01).unwrap())
        };
        assert!(writer.join().unwrap().0);
        assert!(vkg.graph().tails(u1, likes).any(|e| e == m3));
    }

    #[test]
    fn with_published_engine_pins_one_epoch() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let (pin, ids) = vkg.with_published_engine(|pin, snap, shards| {
            let r = shards
                .shard_mut(0)
                .top_k(snap, u0, likes, Direction::Tails, 2)
                .unwrap();
            (
                pin.clone(),
                r.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            )
        });
        assert_eq!(pin.epoch, 0);
        assert_eq!(pin.shard_epochs, vec![0]);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn with_published_shard_pins_the_owning_shard() {
        let (g, attrs, emb) = tiny_world(8);
        let cfg = VkgConfig {
            shards: 4,
            ..config()
        };
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, cfg);
        assert_eq!(vkg.shard_count(), 4);
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let owner = vkg.shard_of(likes);
        let (pin, ids) = vkg.with_published_shard(likes, |pin, snap, state| {
            let r = state.top_k(snap, u0, likes, Direction::Tails, 2).unwrap();
            (pin, r.predictions.iter().map(|p| p.id).collect::<Vec<_>>())
        });
        assert_eq!(pin.shard, owner);
        assert_eq!(pin.epoch, 0);
        assert_eq!(pin.shard_epoch, 0);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn sharded_answers_match_single_shard() {
        let (g, attrs, emb) = tiny_world(8);
        let single =
            VirtualKnowledgeGraph::assemble(g.clone(), attrs.clone(), emb.clone(), config());
        let u0 = single.graph().entity_id("u0").unwrap();
        let likes = single.graph().relation_id("likes").unwrap();
        let reference = single.top_k(u0, likes, Direction::Tails, 3).unwrap();
        let ref_ids: Vec<u32> = reference.predictions.iter().map(|p| p.id).collect();
        let ref_agg = single
            .aggregate(u0, likes, Direction::Tails, &AggregateSpec::count(0.05))
            .unwrap();
        for shards in [2, 7] {
            let cfg = VkgConfig { shards, ..config() };
            let vkg = VirtualKnowledgeGraph::assemble(g.clone(), attrs.clone(), emb.clone(), cfg);
            assert_eq!(vkg.shard_count(), shards);
            let r = vkg.top_k(u0, likes, Direction::Tails, 3).unwrap();
            let ids: Vec<u32> = r.predictions.iter().map(|p| p.id).collect();
            assert_eq!(ids, ref_ids, "top-k differs at {shards} shards");
            let a = vkg
                .aggregate(u0, likes, Direction::Tails, &AggregateSpec::count(0.05))
                .unwrap();
            assert_eq!(a.estimate, ref_agg.estimate, "estimate at {shards} shards");
            assert_eq!(a.ball_size, ref_agg.ball_size);
        }
    }

    #[test]
    fn shard_epochs_track_index_mutations_only() {
        let (g, attrs, emb) = tiny_world(8);
        let cfg = VkgConfig {
            shards: 3,
            ..config()
        };
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, cfg);
        assert_eq!(vkg.shard_epochs(), vec![0, 0, 0]);
        let dim = vkg.embeddings().dim();
        // Index-touching writes bump the global epoch AND every shard.
        vkg.add_entity_dynamic("m_new", &vec![20.0; dim])
            .expect("well-shaped embedding");
        assert_eq!(vkg.epoch(), 1);
        assert_eq!(vkg.shard_epochs(), vec![1, 1, 1]);
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let m_new = vkg.graph().entity_id("m_new").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        vkg.add_fact_dynamic(u0, likes, m_new, 2, 0.01).unwrap();
        assert_eq!(vkg.epoch(), 2);
        assert_eq!(vkg.shard_epochs(), vec![2, 2, 2]);
        // Attribute writes publish (global bump) but touch no index:
        // shard epochs stay put.
        vkg.set_attribute_dynamic("year", m_new, 2020.0);
        assert_eq!(vkg.epoch(), 3);
        assert_eq!(vkg.shard_epochs(), vec![2, 2, 2]);
        assert_eq!(vkg.shard_epoch(0), 2);
        // Queries bump nothing.
        let _ = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        assert_eq!(vkg.shard_epochs(), vec![2, 2, 2]);
        vkg.quiesce();
    }

    /// [`tiny_world`] plus a second relation "bookmarks" translating by
    /// +12 along x (so u0 + bookmarks lands near m2).
    fn tiny_world_two_relations(dim: usize) -> (KnowledgeGraph, AttributeStore, EmbeddingStore) {
        let (mut g, attrs, emb) = tiny_world(dim);
        let _bookmarks = g.add_relation("bookmarks");
        let n = g.num_entities();
        let mut ent = Vec::with_capacity(n * dim);
        for i in 0..n {
            ent.extend_from_slice(emb.entity(EntityId(i as u32)));
        }
        let mut rel = emb.relation(RelationId(0)).to_vec();
        let mut bm = vec![0.0; dim];
        bm[0] = 12.0;
        bm[1] = 0.5;
        rel.extend_from_slice(&bm);
        (g, attrs, EmbeddingStore::from_raw(dim, ent, rel))
    }

    #[test]
    fn aggregate_multi_matches_per_relation_aggregates() {
        let (g, attrs, store) = tiny_world_two_relations(8);
        for shards in [1, 2, 7] {
            let cfg = VkgConfig { shards, ..config() };
            let vkg = VirtualKnowledgeGraph::assemble(g.clone(), attrs.clone(), store.clone(), cfg);
            let u0 = vkg.graph().entity_id("u0").unwrap();
            let likes = vkg.graph().relation_id("likes").unwrap();
            let bookmarks = vkg.graph().relation_id("bookmarks").unwrap();
            let spec = AggregateSpec::count(0.05);
            let multi = vkg
                .aggregate_multi(u0, &[likes, bookmarks], Direction::Tails, &spec)
                .unwrap();
            assert_eq!(multi.parts.len(), 2);
            assert_eq!(multi.parts[0].relation, likes);
            assert_eq!(multi.parts[1].relation, bookmarks);
            // Each partial equals the single-relation aggregate.
            let solo_likes = vkg.aggregate(u0, likes, Direction::Tails, &spec).unwrap();
            let solo_bm = vkg
                .aggregate(u0, bookmarks, Direction::Tails, &spec)
                .unwrap();
            assert_eq!(multi.parts[0].result.estimate, solo_likes.estimate);
            assert_eq!(multi.parts[1].result.estimate, solo_bm.estimate);
            assert_eq!(multi.parts[0].shard, vkg.shard_of(likes));
            assert_eq!(multi.parts[1].shard, vkg.shard_of(bookmarks));
            // COUNT partials add exactly.
            assert!(
                (multi.combined.estimate - (solo_likes.estimate + solo_bm.estimate)).abs() < 1e-12
            );
            assert_eq!(
                multi.combined.ball_size,
                solo_likes.ball_size + solo_bm.ball_size
            );
        }
    }

    #[test]
    fn aggregate_multi_rejects_empty_and_propagates_errors() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let spec = AggregateSpec::count(0.05);
        assert!(matches!(
            vkg.aggregate_multi(u0, &[], Direction::Tails, &spec),
            Err(VkgError::InvalidParameter(_))
        ));
        assert!(matches!(
            vkg.aggregate_multi(u0, &[likes, RelationId(99)], Direction::Tails, &spec),
            Err(VkgError::UnknownRelation(99))
        ));
    }

    #[test]
    fn metrics_snapshot_reflects_served_queries() {
        use crate::metrics::names;
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let _ = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        let _ = vkg
            .aggregate(u0, likes, Direction::Tails, &AggregateSpec::count(0.05))
            .unwrap();
        // An error still counts as a served query.
        let _ = vkg.top_k(EntityId(999), likes, Direction::Tails, 2);
        let snap = vkg.metrics_snapshot();
        assert_eq!(snap.counter(names::QUERIES), Some(3));
        assert_eq!(snap.counter(names::QUERY_ERRORS), Some(1));
        assert!(snap.counter(names::REFINE_STEPS).unwrap() > 0);
        let hist = snap.hist(names::QUERY_LATENCY_US).unwrap();
        assert_eq!(hist.total, 3);
        // Engine-side gauges are sampled at snapshot time.
        assert!(snap.gauge(names::INDEX_NODES).unwrap() >= 1);
        assert!(snap.gauge(names::INDEX_S1_EVALS).unwrap() > 0);
        assert_eq!(snap.gauge(names::CRACKS_PUBLISHED), Some(0));
        assert!(snap.gauge(names::POOL_SERIAL_RUNS).is_some());
    }

    #[test]
    fn noop_registry_snapshots_empty() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::try_assemble_with_metrics(
            g,
            attrs,
            emb,
            config(),
            Registry::noop(),
            Clock::real(),
        )
        .unwrap();
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let _ = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        let snap = vkg.metrics_snapshot();
        assert_eq!(snap, vkg_obs::MetricsSnapshot::default());
        assert!(vkg.metrics().registry().is_noop());
    }

    #[test]
    fn aggregate_multi_records_one_query() {
        use crate::metrics::names;
        let (g, attrs, store) = tiny_world_two_relations(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, store, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let bookmarks = vkg.graph().relation_id("bookmarks").unwrap();
        let spec = AggregateSpec::count(0.05);
        let _ = vkg
            .aggregate_multi(u0, &[likes, bookmarks], Direction::Tails, &spec)
            .unwrap();
        let snap = vkg.metrics_snapshot();
        assert_eq!(snap.counter(names::QUERIES), Some(1));
    }

    #[test]
    fn dynamic_updates_reach_every_shard() {
        let (g, attrs, emb) = tiny_world(8);
        let cfg = VkgConfig {
            shards: 2,
            ..config()
        };
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, cfg);
        let dim = vkg.embeddings().dim();
        let id = vkg
            .add_entity_dynamic("m_new", &vec![20.0; dim])
            .expect("well-shaped embedding");
        // Every shard must know the new point: a kNN through each shard
        // finds it at its exact position.
        let snap = vkg.snapshot();
        for i in 0..vkg.shard_count() {
            let mut state = vkg.engine.write_shard(i);
            let nn = state.knn_in_s2(&snap, &vec![20.0; dim], 1).unwrap();
            assert_eq!(nn[0].id, id.0, "shard {i} missing the new entity");
        }
    }
}
