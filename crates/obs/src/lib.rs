//! Observability for the vkg workspace: a global-free metrics registry,
//! per-query span tracing, and exportable snapshots.
//!
//! The paper's argument is that an online (cracking) index adapts its
//! cost profile to the workload — this crate makes that adaptation
//! visible from *inside* the system instead of only through bench-side
//! wall clocks. It is hand-rolled and dependency-free (only
//! [`vkg_sync`], so the model checker can sweep every primitive):
//!
//! * [`Registry`] — named atomic counters (striped to keep hot-path
//!   increments cheap), gauges, and geometric-bucket [`Histogram`]s.
//!   There are no globals: a registry is instantiated per
//!   `Vkg` / per `Server` and handed out as cheap cloneable handles
//!   ([`Counter`], [`Gauge`], [`HistogramCell`]). A [`Registry::noop`]
//!   registry hands out dead handles whose recording methods are
//!   branch-predictable no-ops — the microbench overhead gate compares
//!   the two.
//! * [`Span`] / [`SpanRing`] — one record per served request, following
//!   it through admission → queue wait → shard lock → crack/refine →
//!   encode, written into a fixed-size lock-free ring with exact
//!   dropped-span accounting (see [`SpanRing`] for the seqlock slot
//!   protocol).
//! * [`Clock`] / [`Tick`] — the one place the workspace reads time.
//!   Everything outside this crate and the bench binaries goes through
//!   a `Clock` (the xtask `no-raw-timing` lint enforces it), so tests
//!   can substitute [`Clock::mock`] and advance time deterministically.
//! * [`MetricsSnapshot`] — a point-in-time, wire-encodable dump of the
//!   registry plus the last-N spans; [`expo`] renders it as a text
//!   exposition format and parses it back losslessly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod expo;
pub mod hist;
pub mod registry;
pub mod ring;
pub mod snapshot;
pub mod span;

pub use clock::{Clock, Stopwatch, Tick};
pub use hist::Histogram;
pub use registry::{Counter, Gauge, HistogramCell, Registry};
pub use ring::SpanRing;
pub use snapshot::{HistSnapshot, MetricsSnapshot};
pub use span::{Span, SpanOutcome};
