//! Deterministic per-test random source.

use std::hash::{DefaultHasher, Hash, Hasher};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Error type carried by a property body's implicit `Result` (present
/// for API parity; assertions in this shim panic instead of returning
/// `Err`).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// The generator threaded through every strategy during a test run.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds a generator whose seed is derived from `tag` (the full test
    /// path), so every test gets an independent but reproducible stream.
    pub fn deterministic(tag: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        tag.hash(&mut hasher);
        Self {
            inner: StdRng::seed_from_u64(hasher.finish()),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
