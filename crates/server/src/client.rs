//! Synchronous client for the vkg wire protocol: one TCP connection,
//! one outstanding request at a time (call–response).
//!
//! With a [`RetryPolicy`] installed the client **self-heals**: typed
//! `Overloaded`/`Draining` refusals back off (bounded exponential, with
//! deterministic jitter from the policy's seed) and retry; a connection
//! loss reconnects transparently and re-sends — but only calls that are
//! safe to re-send. Reads always are. An untokened write is not (its
//! response may have been lost *after* the server applied it), so plain
//! [`Client::add_fact`] only retries refusals. The ambiguity is closed
//! by [`Client::add_fact_idempotent`]: it stamps a client-generated
//! token into the request, the server applies each token at most once
//! (answering retries from its idempotency map, surviving even a
//! crash + WAL recovery), and the token is echoed in the ack — so the full
//! reconnect-and-retry loop applies. Everything the healing layer does
//! is counted in [`RetryStats`] (`client.retry.*`), which the load
//! harness reconciles against the server's `server.wal.*` counters.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use vkg_core::query::aggregate::AggregateKind;
use vkg_core::wal::fault::splitmix64;
use vkg_core::Direction;
use vkg_kg::{EntityId, RelationId};
use vkg_sync::thread;

use crate::protocol::{
    AggregateWire, ErrorCode, MetricsWire, Request, RequestOp, Response, ServerError, StatsWire,
    TopKWire, WireFilter,
};
use crate::wire::{read_frame, write_frame, WireError, MAX_FRAME};

/// Counter names of the client's healing layer, mirroring the server's
/// `server.wal.*` namespace for the reconciliation check.
pub mod retry_names {
    /// Backoff sleeps taken (refusal or transport retry).
    pub const BACKOFFS: &str = "client.retry.backoffs";
    /// Successful transparent reconnects after connection loss.
    pub const RECONNECTS: &str = "client.retry.reconnects";
    /// Requests re-sent after a failure (any kind).
    pub const RETRIED_FRAMES: &str = "client.retry.frames";
    /// `AddFactDynamic` frames re-sent — every server-side dedup hit
    /// must be explained by one of these.
    pub const WRITE_RETRIES: &str = "client.retry.write_retries";
}

/// Everything that can go wrong on the client side of a call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not decode (or the frame was truncated).
    Wire(WireError),
    /// The server answered with a typed refusal or failure.
    Server(ServerError),
    /// The server answered with a well-formed response of the wrong
    /// kind for the request that was sent.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response variant: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Shorthand result type for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// Bounded-retry configuration for a self-healing [`Client`]. All
/// waiting is deterministic: the jitter stream derives from `seed`, so
/// two clients with equal seeds and equal failures sleep identically.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per logical call, the first included (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Upper bound the doubling saturates at.
    pub max_backoff: Duration,
    /// Seeds the jitter stream **and** the idempotency-token stream.
    /// Give concurrent clients distinct seeds: tokens must not collide
    /// within the server's dedup horizon.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(250),
            seed: 0xC0FF_EE00_D00D_F00D,
        }
    }
}

/// What the healing layer did on this client's behalf
/// (`client.retry.*`; see [`retry_names`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Backoff sleeps taken.
    pub backoffs: u64,
    /// Successful transparent reconnects.
    pub reconnects: u64,
    /// Requests re-sent after a failure.
    pub retried_frames: u64,
    /// `AddFactDynamic` frames among the re-sends.
    pub write_retries: u64,
}

/// A connected client. Cheap to construct; not thread-safe (use one
/// client per thread, as the load generator does).
pub struct Client {
    stream: TcpStream,
    /// The peer address, kept for transparent reconnects.
    addr: SocketAddr,
    /// Deadline stamped on requests issued through the typed helpers;
    /// `0` defers to the server's default.
    deadline_ms: u32,
    /// Healing behavior; `None` (the default) means every failure
    /// surfaces immediately, exactly as before retries existed.
    policy: Option<RetryPolicy>,
    /// Jitter stream state.
    jitter: u64,
    /// Idempotency-token stream state.
    tokens: u64,
    stats: RetryStats,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> ClientResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(Client {
            stream,
            addr,
            deadline_ms: 0,
            policy: None,
            jitter: 0,
            tokens: 0,
            stats: RetryStats::default(),
        })
    }

    /// Sets the per-request deadline stamped by the typed helpers
    /// (`None` defers to the server default).
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline_ms = deadline.map_or(0, |d| d.as_millis().min(u32::MAX as u128) as u32);
    }

    /// Installs (or clears) the healing layer. Installing reseeds the
    /// jitter and token streams from the policy's seed.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        if let Some(p) = &policy {
            self.jitter = p.seed ^ 0x6a09_e667_f3bc_c908;
            self.tokens = p.seed ^ 0xbb67_ae85_84ca_a73b;
        }
        self.policy = policy;
    }

    /// What the healing layer has done so far.
    pub fn retry_stats(&self) -> RetryStats {
        self.stats
    }

    /// The next idempotency token from this client's deterministic
    /// stream (never 0, the wire's "untokened" sentinel).
    pub fn next_token(&mut self) -> u64 {
        loop {
            let token = splitmix64(&mut self.tokens);
            if token != 0 {
                return token;
            }
        }
    }

    /// Sends one request and blocks for its response. The transport
    /// failing mid-call (including server-side connection teardown
    /// after a malformed frame) surfaces as `Io` or `Wire`.
    pub fn call(&mut self, request: &Request) -> ClientResult<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        self.stream.flush()?;
        match read_frame(&mut self.stream, MAX_FRAME)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(ClientError::Wire(WireError::Truncated)),
        }
    }

    /// [`Client::call`] under the retry policy. `Overloaded`/`Draining`
    /// refusals always back off and retry (the server answered, so the
    /// request was **not** applied). Transport failures additionally
    /// reconnect and re-send, but only when `resend_safe` — a lost
    /// response to an unsafe (untokened write) call surfaces instead,
    /// because the server may or may not have applied it.
    fn call_resilient(&mut self, request: &Request, resend_safe: bool) -> ClientResult<Response> {
        let Some(policy) = self.policy.clone() else {
            return self.call(request);
        };
        let mut attempt: u32 = 1;
        loop {
            match self.call(request) {
                Ok(Response::Error(e))
                    if matches!(e.code, ErrorCode::Overloaded | ErrorCode::Draining) =>
                {
                    if attempt >= policy.max_attempts {
                        return Ok(Response::Error(e));
                    }
                    self.backoff(&policy, attempt);
                }
                Ok(resp) => return Ok(resp),
                Err(e @ (ClientError::Io(_) | ClientError::Wire(_))) if resend_safe => {
                    if attempt >= policy.max_attempts {
                        return Err(e);
                    }
                    self.backoff(&policy, attempt);
                    // Best-effort: a failed reconnect leaves the dead
                    // stream in place, the next call fails fast, and
                    // the loop backs off again until attempts run out.
                    self.reconnect();
                }
                Err(e) => return Err(e),
            }
            attempt += 1;
            self.stats.retried_frames += 1;
            if matches!(request.op, RequestOp::AddFactDynamic { .. }) {
                self.stats.write_retries += 1;
            }
        }
    }

    /// Sleeps the bounded-exponential, seed-jittered backoff for the
    /// given 1-based attempt number.
    fn backoff(&mut self, policy: &RetryPolicy, attempt: u32) {
        let doublings = attempt.saturating_sub(1).min(20);
        let ceiling = policy
            .base_backoff
            .saturating_mul(1u32 << doublings)
            .min(policy.max_backoff)
            .max(Duration::from_micros(1));
        // Deterministic jitter in [ceiling/2, ceiling]: spreads a herd
        // of retrying clients without losing reproducibility.
        let nanos = u64::try_from(ceiling.as_nanos()).unwrap_or(u64::MAX);
        let jittered = nanos / 2 + splitmix64(&mut self.jitter) % (nanos / 2 + 1);
        thread::sleep(Duration::from_nanos(jittered));
        self.stats.backoffs += 1;
    }

    /// Attempts to replace the stream with a fresh connection to the
    /// original address.
    fn reconnect(&mut self) {
        if let Ok(stream) = TcpStream::connect(self.addr) {
            let _ = stream.set_nodelay(true);
            self.stream = stream;
            self.stats.reconnects += 1;
        }
    }

    fn request(&self, op: RequestOp) -> Request {
        Request {
            deadline_ms: self.deadline_ms,
            op,
        }
    }

    /// Top-k predicted entities for `(entity, relation)` in `direction`.
    pub fn top_k(
        &mut self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
    ) -> ClientResult<TopKWire> {
        let req = self.request(RequestOp::TopK {
            entity: entity.0,
            relation: relation.0,
            direction,
            k: k as u32,
        });
        match self.call_resilient(&req, true)? {
            Response::TopK(t) => Ok(t),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted TopK")),
        }
    }

    /// Top-k restricted by a declarative server-side filter.
    pub fn top_k_filtered(
        &mut self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        filter: WireFilter,
    ) -> ClientResult<TopKWire> {
        let req = self.request(RequestOp::TopKFiltered {
            entity: entity.0,
            relation: relation.0,
            direction,
            k: k as u32,
            filter,
        });
        match self.call_resilient(&req, true)? {
            Response::TopK(t) => Ok(t),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted TopK")),
        }
    }

    /// Aggregate over the probability ball around `(entity, relation)`.
    /// Mirrors the wire message field-for-field, hence the arity.
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate(
        &mut self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        kind: AggregateKind,
        attribute: Option<&str>,
        p_tau: f64,
        sample_size: Option<usize>,
    ) -> ClientResult<AggregateWire> {
        let req = self.request(RequestOp::Aggregate {
            entity: entity.0,
            relation: relation.0,
            direction,
            kind,
            attribute: attribute.map(str::to_string),
            p_tau,
            sample_size: sample_size.map(|a| a.min(u32::MAX as usize) as u32),
        });
        match self.call_resilient(&req, true)? {
            Response::Aggregate(a) => Ok(a),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted Aggregate")),
        }
    }

    /// Appends a fact with local embedding refinement. Returns
    /// `(added, epoch)` — the epoch after the write.
    ///
    /// Untokened: under a retry policy this retries typed refusals
    /// (which the server never applied) but **not** transport failures,
    /// whose response loss leaves the write in doubt. Use
    /// [`Client::add_fact_idempotent`] when full healing is wanted.
    pub fn add_fact(
        &mut self,
        h: EntityId,
        r: RelationId,
        t: EntityId,
        refine_steps: usize,
        learning_rate: f64,
    ) -> ClientResult<(bool, u64)> {
        let req = self.request(RequestOp::AddFactDynamic {
            h: h.0,
            r: r.0,
            t: t.0,
            refine_steps: refine_steps as u32,
            learning_rate,
            token: 0,
        });
        match self.call_resilient(&req, false)? {
            Response::FactAdded { added, epoch, .. } => Ok((added, epoch)),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted FactAdded")),
        }
    }

    /// [`Client::add_fact`] with an idempotency token from this
    /// client's deterministic stream: the server applies the token at
    /// most once (answering re-sends from its dedup map, which survives
    /// crash + WAL recovery), so transport failures reconnect and
    /// re-send safely. The ack must echo the token it was sent.
    pub fn add_fact_idempotent(
        &mut self,
        h: EntityId,
        r: RelationId,
        t: EntityId,
        refine_steps: usize,
        learning_rate: f64,
    ) -> ClientResult<(bool, u64)> {
        let token = self.next_token();
        let req = self.request(RequestOp::AddFactDynamic {
            h: h.0,
            r: r.0,
            t: t.0,
            refine_steps: refine_steps as u32,
            learning_rate,
            token,
        });
        match self.call_resilient(&req, true)? {
            Response::FactAdded {
                added,
                epoch,
                token: echoed,
            } => {
                if echoed != token {
                    return Err(ClientError::Unexpected("FactAdded echoed a foreign token"));
                }
                Ok((added, epoch))
            }
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted FactAdded")),
        }
    }

    /// Engine + server statistics at the current epoch.
    pub fn stats(&mut self) -> ClientResult<StatsWire> {
        let req = self.request(RequestOp::Stats);
        match self.call_resilient(&req, true)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted Stats")),
        }
    }

    /// The server's observability export: merged facade + server metric
    /// registries and at most `last_spans` of the newest request spans.
    /// Answered inline like `stats`, so it works even under overload.
    pub fn metrics(&mut self, last_spans: u32) -> ClientResult<MetricsWire> {
        let req = self.request(RequestOp::Metrics { last_spans });
        match self.call_resilient(&req, true)? {
            Response::Metrics(m) => Ok(m),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted Metrics")),
        }
    }

    /// Asks the server to drain gracefully. The server acknowledges,
    /// then stops admitting work and exits once in-flight requests are
    /// answered.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        match self.call(&self.request(RequestOp::Shutdown))? {
            Response::ShuttingDown => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted ShuttingDown")),
        }
    }
}
