//! Property-based tests for the JL transform and the Theorem 1–3 bounds.

use proptest::prelude::*;
use vkg_transform::{bounds, JlTransform};

proptest! {
    /// The transform is linear: T(ax + by) = aT(x) + bT(y).
    #[test]
    fn transform_linearity(
        seed: u64,
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        x in prop::collection::vec(-10.0f64..10.0, 16),
        y in prop::collection::vec(-10.0f64..10.0, 16),
    ) {
        let t = JlTransform::new(16, 3, seed);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(p, q)| a * p + b * q).collect();
        let lhs = t.apply(&combo);
        let tx = t.apply(&x);
        let ty = t.apply(&y);
        for k in 0..3 {
            let rhs = a * tx[k] + b * ty[k];
            prop_assert!((lhs[k] - rhs).abs() < 1e-6 * rhs.abs().max(1.0));
        }
    }

    /// apply_matrix agrees with row-wise apply for arbitrary shapes.
    #[test]
    fn matrix_consistency(seed: u64, rows in 1usize..6) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * 12).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let t = JlTransform::new(12, 4, seed);
        let m = t.apply_matrix(&data);
        for i in 0..rows {
            let row = t.apply(&data[i * 12..(i + 1) * 12]);
            prop_assert_eq!(&m[i * 4..(i + 1) * 4], row.as_slice());
        }
    }

    /// Theorem 1 bounds are valid probabilities over their whole domain,
    /// decreasing in both ε and α.
    #[test]
    fn theorem1_bounds_behave(eps_u in 0.01f64..20.0, eps_l in 0.01f64..0.99, alpha in 1usize..8) {
        let du = bounds::delta_upper(eps_u, alpha);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&du));
        let dl = bounds::delta_lower(eps_l, alpha);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&dl));
        // Monotone in α.
        prop_assert!(bounds::delta_upper(eps_u, alpha + 1) <= du + 1e-12);
        prop_assert!(bounds::delta_lower(eps_l, alpha + 1) <= dl + 1e-12);
        // Monotone in ε.
        prop_assert!(bounds::delta_upper(eps_u + 0.5, alpha) <= du + 1e-12);
    }

    /// Theorem 2 composition: success probability is a probability,
    /// expected misses is within [0, k], and both improve with larger
    /// distance ratios.
    #[test]
    fn theorem2_composition(ratios in prop::collection::vec(0.5f64..10.0, 1..10), alpha in 1usize..8) {
        let p = bounds::topk_success_probability(&ratios, alpha);
        prop_assert!((0.0..=1.0).contains(&p));
        let e = bounds::expected_misses(&ratios, alpha);
        prop_assert!(e >= 0.0 && e <= ratios.len() as f64 + 1e-9);
        // Inflating every ratio can only help.
        let better: Vec<f64> = ratios.iter().map(|m| m + 1.0).collect();
        prop_assert!(bounds::topk_success_probability(&better, alpha) >= p - 1e-12);
        prop_assert!(bounds::expected_misses(&better, alpha) <= e + 1e-12);
    }

    /// Theorem 3's spill bound is a probability, decreasing in α.
    #[test]
    fn theorem3_bound_behaves(eps in 0.01f64..0.99, alpha in 1usize..8) {
        let b = bounds::spill_in_bound(eps, alpha);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(bounds::spill_in_bound(eps, alpha + 1) <= b + 1e-12);
    }

    /// The zero vector is a fixed point for every draw of the matrix.
    #[test]
    fn zero_fixed_point(seed: u64, in_dim in 2usize..40, out_dim in 1usize..4) {
        let t = JlTransform::new(in_dim, out_dim.min(in_dim), seed);
        let out = t.apply(&vec![0.0; in_dim]);
        prop_assert!(out.iter().all(|&v| v == 0.0));
    }
}
