// pretend: crates/core/src/geometry/kernels.rs
// Fixture for the lexer edge cases: raw identifiers (`r#match`) lex as
// single tokens and nested turbofish (`::<Vec<Vec<u64>>>`) survives
// the `>>` shift ambiguity, so the alloc rule still sees the call
// through both.

fn r#match(ids: &[u32]) -> Vec<u64> {
    ids.iter().map(|&i| u64::from(i)).collect::<Vec<u64>>() // expect: no-alloc-in-kernel
}

fn deep_turbofish(ids: &[u32]) -> Vec<Vec<u64>> {
    ids.chunks(2).map(to_wide).collect::<Vec<Vec<u64>>>() // expect: no-alloc-in-kernel
}

fn to_wide(c: &[u32]) -> Vec<u64> {
    // lint: allow(no-alloc-in-kernel, fixture helper; setup-time shape conversion)
    c.iter().map(|&i| u64::from(i)).collect()
}

fn r#loop(out: &mut [u64], ids: &[u32]) {
    for (o, &i) in out.iter_mut().zip(ids) {
        *o = u64::from(i);
    }
}
