//! The immutable read side of a virtual knowledge graph.
//!
//! A [`VkgSnapshot`] bundles everything a query needs to *read* —
//! the materialized graph `G = (V, E)`, its attributes, the embedding
//! store (the algorithm 𝒜 inducing the predicted edges `E'`), the JL
//! transform S₁ → S₂ and the configuration — with **no** interior
//! mutability. It is cheap to share behind an `Arc`, so any number of
//! reader threads can resolve entities, embeddings and query points
//! concurrently while a single writer cracks the index (which lives in
//! [`crate::engine::IndexState`], behind its own lock).
//!
//! Components are **structurally shared**: each store sits behind its
//! own `Arc`, so cloning a snapshot is a handful of reference-count
//! bumps, and the copy-on-write mutators ([`Arc::make_mut`]) copy only
//! the component a dynamic update actually touches. A fact append
//! clones the graph and embeddings but shares the attribute store with
//! every earlier epoch; an attribute write clones nothing else.

use std::collections::HashSet;
use std::sync::Arc;

use vkg_embed::EmbeddingStore;
use vkg_kg::{AttributeStore, EntityId, KnowledgeGraph, RelationId};
use vkg_sync::pool::Pool;
use vkg_transform::JlTransform;

use crate::config::VkgConfig;
use crate::error::{VkgError, VkgResult};
use crate::geometry::PointSet;

/// Which endpoint of the triple the query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Given a head entity `h`, find tails `t` of likely `(h, r, t)` —
    /// query center `h + r`.
    Tails,
    /// Given a tail entity `t`, find heads `h` of likely `(h, r, t)` —
    /// query center `t − r`.
    Heads,
}

/// An immutable, `Arc`-shareable view of the virtual knowledge graph:
/// interned graph + attributes + embeddings + JL transform + config.
///
/// Every accessor takes `&self`; nothing here ever mutates, so reads are
/// lock-free even while an engine cracks its index. Dynamic updates go
/// through the [`crate::vkg::VirtualKnowledgeGraph`] facade, which
/// copy-on-writes the snapshot.
///
/// ```
/// use vkg_core::snapshot::{Direction, VkgSnapshot};
/// use vkg_core::VkgConfig;
/// use vkg_embed::EmbeddingStore;
/// use vkg_kg::{AttributeStore, KnowledgeGraph};
///
/// let mut graph = KnowledgeGraph::new();
/// let likes = graph.add_relation("likes");
/// let a = graph.add_entity("a");
/// let b = graph.add_entity("b");
/// graph.add_triple(a, likes, b).unwrap();
///
/// // Two 2-d entity embeddings and one relation embedding.
/// let store = EmbeddingStore::from_raw(2, vec![0.0, 0.0, 1.0, 0.0], vec![1.0, 0.0]);
/// let cfg = VkgConfig { alpha: 2, ..VkgConfig::default() };
/// let snap = VkgSnapshot::new(graph, AttributeStore::new(), store, cfg).unwrap();
///
/// // The tail query point for (a, likes, ·) is a + likes = (1, 0).
/// let q = snap.query_point_s1(a, likes, Direction::Tails).unwrap();
/// assert_eq!(q, vec![1.0, 0.0]);
/// // b is a known tail of (a, likes) — E′ semantics will exclude it.
/// assert!(snap.known_neighbors(a, likes, Direction::Tails).contains(&b.0));
/// ```
#[derive(Debug, Clone)]
pub struct VkgSnapshot {
    graph: Arc<KnowledgeGraph>,
    attributes: Arc<AttributeStore>,
    embeddings: Arc<EmbeddingStore>,
    transform: Arc<JlTransform>,
    config: VkgConfig,
}

impl VkgSnapshot {
    /// Validates the configuration and component sizes, derives the JL
    /// transform, and freezes everything into a snapshot.
    pub fn new(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> VkgResult<Self> {
        config.try_validate()?;
        if embeddings.num_entities() != graph.num_entities() {
            return Err(VkgError::Mismatch {
                what: "entity count",
                expected: graph.num_entities(),
                found: embeddings.num_entities(),
            });
        }
        if embeddings.num_relations() != graph.num_relations() {
            return Err(VkgError::Mismatch {
                what: "relation count",
                expected: graph.num_relations(),
                found: embeddings.num_relations(),
            });
        }
        let transform = JlTransform::new(embeddings.dim(), config.alpha, config.transform_seed);
        Ok(Self {
            graph: Arc::new(graph),
            attributes: Arc::new(attributes),
            embeddings: Arc::new(embeddings),
            transform: Arc::new(transform),
            config,
        })
    }

    /// The materialized knowledge graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// The attribute store.
    pub fn attributes(&self) -> &AttributeStore {
        &self.attributes
    }

    /// The embedding store (space S₁).
    pub fn embeddings(&self) -> &EmbeddingStore {
        &self.embeddings
    }

    /// The S₁ → S₂ Johnson–Lindenstrauss transform.
    pub fn transform(&self) -> &JlTransform {
        &self.transform
    }

    /// The configuration in effect.
    pub fn config(&self) -> &VkgConfig {
        &self.config
    }

    /// Projects every entity embedding into S₂ (the point set an index
    /// is built over).
    pub fn project_points(&self) -> PointSet {
        self.project_points_pooled(&Pool::serial())
    }

    /// [`VkgSnapshot::project_points`] over a thread pool: the n × d
    /// entity matrix is chunked row-wise across the pool's workers.
    /// Bit-identical at every width (each row's matvec is untouched).
    pub fn project_points_pooled(&self, pool: &Pool) -> PointSet {
        let projected = self
            .transform
            .apply_matrix_pooled(pool, self.embeddings.entity_matrix());
        PointSet::from_rows(self.config.alpha, projected)
    }

    /// Projects one S₁ vector into S₂.
    pub fn project(&self, s1: &[f64]) -> Vec<f64> {
        self.transform.apply(s1)
    }

    /// Checks that `entity` and `relation` exist.
    pub fn check_ids(&self, entity: EntityId, relation: RelationId) -> VkgResult<()> {
        if entity.index() >= self.graph.num_entities() {
            return Err(VkgError::UnknownEntity(entity.0));
        }
        if relation.index() >= self.graph.num_relations() {
            return Err(VkgError::UnknownRelation(relation.0));
        }
        Ok(())
    }

    /// The query center in S₁ for an entity/relation/direction
    /// (`h + r` for tails, `t − r` for heads).
    pub fn query_point_s1(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
    ) -> VkgResult<Vec<f64>> {
        self.check_ids(entity, relation)?;
        Ok(match direction {
            Direction::Tails => self.embeddings.tail_query_point(entity, relation),
            Direction::Heads => self.embeddings.head_query_point(entity, relation),
        })
    }

    /// The entity's known neighbors under `relation` in `direction` —
    /// the edges already in `E`, which the paper's E′-only semantics
    /// exclude from every answer.
    pub fn known_neighbors(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
    ) -> HashSet<u32> {
        match direction {
            Direction::Tails => self.graph.tails(entity, relation).map(|e| e.0).collect(),
            Direction::Heads => self.graph.heads(entity, relation).map(|e| e.0).collect(),
        }
    }

    // Copy-on-write mutators, used only by the facade's dynamic-update
    // path. Each one copies just its own component (and only while the
    // previous epoch still shares it); the others stay shared across
    // epochs, so a write's cost is proportional to what it touches.

    pub(crate) fn graph_mut(&mut self) -> &mut KnowledgeGraph {
        Arc::make_mut(&mut self.graph)
    }

    pub(crate) fn attributes_mut(&mut self) -> &mut AttributeStore {
        Arc::make_mut(&mut self.attributes)
    }

    pub(crate) fn embeddings_mut(&mut self) -> &mut EmbeddingStore {
        Arc::make_mut(&mut self.embeddings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (KnowledgeGraph, EmbeddingStore) {
        let mut g = KnowledgeGraph::new();
        let r = g.add_relation("r");
        let a = g.add_entity("a");
        let b = g.add_entity("b");
        g.add_triple(a, r, b).unwrap();
        let store = EmbeddingStore::from_raw(2, vec![0.0, 0.0, 1.0, 0.0], vec![1.0, 0.0]);
        (g, store)
    }

    fn cfg() -> VkgConfig {
        VkgConfig {
            alpha: 2,
            ..VkgConfig::default()
        }
    }

    #[test]
    fn snapshot_validates_entity_count() {
        let (g, _) = tiny();
        let store = EmbeddingStore::from_raw(2, vec![0.0, 0.0], vec![1.0, 0.0]);
        let err = VkgSnapshot::new(g, AttributeStore::new(), store, cfg()).unwrap_err();
        assert!(matches!(
            err,
            VkgError::Mismatch {
                what: "entity count",
                ..
            }
        ));
    }

    #[test]
    fn snapshot_validates_config() {
        let (g, store) = tiny();
        let bad = VkgConfig {
            alpha: 2,
            beta: 0.0,
            ..VkgConfig::default()
        };
        assert!(matches!(
            VkgSnapshot::new(g, AttributeStore::new(), store, bad),
            Err(VkgError::InvalidParameter(_))
        ));
    }

    #[test]
    fn unknown_ids_rejected() {
        let (g, store) = tiny();
        let snap = VkgSnapshot::new(g, AttributeStore::new(), store, cfg()).unwrap();
        assert_eq!(
            snap.check_ids(EntityId(99), RelationId(0)),
            Err(VkgError::UnknownEntity(99))
        );
        assert_eq!(
            snap.check_ids(EntityId(0), RelationId(9)),
            Err(VkgError::UnknownRelation(9))
        );
    }

    #[test]
    fn clone_shares_components_until_mutated() {
        let (g, store) = tiny();
        let snap = VkgSnapshot::new(g, AttributeStore::new(), store, cfg()).unwrap();
        let mut next = snap.clone();
        assert!(Arc::ptr_eq(&snap.graph, &next.graph));
        assert!(Arc::ptr_eq(&snap.attributes, &next.attributes));
        assert!(Arc::ptr_eq(&snap.embeddings, &next.embeddings));
        assert!(Arc::ptr_eq(&snap.transform, &next.transform));
        // Mutating one component copies it — and only it.
        next.attributes_mut().set("year", EntityId(0), 1999.0);
        assert!(!Arc::ptr_eq(&snap.attributes, &next.attributes));
        assert!(Arc::ptr_eq(&snap.graph, &next.graph));
        assert!(Arc::ptr_eq(&snap.embeddings, &next.embeddings));
        // The original epoch's view is untouched (the column never
        // existed there).
        assert!(snap.attributes().get("year", EntityId(0)).is_err());
        assert_eq!(
            next.attributes().get("year", EntityId(0)).unwrap(),
            Some(1999.0)
        );
    }

    #[test]
    fn projection_dimensions() {
        let (g, store) = tiny();
        let snap = VkgSnapshot::new(g, AttributeStore::new(), store, cfg()).unwrap();
        let pts = snap.project_points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts.dim(), 2);
        assert_eq!(snap.project(&[1.0, 2.0]).len(), 2);
    }
}
