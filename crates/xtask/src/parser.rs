//! A span-carrying tokenizer and a recursive-descent item parser over
//! the scrubbed source (see [`crate::lexer`]).
//!
//! The tokenizer fixes the two gaps that confused the token-free rules:
//! raw identifiers (`r#type`) lex as one identifier token, and turbofish
//! paths (`.collect::<Vec<u32>>()`) keep the method name adjacent to its
//! argument list instead of hiding it behind generic noise. Every token
//! carries its byte span into the scrubbed text (which is byte-for-byte
//! aligned with the original source), so `parse → span-print` must
//! reproduce the input exactly — a property the round-trip test below
//! checks over every file in `crates/core/src`.
//!
//! The parser does not build an expression tree. It recognises *items*
//! (`fn`, `impl`, `mod`, `trait`, `const`) and, inside each function
//! body, records the ordered event stream the semantic rules need:
//! lock acquisitions, calls, panic sources, and statement/block
//! boundaries for guard-lifetime tracking.

/// Token kind. Literal bodies are already blanked by the lexer, so a
/// `Str` token is its delimiters plus interior spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// `'a`-style lifetime (never a char literal).
    Lifetime,
    /// Numeric literal.
    Num,
    /// String / raw-string literal (scrubbed interior).
    Str,
    /// Char literal (scrubbed interior).
    Char,
    /// Punctuation; `::`, `->` and `=>` are single tokens.
    Punct,
}

/// One token with its byte span into the scrubbed source.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-indexed line of the first byte.
    pub line: usize,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes scrubbed source. Total coverage: the bytes between
/// consecutive token spans are whitespace only (see [`roundtrip_gaps_ok`]).
pub fn tokenize(code: &str) -> Vec<Tok> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        // Raw strings (`r"…"`, `r#"…"#`) and raw byte strings; the lexer
        // kept the delimiters and blanked the interior.
        let raw_at = if b == b'r' {
            Some(i)
        } else if b == b'b' && bytes.get(i + 1) == Some(&b'r') {
            Some(i + 1)
        } else {
            None
        };
        if let Some(r) = raw_at {
            let mut j = r + 1;
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                // Scan the blanked interior to the closing quote + hashes.
                j += 1;
                loop {
                    match bytes.get(j) {
                        None => break,
                        Some(&b'"') => {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while seen < hashes && bytes.get(k) == Some(&b'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break;
                            }
                            j += 1;
                        }
                        Some(&c) => {
                            if c == b'\n' {
                                line += 1;
                            }
                            j += 1;
                        }
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    start,
                    end: j,
                    line: start_line,
                });
                i = j;
                continue;
            }
            if b == b'r'
                && bytes.get(i + 1) == Some(&b'#')
                && bytes.get(i + 2).copied().is_some_and(is_ident_start)
            {
                // Raw identifier: `r#type` is one Ident token.
                let mut j = i + 2;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    start,
                    end: j,
                    line: start_line,
                });
                i = j;
                continue;
            }
        }
        if b == b'b' && bytes.get(i + 1) == Some(&b'"') || b == b'"' {
            // (Byte) string literal: interior is blanked, so the next
            // quote closes it.
            let mut j = if b == b'"' { i + 1 } else { i + 2 };
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\n' {
                    line += 1;
                }
                j += 1;
            }
            j = (j + 1).min(bytes.len());
            toks.push(Tok {
                kind: TokKind::Str,
                start,
                end: j,
                line: start_line,
            });
            i = j;
            continue;
        }
        if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
            // Byte char literal `b'x'` (interior blanked).
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != b'\'' {
                j += 1;
            }
            j = (j + 1).min(bytes.len());
            toks.push(Tok {
                kind: TokKind::Char,
                start,
                end: j,
                line: start_line,
            });
            i = j;
            continue;
        }
        if is_ident_start(b) {
            let mut j = i + 1;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                start,
                end: j,
                line: start_line,
            });
            i = j;
            continue;
        }
        if b.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            // Fractional part: `1.5`, but not the range `1..5`.
            if bytes.get(j) == Some(&b'.')
                && bytes
                    .get(j + 1)
                    .copied()
                    .is_some_and(|c| c.is_ascii_digit())
            {
                j += 1;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                start,
                end: j,
                line: start_line,
            });
            i = j;
            continue;
        }
        if b == b'\'' {
            let next = bytes.get(i + 1).copied();
            let closes_after_one = bytes.get(i + 2) == Some(&b'\'');
            if next.is_some_and(is_ident_start) && !closes_after_one {
                // Lifetime: `'a`, `'static`, `'_`.
                let mut j = i + 1;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    start,
                    end: j,
                    line: start_line,
                });
                i = j;
                continue;
            }
            // Char literal with blanked interior: scan to the close.
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'\'' {
                if bytes[j] == b'\n' {
                    line += 1;
                }
                j += 1;
            }
            j = (j + 1).min(bytes.len());
            toks.push(Tok {
                kind: TokKind::Char,
                start,
                end: j,
                line: start_line,
            });
            i = j;
            continue;
        }
        // Punctuation. Multi-byte tokens the parser relies on.
        let two = bytes.get(i + 1).map(|&n| [b, n]);
        let end = match two {
            Some([b':', b':']) | Some([b'-', b'>']) | Some([b'=', b'>']) => i + 2,
            _ => i + 1,
        };
        toks.push(Tok {
            kind: TokKind::Punct,
            start,
            end,
            line: start_line,
        });
        i = end;
    }
    toks
}

/// The tokenizer's coverage invariant: re-printing every token span in
/// order, with the original inter-token bytes, reproduces the scrubbed
/// source — and every inter-token byte is whitespace. Returns the first
/// offending byte offset, if any.
#[cfg_attr(not(test), allow(dead_code))]
pub fn roundtrip_gaps_ok(code: &str, toks: &[Tok]) -> Result<(), usize> {
    let bytes = code.as_bytes();
    let mut pos = 0usize;
    for t in toks {
        if t.start < pos || t.end > bytes.len() || t.start > t.end {
            return Err(t.start);
        }
        for (off, &b) in bytes[pos..t.start].iter().enumerate() {
            if !b.is_ascii_whitespace() {
                return Err(pos + off);
            }
        }
        pos = t.end;
    }
    for (off, &b) in bytes[pos..].iter().enumerate() {
        if !b.is_ascii_whitespace() {
            return Err(pos + off);
        }
    }
    Ok(())
}

/// What kind of panic source a [`Event::Panic`] site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`
    Unwrap,
    /// `.expect(..)`
    Expect,
    /// `panic!`/`unreachable!`/`todo!`/`unimplemented!`/`assert*!`
    Macro,
    /// `[..]` indexing in expression position (slice/array/map panics).
    Index,
}

/// One ordered fact inside a function body. `depth` is the brace depth
/// relative to the body (the body block itself is depth 1).
#[derive(Debug, Clone)]
pub enum Event {
    /// `recv.lock()` / `recv.read()` / `recv.write()` with no arguments.
    Acquire {
        /// Last field/variable segment of the receiver chain.
        field: String,
        /// Method used (`lock`, `read`, `write`).
        method: &'static str,
        /// `let` binding the guard, if the statement has one; `None`
        /// means a temporary dropped at the end of the statement.
        var: Option<String>,
        line: usize,
        at: usize,
        depth: usize,
    },
    /// A call by last path segment (free fn, method, or `Path::fn`).
    Call {
        name: String,
        /// `let` binding of the statement (a returned guard lives in it).
        var: Option<String>,
        /// The sole argument when it is a bare identifier (`drop(g)`).
        arg: Option<String>,
        line: usize,
        at: usize,
        depth: usize,
    },
    /// A statically-detected panic source.
    Panic {
        kind: PanicKind,
        /// The token text (method/macro name, or `[` for indexing).
        what: String,
        line: usize,
        at: usize,
        /// Kept for symmetry with the other events; the panic rules are
        /// scope-insensitive within a body.
        #[allow(dead_code)]
        depth: usize,
    },
    /// `;` at `depth`: temporaries acquired in this statement die here.
    StmtEnd { depth: usize },
    /// A `}` closing brace: everything acquired at ≥ `depth` dies.
    Close { depth: usize },
}

/// One parsed function (or method, or trait default method).
#[derive(Debug)]
pub struct FnItem {
    /// Bare name (raw-ident prefix stripped).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_ty: Option<String>,
    /// 1-indexed line of the `fn` keyword (diagnostics/debugging).
    #[allow(dead_code)]
    pub line: usize,
    /// Under `#[cfg(test)]` or carrying `#[test]`.
    pub is_test: bool,
    /// Return type mentions a `*Guard*` type — callers inherit the
    /// locks this function leaves held.
    pub returns_guard: bool,
    /// Ordered body facts.
    pub events: Vec<Event>,
    /// Token index range of the body (for identifier sweeps).
    pub body: (usize, usize),
}

impl FnItem {
    /// `Type::name` or `name` — the label used in reported call paths.
    pub fn qname(&self) -> String {
        match &self.impl_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `const` item (for the wire-exhaustiveness rule).
#[derive(Debug)]
pub struct ConstItem {
    pub name: String,
    /// Declared type is exactly `u8` (opcode constants).
    pub is_u8: bool,
    /// Enclosing module path, e.g. `["op"]`.
    pub mods: Vec<String>,
    pub line: usize,
}

/// Per-file item model.
#[derive(Debug)]
pub struct FileModel {
    pub path: String,
    pub fns: Vec<FnItem>,
    pub consts: Vec<ConstItem>,
    pub toks: Vec<Tok>,
    /// The scrubbed source the token spans index into.
    pub code: String,
}

/// Parses one scrubbed file into its item model. Never panics: any
/// construct the parser does not recognise is skipped token-by-token.
pub fn parse(path: &str, code: &str) -> FileModel {
    let toks = tokenize(code);
    let mut p = P {
        code,
        toks: &toks,
        i: 0,
        fns: Vec::new(),
        consts: Vec::new(),
    };
    p.items(&Ctx {
        impl_ty: None,
        mods: Vec::new(),
        cfg_test: false,
    });
    FileModel {
        path: path.to_string(),
        fns: p.fns,
        consts: p.consts,
        toks,
        code: code.to_string(),
    }
}

#[derive(Clone)]
struct Ctx {
    impl_ty: Option<String>,
    mods: Vec<String>,
    cfg_test: bool,
}

struct P<'a> {
    code: &'a str,
    toks: &'a [Tok],
    i: usize,
    fns: Vec<FnItem>,
    consts: Vec<ConstItem>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "return", "loop", "as", "move", "mut", "ref",
    "let", "fn", "pub", "use", "impl", "struct", "enum", "union", "trait", "where", "unsafe",
    "dyn", "box", "break", "continue", "crate", "self", "Self", "super", "mod", "const", "static",
    "type", "extern", "async", "await", "true", "false",
];

impl<'a> P<'a> {
    fn txt(&self, i: usize) -> &'a str {
        match self.toks.get(i) {
            Some(t) => &self.code[t.start..t.end],
            None => "",
        }
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        self.kind(i) == Some(TokKind::Punct) && self.txt(i) == s
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.kind(i) == Some(TokKind::Ident) && self.txt(i) == s
    }

    fn line(&self, i: usize) -> usize {
        self.toks.get(i).map_or(1, |t| t.line)
    }

    /// Ident text with any `r#` raw prefix stripped.
    fn ident_name(&self, i: usize) -> String {
        let t = self.txt(i);
        t.strip_prefix("r#").unwrap_or(t).to_string()
    }

    /// Skips a balanced `(..)`, `[..]` or `{..}` starting at `self.i`.
    fn skip_balanced(&mut self) {
        let (open, close) = match self.txt(self.i) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => {
                self.i += 1;
                return;
            }
        };
        let mut depth = 0usize;
        while self.i < self.toks.len() {
            if self.is_punct(self.i, open) {
                depth += 1;
            } else if self.is_punct(self.i, close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skips to the `;` terminating the current item, balancing every
    /// bracket kind on the way.
    fn skip_to_semi(&mut self) {
        while self.i < self.toks.len() {
            match self.txt(self.i) {
                "(" | "[" | "{" => self.skip_balanced(),
                ";" => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Parses an attribute starting at `#`; returns true when it marks
    /// the next item as test-only (`#[test]` or `#[cfg(test)]`, but not
    /// `#[cfg(not(test))]`).
    fn attr(&mut self) -> bool {
        debug_assert!(self.is_punct(self.i, "#"));
        self.i += 1; // '#'
        if self.is_punct(self.i, "!") {
            self.i += 1; // inner attribute `#![..]`
        }
        if !self.is_punct(self.i, "[") {
            return false;
        }
        let start = self.i;
        self.skip_balanced();
        let end = self.i;
        // `#[test]`
        if end == start + 3 && self.is_ident(start + 1, "test") {
            return true;
        }
        // `#[cfg(test)]` — the exact sequence `cfg ( test )`.
        for j in start + 1..end.saturating_sub(3) {
            if self.is_ident(j, "cfg")
                && self.is_punct(j + 1, "(")
                && self.is_ident(j + 2, "test")
                && self.is_punct(j + 3, ")")
            {
                return true;
            }
        }
        false
    }

    /// Item loop for one brace level. Returns on the closing `}` (which
    /// it consumes) or at end of input.
    fn items(&mut self, ctx: &Ctx) {
        let mut pending_test = false;
        while self.i < self.toks.len() {
            if self.is_punct(self.i, "#") {
                pending_test |= self.attr();
                continue;
            }
            if self.is_punct(self.i, "}") {
                self.i += 1;
                return;
            }
            if self.is_punct(self.i, "{") {
                self.i += 1;
                self.items(ctx);
                continue;
            }
            if self.kind(self.i) != Some(TokKind::Ident) {
                self.i += 1;
                continue;
            }
            match self.txt(self.i) {
                "fn" => {
                    let test = pending_test;
                    pending_test = false;
                    self.function(ctx, test);
                }
                "impl" | "trait" => {
                    let test = pending_test;
                    pending_test = false;
                    self.impl_or_trait(ctx, test);
                }
                "mod" => {
                    let test = pending_test;
                    pending_test = false;
                    self.i += 1;
                    let name = if self.kind(self.i) == Some(TokKind::Ident) {
                        let n = self.ident_name(self.i);
                        self.i += 1;
                        n
                    } else {
                        String::new()
                    };
                    if self.is_punct(self.i, "{") {
                        self.i += 1;
                        let mut inner = ctx.clone();
                        inner.mods.push(name);
                        inner.cfg_test |= test;
                        inner.impl_ty = None;
                        self.items(&inner);
                    } else {
                        self.skip_to_semi();
                    }
                }
                "struct" | "enum" | "union" => {
                    pending_test = false;
                    self.i += 1;
                    while self.i < self.toks.len() {
                        if self.is_punct(self.i, ";") {
                            self.i += 1;
                            break;
                        }
                        if self.is_punct(self.i, "{") || self.is_punct(self.i, "(") {
                            self.skip_balanced();
                            // Tuple structs still end with `;`.
                            if self.is_punct(self.i, ";") {
                                self.i += 1;
                            }
                            break;
                        }
                        self.i += 1;
                    }
                }
                "const" | "static" => {
                    pending_test = false;
                    let line = self.line(self.i);
                    self.i += 1;
                    // `const fn` / `const unsafe fn` / `const extern ..`:
                    // a function, not an item constant — let the `fn`
                    // arm handle it on the next iteration.
                    if matches!(self.txt(self.i), "fn" | "unsafe" | "extern" | "async") {
                        continue;
                    }
                    if self.kind(self.i) == Some(TokKind::Ident)
                        && !KEYWORDS.contains(&self.txt(self.i))
                    {
                        let name = self.ident_name(self.i);
                        let is_u8 =
                            self.is_punct(self.i + 1, ":") && self.is_ident(self.i + 2, "u8");
                        self.consts.push(ConstItem {
                            name,
                            is_u8,
                            mods: ctx.mods.clone(),
                            line,
                        });
                    }
                    self.skip_to_semi();
                }
                "use" | "type" | "extern" => {
                    pending_test = false;
                    self.skip_to_semi();
                }
                "macro_rules" => {
                    pending_test = false;
                    self.i += 1; // name, `!`, then a balanced body
                    while self.i < self.toks.len()
                        && !self.is_punct(self.i, "{")
                        && !self.is_punct(self.i, "(")
                    {
                        self.i += 1;
                    }
                    self.skip_balanced();
                }
                _ => self.i += 1,
            }
        }
    }

    fn impl_or_trait(&mut self, ctx: &Ctx, test: bool) {
        let is_trait = self.is_ident(self.i, "trait");
        self.i += 1;
        // Find the subject type name: for `impl A for B`, it is `B`;
        // otherwise the first top-level (angle-depth 0) identifier.
        let mut name: Option<String> = None;
        let mut after_for = false;
        let mut angle = 0isize;
        while self.i < self.toks.len() && !self.is_punct(self.i, "{") {
            if self.is_punct(self.i, ";") {
                // `impl Trait for Type;` style — no body.
                self.i += 1;
                return;
            }
            match self.txt(self.i) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "for" if angle == 0 && !is_trait => {
                    after_for = true;
                    name = None;
                }
                "where" if angle == 0 => {
                    // The name is settled; keep scanning to the `{`.
                }
                t if self.kind(self.i) == Some(TokKind::Ident)
                    && angle == 0
                    && !KEYWORDS.contains(&t)
                    && (name.is_none() || after_for) =>
                {
                    name = Some(self.ident_name(self.i));
                    after_for = false;
                }
                _ => {}
            }
            self.i += 1;
        }
        if self.is_punct(self.i, "{") {
            self.i += 1;
            let mut inner = ctx.clone();
            inner.impl_ty = name;
            inner.cfg_test |= test;
            self.items(&inner);
        }
    }

    fn function(&mut self, ctx: &Ctx, test: bool) {
        let line = self.line(self.i);
        self.i += 1; // `fn`
        if self.kind(self.i) != Some(TokKind::Ident) {
            return;
        }
        let name = self.ident_name(self.i);
        self.i += 1;
        // Generics.
        if self.is_punct(self.i, "<") {
            let mut angle = 0isize;
            while self.i < self.toks.len() {
                match self.txt(self.i) {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            self.i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                self.i += 1;
            }
        }
        // Parameters.
        if self.is_punct(self.i, "(") {
            self.skip_balanced();
        }
        // Return type + where clause, up to the body or `;`.
        let mut returns_guard = false;
        while self.i < self.toks.len() && !self.is_punct(self.i, "{") && !self.is_punct(self.i, ";")
        {
            if self.kind(self.i) == Some(TokKind::Ident) && self.txt(self.i).contains("Guard") {
                returns_guard = true;
            }
            if self.is_punct(self.i, "(") || self.is_punct(self.i, "[") {
                self.skip_balanced();
                continue;
            }
            self.i += 1;
        }
        if self.is_punct(self.i, ";") {
            self.i += 1;
            self.fns.push(FnItem {
                name,
                impl_ty: ctx.impl_ty.clone(),
                line,
                is_test: test || ctx.cfg_test,
                returns_guard,
                events: Vec::new(),
                body: (self.i, self.i),
            });
            return;
        }
        if !self.is_punct(self.i, "{") {
            return;
        }
        let body_start = self.i;
        self.i += 1;
        let events = self.body_events();
        self.fns.push(FnItem {
            name,
            impl_ty: ctx.impl_ty.clone(),
            line,
            is_test: test || ctx.cfg_test,
            returns_guard,
            events,
            body: (body_start, self.i),
        });
    }

    /// Scans a function body (opening `{` already consumed), recording
    /// the ordered event stream. Consumes the closing `}`.
    fn body_events(&mut self) -> Vec<Event> {
        let mut events = Vec::new();
        let mut depth = 1usize;
        let mut current_let: Option<String> = None;
        while self.i < self.toks.len() {
            if self.kind(self.i) == Some(TokKind::Punct) {
                match self.txt(self.i) {
                    "{" => {
                        depth += 1;
                        current_let = None;
                        self.i += 1;
                        continue;
                    }
                    "}" => {
                        events.push(Event::Close { depth });
                        current_let = None;
                        depth -= 1;
                        self.i += 1;
                        if depth == 0 {
                            return events;
                        }
                        continue;
                    }
                    ";" => {
                        events.push(Event::StmtEnd { depth });
                        current_let = None;
                        self.i += 1;
                        continue;
                    }
                    "[" => {
                        // Indexing panics only in expression position:
                        // the previous token ends an expression.
                        let expr_pos = self.i > 0
                            && match self.kind(self.i - 1) {
                                Some(TokKind::Ident) => !KEYWORDS.contains(&self.txt(self.i - 1)),
                                Some(TokKind::Str) => true,
                                Some(TokKind::Punct) => {
                                    let p = self.txt(self.i - 1);
                                    p == "]" || p == ")"
                                }
                                _ => false,
                            };
                        if expr_pos {
                            let t = self.toks[self.i];
                            events.push(Event::Panic {
                                kind: PanicKind::Index,
                                what: "[..] indexing".to_string(),
                                line: t.line,
                                at: t.start,
                                depth,
                            });
                        }
                        self.i += 1;
                        continue;
                    }
                    _ => {
                        self.i += 1;
                        continue;
                    }
                }
            }
            if self.kind(self.i) != Some(TokKind::Ident) {
                self.i += 1;
                continue;
            }
            let t = self.toks[self.i];
            let word = self.txt(self.i);
            // `let [mut] name` opens a binding for the statement.
            if word == "let" {
                let mut j = self.i + 1;
                if self.is_ident(j, "mut") {
                    j += 1;
                }
                if self.kind(j) == Some(TokKind::Ident) && !KEYWORDS.contains(&self.txt(j)) {
                    current_let = Some(self.ident_name(j));
                } else {
                    current_let = None;
                }
                self.i += 1;
                continue;
            }
            // Panic macros.
            if self.is_punct(self.i + 1, "!")
                && matches!(
                    word,
                    "panic"
                        | "unreachable"
                        | "todo"
                        | "unimplemented"
                        | "assert"
                        | "assert_eq"
                        | "assert_ne"
                )
            {
                events.push(Event::Panic {
                    kind: PanicKind::Macro,
                    what: format!("{word}!"),
                    line: t.line,
                    at: t.start,
                    depth,
                });
                self.i += 2;
                continue;
            }
            if KEYWORDS.contains(&word) {
                self.i += 1;
                continue;
            }
            // A call: ident, optional turbofish, then `(`.
            let mut j = self.i + 1;
            if self.is_punct(j, "::") && self.is_punct(j + 1, "<") {
                let mut angle = 0isize;
                j += 1;
                while j < self.toks.len() {
                    match self.txt(j) {
                        "<" => angle += 1,
                        ">" => {
                            angle -= 1;
                            if angle == 0 {
                                j += 1;
                                break;
                            }
                        }
                        "(" | ")" | ";" | "{" | "}" => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            if !self.is_punct(j, "(") {
                self.i += 1;
                continue;
            }
            let name = self.ident_name(self.i);
            let is_method = self.i > 0 && self.is_punct(self.i - 1, ".");
            let empty_args = self.is_punct(j + 1, ")");
            if is_method && empty_args && matches!(name.as_str(), "lock" | "read" | "write") {
                if let Some(field) = self.receiver_field(self.i - 1) {
                    let method = match name.as_str() {
                        "lock" => "lock",
                        "read" => "read",
                        _ => "write",
                    };
                    events.push(Event::Acquire {
                        field,
                        method,
                        var: current_let.clone(),
                        line: t.line,
                        at: t.start,
                        depth,
                    });
                    self.i = j + 2;
                    continue;
                }
            }
            if is_method && name == "unwrap" && empty_args {
                events.push(Event::Panic {
                    kind: PanicKind::Unwrap,
                    what: ".unwrap()".to_string(),
                    line: t.line,
                    at: t.start,
                    depth,
                });
                self.i = j + 1;
                continue;
            }
            if is_method && name == "expect" {
                events.push(Event::Panic {
                    kind: PanicKind::Expect,
                    what: ".expect(..)".to_string(),
                    line: t.line,
                    at: t.start,
                    depth,
                });
                self.i = j + 1;
                continue;
            }
            // `drop(g)` releases the named guard.
            let arg = if self.kind(j + 1) == Some(TokKind::Ident) && self.is_punct(j + 2, ")") {
                Some(self.ident_name(j + 1))
            } else {
                None
            };
            events.push(Event::Call {
                name,
                var: current_let.clone(),
                arg,
                line: t.line,
                at: t.start,
                depth,
            });
            self.i = j + 1;
        }
        events
    }

    /// Receiver of a method call: the identifier ending the field chain
    /// before the `.` at token index `dot` (`self.a.b.lock()` → `b`,
    /// `slots[i].lock()` → `slots`).
    fn receiver_field(&self, dot: usize) -> Option<String> {
        if dot == 0 {
            return None;
        }
        let mut k = dot - 1;
        if self.is_punct(k, "]") {
            // Skip back over the balanced index expression.
            let mut depth = 0isize;
            loop {
                if self.is_punct(k, "]") {
                    depth += 1;
                } else if self.is_punct(k, "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        if self.kind(k) == Some(TokKind::Ident) && !KEYWORDS.contains(&self.txt(k)) {
            return Some(self.ident_name(k));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn model(src: &str) -> FileModel {
        parse("crates/test/src/lib.rs", &scrub(src).code)
    }

    #[test]
    fn raw_idents_and_turbofish_tokenize_as_units() {
        let code = "let r#type = xs.collect::<Vec<u32>>();";
        let toks = tokenize(code);
        let texts: Vec<&str> = toks.iter().map(|t| &code[t.start..t.end]).collect();
        assert!(texts.contains(&"r#type"), "{texts:?}");
        assert!(texts.contains(&"collect"), "{texts:?}");
        assert!(roundtrip_gaps_ok(code, &toks).is_ok());
    }

    #[test]
    fn roundtrip_over_tricky_literals() {
        for src in [
            "fn f<'a>(x: &'a str) -> char { 'y' }",
            "let s = r#\"raw \" body\"#; let b = b\"bytes\"; let c = b'x';",
            "let n = 1_000.5e3; let r = 0..10; let h = 0xFF_u8;",
        ] {
            let code = scrub(src).code;
            let toks = tokenize(&code);
            assert_eq!(roundtrip_gaps_ok(&code, &toks), Ok(()), "{src}");
        }
    }

    #[test]
    fn parses_fns_impls_and_tests() {
        let m = model(
            "impl Foo { fn a(&self) {} }\n\
             impl Bar for Foo { fn b(&self) {} }\n\
             #[cfg(test)] mod tests { fn c() {} #[test] fn d() {} }\n\
             fn e() {}\n",
        );
        let names: Vec<(String, bool)> = m.fns.iter().map(|f| (f.qname(), f.is_test)).collect();
        assert!(names.contains(&("Foo::a".into(), false)), "{names:?}");
        assert!(names.contains(&("Foo::b".into(), false)), "{names:?}");
        assert!(names.contains(&("c".into(), true)));
        assert!(names.contains(&("d".into(), true)));
        assert!(names.contains(&("e".into(), false)));
    }

    #[test]
    fn body_events_capture_locks_calls_and_panics() {
        let m = model(
            "fn f(&self) {\n\
                 let g = self.crack_log.lock();\n\
                 self.sync_shard(0);\n\
                 drop(g);\n\
                 let v = xs[i];\n\
                 x.unwrap();\n\
             }\n",
        );
        let ev = &m.fns[0].events;
        assert!(matches!(&ev[0], Event::Acquire { field, var: Some(v), .. }
            if field == "crack_log" && v == "g"));
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::Call { name, .. } if name == "sync_shard")));
        assert!(ev.iter().any(
            |e| matches!(e, Event::Call { name, arg: Some(a), .. } if name == "drop" && a == "g")
        ));
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::Panic {
                kind: PanicKind::Index,
                ..
            }
        )));
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::Panic {
                kind: PanicKind::Unwrap,
                ..
            }
        )));
    }

    #[test]
    fn indexed_receiver_and_guard_returns() {
        let m = model(
            "fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, IndexState> {\n\
                 self.shards[i].state.write()\n\
             }\n",
        );
        let f = &m.fns[0];
        assert!(f.returns_guard);
        assert!(f
            .events
            .iter()
            .any(|e| matches!(e, Event::Acquire { field, .. } if field == "state")));
    }

    #[test]
    fn consts_record_module_and_type() {
        let m = model("pub mod op { pub const TOP_K: u8 = 0x01; }\nconst N: usize = 4;\n");
        assert_eq!(m.consts.len(), 2);
        let top_k = m.consts.iter().find(|c| c.name == "TOP_K").unwrap();
        assert!(top_k.is_u8);
        assert_eq!(top_k.mods, vec!["op".to_string()]);
        assert!(!m.consts.iter().find(|c| c.name == "N").unwrap().is_u8);
    }

    #[test]
    fn roundtrip_every_core_source_file() {
        // The acceptance property: tokenize → span-print reproduces the
        // input byte-for-byte over every file in crates/core/src.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("repo root")
            .join("crates/core/src");
        let mut files = Vec::new();
        collect(&root, &mut files);
        assert!(files.len() > 10, "walker found only {} files", files.len());
        for f in files {
            let src = std::fs::read_to_string(&f).expect("readable");
            let code = scrub(&src).code;
            assert_eq!(
                code.len(),
                src.len(),
                "{}: scrub preserves length",
                f.display()
            );
            let toks = tokenize(&code);
            assert_eq!(
                roundtrip_gaps_ok(&code, &toks),
                Ok(()),
                "{}: non-whitespace byte outside every token span",
                f.display()
            );
            // And the parser must accept it without panicking, finding
            // fns wherever the source declares any (re-export-only
            // `mod.rs` files legitimately have none).
            let m = parse("crates/core/src/x.rs", &code);
            assert!(
                !m.fns.is_empty() || !code.contains("fn "),
                "{}",
                f.display()
            );
        }
    }

    fn collect(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    collect(&p, out);
                } else if p.extension().is_some_and(|x| x == "rs") {
                    out.push(p);
                }
            }
        }
    }
}
