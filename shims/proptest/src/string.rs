//! String generation from a small regex subset.
//!
//! Supports what the workspace tests actually use: sequences of literal
//! characters and character classes (`[a-z0-9_]`), each optionally
//! followed by a repetition `{m}`, `{m,n}`, `?`, `+` or `*`. Unsupported
//! constructs panic with a message naming the pattern, so a silently
//! wrong generator can't masquerade as coverage.

use rand::Rng;

use crate::test_runner::TestRng;

/// Upper bound substituted for the open repetitions `+` and `*`.
const UNBOUNDED_REP: usize = 8;

#[derive(Debug)]
enum Atom {
    /// A set of candidate characters (singleton for literals).
    Class(Vec<char>),
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates a string matching `pattern` (see module docs for the
/// supported subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let reps = rng.gen_range(piece.min..=piece.max);
        let Atom::Class(chars) = &piece.atom;
        for _ in 0..reps {
            out.push(chars[rng.gen_range(0..chars.len())]);
        }
    }
    out
}

fn unsupported(pattern: &str, what: &str) -> ! {
    panic!("proptest shim: unsupported regex construct ({what}) in pattern {pattern:?}");
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut set = Vec::new();
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| unsupported(pattern, "unterminated class"));
                    match c {
                        ']' => break,
                        '^' if set.is_empty() => unsupported(pattern, "negated class"),
                        lo => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = chars
                                    .next()
                                    .unwrap_or_else(|| unsupported(pattern, "open range"));
                                if hi == ']' {
                                    set.push(lo);
                                    set.push('-');
                                    break;
                                }
                                if hi < lo {
                                    unsupported(pattern, "inverted range");
                                }
                                set.extend((lo..=hi).filter(|c| c.is_ascii() || lo == hi));
                            } else {
                                set.push(lo);
                            }
                        }
                    }
                }
                if set.is_empty() {
                    unsupported(pattern, "empty class");
                }
                Atom::Class(set)
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| unsupported(pattern, "trailing backslash"));
                Atom::Class(vec![escaped])
            }
            '(' | ')' | '|' | '.' | '^' | '$' => unsupported(pattern, "metacharacter"),
            literal => Atom::Class(vec![literal]),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => unsupported(pattern, "unterminated repetition"),
                    }
                }
                let parse_n = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| unsupported(pattern, "non-numeric repetition"))
                };
                match spec.split_once(',') {
                    Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
                    None => {
                        let n = parse_n(&spec);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_REP)
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_REP)
            }
            _ => (1, 1),
        };
        if min > max {
            unsupported(pattern, "inverted repetition");
        }
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests")
    }

    #[test]
    fn class_with_bounded_repeat() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_exact_repeat() {
        let mut rng = rng();
        let s = generate_matching("ab[0-9]{3}", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn alternation_rejected() {
        generate_matching("a|b", &mut rng());
    }
}
