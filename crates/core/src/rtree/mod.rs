//! Top-down R-tree bulk-loading machinery (Algorithm 1, BULKLOADCHUNK).
//!
//! The cracking index in [`crate::index`] reuses everything here: the
//! multi-sort-order partition representation ([`sorted::SortOrders`]),
//! the two-component node-splitting cost ([`cost::SplitCost`]), and the
//! BESTBINARYSPLIT candidate enumeration ([`split::best_splits`]).

pub mod cost;
pub mod sorted;
pub mod split;

pub use cost::SplitCost;
pub use sorted::SortOrders;
pub use split::{best_splits, SplitCandidate};

/// Height of a packed R-tree over `len` points with leaf capacity `n_leaf`
/// and fanout `m_fanout`: the smallest `h` with `n_leaf · m_fanout^h ≥ len`.
///
/// Height 0 means the points fit in a single leaf.
pub fn height_for(len: usize, n_leaf: usize, m_fanout: usize) -> u32 {
    debug_assert!(n_leaf >= 1 && m_fanout >= 2);
    let mut h = 0u32;
    let mut capacity = n_leaf;
    while capacity < len {
        capacity = capacity.saturating_mul(m_fanout);
        h += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn height_examples() {
        assert_eq!(height_for(0, 10, 4), 0);
        assert_eq!(height_for(10, 10, 4), 0);
        assert_eq!(height_for(11, 10, 4), 1);
        assert_eq!(height_for(40, 10, 4), 1);
        assert_eq!(height_for(41, 10, 4), 2);
        assert_eq!(height_for(160, 10, 4), 2);
        assert_eq!(height_for(161, 10, 4), 3);
    }

    #[test]
    fn height_monotonic_in_len() {
        let mut prev = 0;
        for len in 1..2000 {
            let h = height_for(len, 8, 4);
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn capacity_covers_len() {
        for len in [1usize, 7, 100, 999, 12345] {
            let h = height_for(len, 16, 8);
            let cap = 16usize * 8usize.pow(h);
            assert!(cap >= len, "len {len}: height {h} capacity {cap}");
        }
    }
}
