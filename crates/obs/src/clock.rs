//! The workspace's single source of time.
//!
//! A [`Clock`] hands out monotonic [`Tick`]s (nanoseconds since the
//! clock's origin). The real clock is a thin wrapper over
//! [`std::time::Instant`]; the mock clock is an atomic counter that
//! tests advance by hand, so span timings and deadline logic are
//! deterministic under test. The xtask `no-raw-timing` lint keeps
//! `Instant::now()` out of every crate except this one and the bench
//! binaries, which forces all timing through this seam.

use std::time::{Duration, Instant};

use vkg_sync::{Arc, AtomicU64, Ordering};

/// A monotonic timestamp: nanoseconds since the owning clock's origin.
///
/// Ticks from different clocks are not comparable; keep one clock per
/// subsystem (one per server, one per bench run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Tick(u64);

impl Tick {
    /// Nanoseconds since the clock origin.
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// A tick at an explicit nanosecond offset (decoding wire spans,
    /// building fixtures).
    pub fn from_ns(ns: u64) -> Self {
        Tick(ns)
    }

    /// Nanoseconds elapsed from `earlier` to `self` (zero if the clock
    /// appears to have gone backwards, which a monotonic clock never
    /// does but a mock set carelessly could).
    pub fn since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

#[derive(Debug, Clone)]
enum Inner {
    Real { origin: Instant },
    Mock { now_ns: Arc<AtomicU64> },
}

/// Monotonic clock, real or mocked. Cloning is cheap and clones share
/// the same origin (and, for mocks, the same hand), so handles can be
/// passed to worker threads freely.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Inner,
}

impl Default for Clock {
    fn default() -> Self {
        Clock::real()
    }
}

impl Clock {
    /// A real monotonic clock; its origin is the moment of creation.
    pub fn real() -> Self {
        Clock {
            inner: Inner::Real {
                origin: Instant::now(),
            },
        }
    }

    /// A mock clock starting at tick zero; advance it with
    /// [`Clock::advance`].
    pub fn mock() -> Self {
        Clock {
            inner: Inner::Mock {
                now_ns: Arc::new(AtomicU64::new(0)),
            },
        }
    }

    /// Whether this is a mock clock.
    pub fn is_mock(&self) -> bool {
        matches!(self.inner, Inner::Mock { .. })
    }

    /// The current tick.
    pub fn now(&self) -> Tick {
        match &self.inner {
            Inner::Real { origin } => {
                let ns = origin.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                Tick(ns)
            }
            // relaxed: the mock hand is a plain value; readers only need
            // monotonicity per handle, which fetch_add in advance gives.
            Inner::Mock { now_ns } => Tick(now_ns.load(Ordering::Relaxed)),
        }
    }

    /// Duration elapsed since `start` (saturating at zero).
    pub fn since(&self, start: Tick) -> Duration {
        Duration::from_nanos(self.now().since(start))
    }

    /// Advances a mock clock by `d`. On a real clock this is a no-op —
    /// real time cannot be steered — so production code paths can hold
    /// either kind without branching.
    pub fn advance(&self, d: Duration) {
        if let Inner::Mock { now_ns } = &self.inner {
            let ns = d.as_nanos().min(u64::MAX as u128) as u64;
            // relaxed: the mock hand is a plain value (see `now`).
            now_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// A started timer: a [`Clock`] plus its start tick — the drop-in
/// replacement for the `let t = Instant::now(); … t.elapsed()` idiom in
/// code the `no-raw-timing` lint covers.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    clock: Clock,
    start: Tick,
}

impl Stopwatch {
    /// Starts a stopwatch on `clock` (mockable timing).
    pub fn new(clock: &Clock) -> Self {
        Stopwatch {
            clock: clock.clone(),
            start: clock.now(),
        }
    }

    /// Starts a stopwatch on a fresh real clock.
    pub fn start() -> Self {
        Self::new(&Clock::real())
    }

    /// Time elapsed since the stopwatch started.
    pub fn elapsed(&self) -> Duration {
        self.clock.since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_is_deterministic() {
        let c = Clock::mock();
        assert!(c.is_mock());
        let t0 = c.now();
        assert_eq!(t0.as_ns(), 0);
        c.advance(Duration::from_micros(250));
        assert_eq!(c.now().since(t0), 250_000);
        assert_eq!(c.since(t0), Duration::from_micros(250));
    }

    #[test]
    fn mock_clones_share_the_hand() {
        let c = Clock::mock();
        let c2 = c.clone();
        c.advance(Duration::from_nanos(7));
        assert_eq!(c2.now().as_ns(), 7);
    }

    #[test]
    fn real_clock_is_monotonic() {
        let c = Clock::real();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        // advance is a documented no-op on real clocks.
        c.advance(Duration::from_secs(3600));
        assert!(c.since(a) < Duration::from_secs(3600));
    }

    #[test]
    fn stopwatch_tracks_its_clock() {
        let c = Clock::mock();
        let sw = Stopwatch::new(&c);
        c.advance(Duration::from_millis(3));
        assert_eq!(sw.elapsed(), Duration::from_millis(3));
        assert!(Stopwatch::start().elapsed() < Duration::from_secs(60));
    }

    #[test]
    fn tick_since_saturates() {
        assert_eq!(Tick::from_ns(5).since(Tick::from_ns(9)), 0);
        assert_eq!(Tick::from_ns(9).since(Tick::from_ns(5)), 4);
    }
}
