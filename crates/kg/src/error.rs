//! Error type for the knowledge-graph substrate.

use std::fmt;

/// Result alias used throughout `vkg-kg`.
pub type Result<T> = std::result::Result<T, KgError>;

/// Errors raised by graph construction, attribute access and I/O.
#[derive(Debug)]
pub enum KgError {
    /// An entity id referenced a vertex that does not exist.
    UnknownEntity(u32),
    /// A relation id referenced a relationship type that does not exist.
    UnknownRelation(u32),
    /// A named attribute was requested but never registered.
    UnknownAttribute(String),
    /// A parsed input line did not have the expected shape.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for KgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgError::UnknownEntity(id) => write!(f, "unknown entity id {id}"),
            KgError::UnknownRelation(id) => write!(f, "unknown relation id {id}"),
            KgError::UnknownAttribute(name) => write!(f, "unknown attribute {name:?}"),
            KgError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            KgError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for KgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KgError {
    fn from(e: std::io::Error) -> Self {
        KgError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(KgError::UnknownEntity(7).to_string(), "unknown entity id 7");
        assert_eq!(
            KgError::UnknownRelation(3).to_string(),
            "unknown relation id 3"
        );
        assert!(KgError::UnknownAttribute("age".into())
            .to_string()
            .contains("age"));
        let parse = KgError::Parse {
            line: 12,
            message: "expected 3 fields".into(),
        };
        assert!(parse.to_string().contains("line 12"));
    }

    #[test]
    fn io_error_preserves_source() {
        let err: KgError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
