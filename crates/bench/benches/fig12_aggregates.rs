//! Criterion counterpart of Figures 12–16: aggregate-query latency as a
//! function of sample size `a` (the time side of the time/accuracy
//! trade-off; `run_experiments` reports the accuracy side).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vkg::prelude::*;
use vkg_bench::setup::{self, Scale};

fn bench_aggregates(c: &mut Criterion) {
    let p = setup::movie(Scale::Smoke, 24);
    let snap = p.snapshot(vkg_bench::setup::bench_config());
    let mut engine = IndexState::cracking(&snap);
    let likes = snap.graph().relation_id("likes").unwrap();
    let users: Vec<EntityId> = (0..12)
        .filter_map(|u| snap.graph().entity_id(&format!("user_{u}")))
        .collect();
    // Warm the index.
    for &u in &users {
        let _ = engine.aggregate(
            &snap,
            u,
            likes,
            Direction::Tails,
            &AggregateSpec::count(0.05),
        );
    }

    let mut group = c.benchmark_group("fig12_16_aggregates");

    for a in [2usize, 10, 50] {
        let spec = AggregateSpec::count(0.05).with_sample(a);
        let mut i = 0usize;
        group.bench_function(&format!("count_a{a}"), |b| {
            b.iter(|| {
                let u = users[i % users.len()];
                i += 1;
                black_box(
                    engine
                        .aggregate(&snap, u, likes, Direction::Tails, &spec)
                        .unwrap(),
                )
            })
        });
    }

    for a in [2usize, 10, 50] {
        let spec = AggregateSpec::of(AggregateKind::Avg, "year", 0.05).with_sample(a);
        let mut i = 0usize;
        group.bench_function(&format!("avg_year_a{a}"), |b| {
            b.iter(|| {
                let u = users[i % users.len()];
                i += 1;
                black_box(
                    engine
                        .aggregate(&snap, u, likes, Direction::Tails, &spec)
                        .unwrap(),
                )
            })
        });
    }

    let max_spec = AggregateSpec::of(AggregateKind::Max, "year", 0.05).with_sample(10);
    let mut i = 0usize;
    group.bench_function("max_year_a10", |b| {
        b.iter(|| {
            let u = users[i % users.len()];
            i += 1;
            black_box(
                engine
                    .aggregate(&snap, u, likes, Direction::Tails, &max_spec)
                    .unwrap(),
            )
        })
    });

    let min_spec = AggregateSpec::of(AggregateKind::Min, "year", 0.05).with_sample(10);
    let mut i = 0usize;
    group.bench_function("min_year_a10", |b| {
        b.iter(|| {
            let u = users[i % users.len()];
            i += 1;
            black_box(
                engine
                    .aggregate(&snap, u, likes, Direction::Tails, &min_spec)
                    .unwrap(),
            )
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_aggregates
}
criterion_main!(benches);
