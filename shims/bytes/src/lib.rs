//! Offline stand-in for the slice of the `bytes` crate used by the
//! embedding binary codec: an owned immutable [`Bytes`] buffer, a
//! growable [`BytesMut`] builder, and the little-endian cursor traits
//! [`Buf`] / [`BufMut`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// An owned, immutable byte buffer. Dereferences to `[u8]`.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// The number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer used to assemble a [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// The number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

/// Write-side cursor: appends fixed-width little-endian values.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends an `f64` in little-endian IEEE-754 order.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor: consumes fixed-width little-endian values from the
/// front.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes to `dst`, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consumes a little-endian IEEE-754 `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "copy_to_slice out of bounds: need {}, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_f64_le(-1.25);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 3 + 1 + 4 + 8);

        let mut cur: &[u8] = &frozen;
        let mut hdr = [0u8; 3];
        cur.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xdead_beef);
        assert_eq!(cur.get_f64_le(), -1.25);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        cur.get_u32_le();
    }
}
