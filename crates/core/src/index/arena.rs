//! The node arena: flat storage for the (possibly partial) R-tree.
//!
//! Nodes live in one `Vec` and refer to each other by [`NodeId`]; ids are
//! stable for the life of the index (installing a built subtree reuses
//! the replaced node's id so parents stay valid, and children are
//! appended). The arena also owns the size accounting the evaluation
//! figures report (node counts for Fig. 9, byte sizes for Figs. 10–11).

use crate::geometry::Mbr;
use crate::rtree::SortOrders;

use super::build::{BuiltKind, BuiltNode};
use super::CrackingIndex;

/// Arena id of a node.
pub type NodeId = u32;

/// Payload of an arena node.
#[derive(Debug)]
pub enum NodeKind {
    /// Split node with child node ids.
    Internal(Vec<NodeId>),
    /// Terminal leaf with ≤ N point ids.
    Leaf(Vec<u32>),
    /// A contour partition (Definition 2): has data but no children yet.
    Unsplit(SortOrders),
}

/// One node of the (possibly partial) R-tree.
#[derive(Debug)]
pub struct Node {
    /// Bounding region of every point below this node.
    pub mbr: Mbr,
    /// Height (0 = leaf level).
    pub height: u32,
    /// Children / payload.
    pub kind: NodeKind,
}

impl CrackingIndex {
    /// Number of nodes currently allocated (Fig. 9's metric).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate index size in bytes (Figs. 10–11's metric): node
    /// envelopes plus leaf/partition payloads. The point coordinates are
    /// excluded — every method stores those.
    pub fn index_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for node in &self.nodes {
            bytes += std::mem::size_of::<Node>();
            bytes += match &node.kind {
                NodeKind::Internal(children) => children.capacity() * std::mem::size_of::<NodeId>(),
                NodeKind::Leaf(ids) => ids.capacity() * std::mem::size_of::<u32>(),
                NodeKind::Unsplit(orders) => orders.bytes(),
            };
        }
        bytes
    }

    /// Node ids of the current contour (Definition 2): unsplit partitions
    /// and terminal leaves, in DFS order.
    pub fn contour(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id as usize].kind {
                NodeKind::Internal(children) => stack.extend(children.iter().rev().copied()),
                _ => out.push(id),
            }
        }
        out
    }

    /// The point ids stored at a contour element (empty for internal
    /// nodes).
    pub fn element_point_ids(&self, id: NodeId) -> &[u32] {
        match &self.nodes[id as usize].kind {
            NodeKind::Internal(_) => &[],
            NodeKind::Leaf(ids) => ids,
            NodeKind::Unsplit(orders) => orders.ids(0),
        }
    }

    /// Replaces node `id` with the built subtree (children freshly
    /// allocated; `id` itself is reused so parents stay valid).
    pub(super) fn install(&mut self, id: NodeId, built: BuiltNode) {
        let BuiltNode { mbr, height, kind } = built;
        let new_kind = match kind {
            BuiltKind::Leaf(ids) => NodeKind::Leaf(ids),
            BuiltKind::Unsplit(orders) => NodeKind::Unsplit(orders),
            BuiltKind::Internal(children) => {
                let child_ids: Vec<NodeId> = children
                    .into_iter()
                    .map(|c| {
                        let cid = self.alloc();
                        self.install(cid, c);
                        cid
                    })
                    .collect();
                NodeKind::Internal(child_ids)
            }
        };
        let node = &mut self.nodes[id as usize];
        node.mbr = mbr;
        node.height = height;
        node.kind = new_kind;
    }

    pub(super) fn alloc(&mut self) -> NodeId {
        // lint: allow(no-unwrap, node ids are u32 by design; 2^32 nodes would exceed addressable memory long before this fires)
        let id = NodeId::try_from(self.nodes.len())
            .expect("invariant: node arena holds fewer than u32::MAX nodes");
        self.nodes.push(Node {
            mbr: Mbr::empty(self.points.dim().max(1)),
            height: 0,
            kind: NodeKind::Leaf(Vec::new()),
        });
        self.stats.nodes_created += 1;
        id
    }
}
