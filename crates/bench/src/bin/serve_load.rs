//! Open-loop load generator for the `vkg-server` serving layer.
//!
//! Starts an in-process server over the smoke-scale movie dataset, then
//! drives it at a target QPS: request *i* is launched at
//! `start + i/qps` regardless of how long earlier requests took (open
//! loop — the arrival process does not slow down when the server does,
//! so queueing delay shows up in the latencies instead of being hidden
//! by back-pressure). Reports hand-rolled p50/p95/p99/max latency
//! histograms, the shed rate, and the error count.
//!
//! ```text
//! cargo run --release -p vkg-bench --bin serve_load -- --qps 150 --seconds 2 --seed 7 --check
//! ```
//!
//! `--check` exits non-zero unless every completed request succeeded,
//! at least one completed, and the server's own telemetry (fetched over
//! the `Metrics` wire opcode before shutdown) reconciles with what the
//! clients observed: `admitted == answered` once the senders drained,
//! the server's shed count matches the client-observed overload
//! rejections, and the server-side p50 sits at or below the
//! client-side p50 (plus one histogram bucket of tolerance) — the CI
//! tier-2 gate. `--metrics-out PATH` writes the full server snapshot in
//! the `vkg-obs` text exposition format as a run artifact.
//!
//! The serve path's result cache and same-shard batching are load-tested
//! through three more knobs. `--cache on|off` forces the engine's
//! epoch-keyed result cache (default: the `VKG_CACHE` env override, else
//! off); `--batch N` lets each worker drain up to N queued requests per
//! round, executing same-shard groups under one lock acquisition;
//! `--zipf S` skews the workload so a hot head of queries repeats
//! (`S = 0`, the default, keeps the historical uniform stream). Under
//! `--check`, a quiescent sample of the workload is then asked once over
//! the wire — the cached, batched path — and recomputed cache-free
//! against the same pinned engine state: any bit of divergence fails the
//! run, and with the cache on a skewed workload must also show a
//! non-zero hit count.

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use vkg::sync::{AtomicU64, Ordering};

use vkg::core::metrics::names as core_names;
use vkg::obs::expo;
use vkg::prelude::*;
use vkg_bench::latency::Histogram;
use vkg_bench::setup::{self, Scale};
use vkg_bench::workload;
use vkg_server::server::names;
use vkg_server::{Client, ClientError, ErrorCode, Server, ServerConfig};

struct Args {
    qps: f64,
    seconds: f64,
    connections: usize,
    seed: u64,
    write_ratio: f64,
    workers: usize,
    queue_capacity: usize,
    /// `Some(true)`/`Some(false)` from `--cache on|off`; `None` defers
    /// to the `VKG_CACHE` env override (default off).
    cache: Option<bool>,
    /// Max requests a worker drains per round (`--batch`); 1 is the
    /// unbatched serve loop.
    batch: usize,
    /// Zipf exponent of the workload (`--zipf`); 0 is uniform.
    zipf: f64,
    check: bool,
    metrics_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            qps: 200.0,
            seconds: 5.0,
            connections: 4,
            seed: 7,
            write_ratio: 0.02,
            workers: 4,
            queue_capacity: 128,
            cache: None,
            batch: 1,
            zipf: 0.0,
            check: false,
            metrics_out: None,
        }
    }
}

fn usage() {
    eprintln!(
        "usage: serve_load [--qps N] [--seconds N] [--connections N] [--seed N]\n\
         \x20                 [--write-ratio F] [--workers N] [--queue N]\n\
         \x20                 [--cache on|off] [--batch N] [--zipf S] [--check]\n\
         \x20                 [--metrics-out PATH]"
    );
}

fn parse_args() -> Option<Args> {
    let mut a = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> Option<f64> {
            match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => Some(v),
                _ => {
                    eprintln!("serve_load: {what} wants a positive number");
                    None
                }
            }
        };
        match arg.as_str() {
            "--qps" => a.qps = num("--qps")?,
            "--seconds" => a.seconds = num("--seconds")?,
            "--connections" => a.connections = num("--connections")? as usize,
            "--seed" => a.seed = num("--seed")? as u64,
            "--write-ratio" => a.write_ratio = num("--write-ratio")?.min(1.0),
            "--workers" => a.workers = num("--workers")? as usize,
            "--queue" => a.queue_capacity = num("--queue")? as usize,
            "--cache" => match args.next().as_deref() {
                Some("on") => a.cache = Some(true),
                Some("off") => a.cache = Some(false),
                _ => {
                    eprintln!("serve_load: --cache wants `on` or `off`");
                    return None;
                }
            },
            "--batch" => a.batch = num("--batch")? as usize,
            "--zipf" => a.zipf = num("--zipf")?,
            "--check" => a.check = true,
            "--metrics-out" => match args.next() {
                Some(path) => a.metrics_out = Some(path),
                None => {
                    eprintln!("serve_load: --metrics-out wants a path");
                    return None;
                }
            },
            _ => {
                usage();
                return None;
            }
        }
    }
    Some(a)
}

/// Per-connection tally, merged after the run.
#[derive(Default)]
struct Tally {
    completed: u64,
    shed: u64,
    deadline_expired: u64,
    errors: u64,
    hist: Histogram,
}

/// `--check`'s cache-parity clause: at quiescence a sample of distinct
/// workload queries is asked once over the wire — the cached, batched
/// serve path — and recomputed cache-free against the same pinned
/// engine state. Returns the number of queries checked; any bit of
/// divergence is an error. Every fourth sample also cross-checks the
/// aggregate path.
fn check_cache_parity(
    vkg: &VirtualKnowledgeGraph,
    addr: std::net::SocketAddr,
    queries: &[workload::Query],
) -> Result<usize, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("parity client: {e}"))?;
    let mut seen = std::collections::HashSet::new();
    let mut checked = 0usize;
    for q in queries {
        if checked >= 32 {
            break;
        }
        if !seen.insert((q.entity.0, q.relation.0, q.direction == Direction::Tails)) {
            continue;
        }
        let remote = client
            .top_k(q.entity, q.relation, q.direction, 10)
            .map_err(|e| format!("remote top-k: {e}"))?;
        let local = vkg
            .with_published_shard(q.relation, |_pin, snap, state| {
                state.top_k(snap, q.entity, q.relation, q.direction, 10)
            })
            .map_err(|e| format!("local recompute: {e}"))?;
        if remote.predictions.len() != local.predictions.len()
            || remote
                .predictions
                .iter()
                .zip(&local.predictions)
                .any(|(r, l)| {
                    r.id != l.id
                        || r.distance.to_bits() != l.distance.to_bits()
                        || r.probability.to_bits() != l.probability.to_bits()
                })
            || remote.success_probability.to_bits() != local.guarantee.success_probability.to_bits()
            || remote.expected_misses.to_bits() != local.guarantee.expected_misses.to_bits()
        {
            return Err(format!(
                "top-k diverged from recomputation on entity {} relation {} ({:?})",
                q.entity.0, q.relation.0, q.direction
            ));
        }
        if checked % 4 == 0 {
            let remote_agg = client
                .aggregate(
                    q.entity,
                    q.relation,
                    q.direction,
                    AggregateKind::Count,
                    None,
                    0.05,
                    None,
                )
                .map_err(|e| format!("remote aggregate: {e}"))?;
            let spec = AggregateSpec::count(0.05);
            let local_agg = vkg
                .with_published_shard(q.relation, |_pin, snap, state| {
                    state.aggregate(snap, q.entity, q.relation, q.direction, &spec)
                })
                .map_err(|e| format!("local aggregate recompute: {e}"))?;
            if remote_agg.estimate.to_bits() != local_agg.estimate.to_bits()
                || remote_agg.mu.to_bits() != local_agg.bound.mu.to_bits()
                || remote_agg.increment_mass.to_bits() != local_agg.bound.increment_mass.to_bits()
                || remote_agg.ball_size as usize != local_agg.ball_size
            {
                return Err(format!(
                    "aggregate diverged from recomputation on entity {} relation {}",
                    q.entity.0, q.relation.0
                ));
            }
        }
        checked += 1;
    }
    if checked == 0 {
        return Err("no queries to sample".into());
    }
    Ok(checked)
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return ExitCode::FAILURE;
    };

    let shards = vkg::core::config::shards_from_env(1);
    let cache_capacity = match args.cache {
        Some(true) => vkg::core::config::DEFAULT_CACHE_CAPACITY,
        Some(false) => 0,
        None => vkg::core::config::cache_from_env(0),
    };
    eprintln!(
        "serve_load: preparing smoke-scale movie dataset + embeddings \
         ({shards} shard(s), cache {} entries, batch {})...",
        cache_capacity, args.batch
    );
    let prepared = setup::movie(Scale::Smoke, 16);
    let graph = prepared.dataset.graph.clone();
    let vkg = Arc::new(VirtualKnowledgeGraph::assemble(
        prepared.dataset.graph,
        prepared.dataset.attributes,
        prepared.embeddings,
        VkgConfig {
            shards,
            cache_capacity,
            ..setup::bench_config()
        },
    ));
    let handle = match Server::start(
        Arc::clone(&vkg),
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue_capacity,
            batch_max: args.batch.max(1),
            ..ServerConfig::default()
        },
    ) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("serve_load: cannot bind loopback server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();

    let total = (args.qps * args.seconds).ceil() as u64;
    let queries = Arc::new(if args.zipf > 0.0 {
        workload::generate_zipf(&graph, total as usize, args.seed, args.zipf)
    } else {
        workload::generate(&graph, total as usize, args.seed)
    });
    let entities = graph.num_entities() as u32;
    eprintln!(
        "serve_load: {} requests at {} QPS over {} connections -> {}",
        total, args.qps, args.connections, addr
    );

    // Open loop: a shared ticket counter assigns each request its
    // absolute launch time; whichever connection is free next takes it.
    let tickets = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let senders: Vec<_> = (0..args.connections)
        .map(|c| {
            let tickets = Arc::clone(&tickets);
            let queries = Arc::clone(&queries);
            let write_ratio = args.write_ratio;
            let qps = args.qps;
            thread::spawn(move || {
                let mut tally = Tally::default();
                let mut client = match Client::connect(addr) {
                    Ok(client) => client,
                    Err(e) => {
                        eprintln!("serve_load: connection {c} failed to connect: {e}");
                        tally.errors += 1;
                        return tally;
                    }
                };
                loop {
                    // relaxed: a ticket dispenser; each thread only needs a unique value, not ordering.
                    let i = tickets.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let due = start + Duration::from_secs_f64(i as f64 / qps);
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        thread::sleep(wait);
                    }
                    // A deterministic slice of the stream becomes
                    // dynamic writes; everything else alternates top-k
                    // and aggregates.
                    let write_every = if write_ratio > 0.0 {
                        (1.0 / write_ratio) as u64
                    } else {
                        u64::MAX
                    };
                    let q = &queries[i as usize];
                    let sent = Instant::now();
                    let outcome = if i % write_every == write_every - 1 {
                        let h = q.entity;
                        let t = EntityId((h.0 * 31 + i as u32 * 7 + c as u32) % entities);
                        client.add_fact(h, q.relation, t, 2, 0.01).map(|_| ())
                    } else if i % 10 == 9 {
                        client
                            .aggregate(
                                q.entity,
                                q.relation,
                                q.direction,
                                AggregateKind::Count,
                                None,
                                0.05,
                                None,
                            )
                            .map(|_| ())
                    } else {
                        client
                            .top_k(q.entity, q.relation, q.direction, 10)
                            .map(|_| ())
                    };
                    match outcome {
                        Ok(()) => {
                            tally.hist.record(sent.elapsed());
                            tally.completed += 1;
                        }
                        Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                            tally.shed += 1;
                        }
                        Err(ClientError::Server(e)) if e.code == ErrorCode::DeadlineExceeded => {
                            tally.deadline_expired += 1;
                        }
                        Err(e) => {
                            eprintln!("serve_load: request {i} failed: {e}");
                            tally.errors += 1;
                        }
                    }
                }
                tally
            })
        })
        .collect();

    let mut merged = Tally::default();
    for s in senders {
        match s.join() {
            Ok(t) => {
                merged.completed += t.completed;
                merged.shed += t.shed;
                merged.deadline_expired += t.deadline_expired;
                merged.errors += t.errors;
                merged.hist.merge(&t.hist);
            }
            Err(_) => {
                eprintln!("serve_load: a sender thread panicked");
                merged.errors += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    // The cache-parity clause runs while the server is live but
    // quiescent, before the telemetry snapshot, so its traffic (and any
    // hits it produces) is part of the exported counters.
    let parity = args.check.then(|| check_cache_parity(&vkg, addr, &queries));

    // Every sender has its answer, so the queue is drained — fetch the
    // server's own telemetry over the wire before shutting it down.
    let metrics = Client::connect(addr)
        .and_then(|mut c| c.metrics(64))
        .map_err(|e| eprintln!("serve_load: metrics fetch failed: {e}"))
        .ok();
    let counters = handle.shutdown();

    let issued = merged.completed + merged.shed + merged.deadline_expired + merged.errors;
    let shed_rate = merged.shed as f64 / issued.max(1) as f64;
    println!("serve_load results");
    println!(
        "  issued={} completed={} shed={} ({:.2}%) deadline_expired={} errors={}",
        issued,
        merged.completed,
        merged.shed,
        shed_rate * 1e2,
        merged.deadline_expired,
        merged.errors
    );
    println!(
        "  offered={:.0} QPS achieved={:.0} QPS over {:.2}s",
        args.qps,
        merged.completed as f64 / elapsed.as_secs_f64(),
        elapsed.as_secs_f64()
    );
    println!("  latency {}", merged.hist.summary());
    println!(
        "  server counters: admitted={} answered={} shed={} deadline_expired={} drained={}",
        counters.admitted,
        counters.answered,
        counters.shed,
        counters.deadline_expired,
        counters.drained
    );
    if let Some(m) = &metrics {
        let server_p50_us = m
            .snapshot
            .hist(names::LATENCY_US)
            .map(|h| h.quantile_us(0.50))
            .unwrap_or(0);
        println!(
            "  server telemetry (epoch {}): spans recorded={} dropped={} p50={:.2}ms",
            m.epoch,
            m.snapshot.spans_recorded,
            m.snapshot.spans_dropped,
            server_p50_us as f64 / 1e3,
        );
        let hits = m.snapshot.counter(core_names::CACHE_HIT).unwrap_or(0);
        let misses = m.snapshot.counter(core_names::CACHE_MISS).unwrap_or(0);
        println!(
            "  cache: hits={} misses={} prefix_hits={} invalidations={} | lock rounds={}",
            hits,
            misses,
            m.snapshot
                .counter(core_names::CACHE_PREFIX_HIT)
                .unwrap_or(0),
            m.snapshot
                .counter(core_names::CACHE_INVALIDATE)
                .unwrap_or(0),
            m.snapshot.counter(names::LOCK_ROUNDS).unwrap_or(0),
        );
    }
    if let Some(path) = &args.metrics_out {
        match &metrics {
            Some(m) => {
                if let Err(e) = std::fs::write(path, expo::render(&m.snapshot)) {
                    eprintln!("serve_load: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("  metrics snapshot written to {path}");
            }
            None => {
                eprintln!("serve_load: --metrics-out set but the metrics fetch failed");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.check {
        if merged.errors > 0 {
            eprintln!(
                "serve_load: CHECK FAILED — {} request errors",
                merged.errors
            );
            return ExitCode::FAILURE;
        }
        if merged.completed == 0 {
            eprintln!("serve_load: CHECK FAILED — no request completed");
            return ExitCode::FAILURE;
        }
        if counters.admitted != counters.answered {
            eprintln!(
                "serve_load: CHECK FAILED — admitted {} != answered {}",
                counters.admitted, counters.answered
            );
            return ExitCode::FAILURE;
        }
        let Some(m) = &metrics else {
            eprintln!("serve_load: CHECK FAILED — metrics opcode did not answer");
            return ExitCode::FAILURE;
        };
        // The snapshot was taken after every sender had its answer, so
        // the exported gauges must already agree with each other and
        // with what the clients saw — not just the post-shutdown
        // counters.
        let g = |name: &str| m.snapshot.gauge(name).unwrap_or(u64::MAX);
        if g(names::ADMITTED) != g(names::ANSWERED) {
            eprintln!(
                "serve_load: CHECK FAILED — exported admitted {} != answered {} after drain",
                g(names::ADMITTED),
                g(names::ANSWERED)
            );
            return ExitCode::FAILURE;
        }
        if g(names::SHED) != merged.shed {
            eprintln!(
                "serve_load: CHECK FAILED — server shed {} != client-observed rejections {}",
                g(names::SHED),
                merged.shed
            );
            return ExitCode::FAILURE;
        }
        // Server spans cover admission → encode, a strict sub-interval
        // of each client-measured request, so the server p50 may not
        // exceed the client p50 by more than one geometric bucket
        // (≈9%) plus a small absolute allowance for bucket rounding.
        let server_p50_us = m
            .snapshot
            .hist(names::LATENCY_US)
            .map(|h| h.quantile_us(0.50))
            .unwrap_or(u64::MAX);
        let client_p50_us = merged.hist.quantile(0.50).as_micros() as f64;
        let allowed_us = client_p50_us * 1.10 + 1_000.0;
        if server_p50_us as f64 > allowed_us {
            eprintln!(
                "serve_load: CHECK FAILED — server p50 {server_p50_us}µs exceeds \
                 client p50 {client_p50_us}µs beyond tolerance ({allowed_us:.0}µs)"
            );
            return ExitCode::FAILURE;
        }
        match parity {
            Some(Ok(n)) => println!("  cache parity OK over {n} sampled queries"),
            Some(Err(e)) => {
                eprintln!("serve_load: CHECK FAILED — cache parity: {e}");
                return ExitCode::FAILURE;
            }
            None => {}
        }
        let hits = m.snapshot.counter(core_names::CACHE_HIT).unwrap_or(0);
        if cache_capacity == 0 && hits > 0 {
            eprintln!(
                "serve_load: CHECK FAILED — {hits} cache hits reported with the cache disabled"
            );
            return ExitCode::FAILURE;
        }
        if cache_capacity > 0 && args.zipf > 0.0 && hits == 0 {
            eprintln!(
                "serve_load: CHECK FAILED — cache enabled on a skewed workload but never hit"
            );
            return ExitCode::FAILURE;
        }
        println!("serve_load: CHECK OK (telemetry reconciled)");
    }
    ExitCode::SUCCESS
}
