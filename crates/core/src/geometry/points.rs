//! Flat storage of S₂ points.
//!
//! One point per entity, id-aligned with the knowledge graph's dense
//! entity ids. Struct-of-arrays layout: all coordinates in one `Vec<f64>`
//! with stride `dim`, which keeps sort-order construction and MBR sweeps
//! cache-friendly (see the workspace performance notes in DESIGN.md §3).

use super::mbr::{Mbr, MAX_DIM};

/// An immutable set of `α`-dimensional points, indexed by dense `u32` ids.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    dim: usize,
    coords: Vec<f64>,
}

impl PointSet {
    /// Wraps a row-major `n × dim` coordinate matrix.
    ///
    /// # Panics
    /// Panics if `dim` is zero or exceeds [`MAX_DIM`], or if the matrix
    /// length is not a multiple of `dim`.
    pub fn from_rows(dim: usize, coords: Vec<f64>) -> Self {
        assert!(dim > 0, "point dimensionality must be positive");
        assert!(
            dim <= MAX_DIM,
            "index space dimensionality {dim} exceeds MAX_DIM={MAX_DIM}"
        );
        assert_eq!(coords.len() % dim, 0, "coordinate matrix shape mismatch");
        Self { dim, coords }
    }

    /// Dimensionality `α`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The coordinates of point `id`.
    #[inline]
    pub fn point(&self, id: u32) -> &[f64] {
        let i = id as usize * self.dim;
        &self.coords[i..i + self.dim]
    }

    /// One coordinate of point `id`.
    #[inline]
    pub fn coord(&self, id: u32, axis: usize) -> f64 {
        debug_assert!(axis < self.dim);
        self.coords[id as usize * self.dim + axis]
    }

    /// Squared Euclidean distance from point `id` to `target`.
    #[inline]
    pub fn distance_sq(&self, id: u32, target: &[f64]) -> f64 {
        self.point(id)
            .iter()
            .zip(target)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// The minimum bounding region of a set of point ids.
    ///
    /// Returns an empty MBR if `ids` is empty.
    pub fn mbr_of(&self, ids: &[u32]) -> Mbr {
        let mut mbr = Mbr::empty(self.dim);
        for &id in ids {
            mbr.include_point(self.point(id));
        }
        mbr
    }

    /// Whether point `id` lies inside `region` (inclusive bounds).
    #[inline]
    pub fn in_region(&self, id: u32, region: &Mbr) -> bool {
        region.contains_point(self.point(id))
    }

    /// All ids `0..len` in order.
    pub fn all_ids(&self) -> Vec<u32> {
        (0..self.len() as u32).collect()
    }

    /// Appends a point, returning its id (dynamic updates, paper §VIII).
    ///
    /// # Panics
    /// Panics if the coordinate count does not match the dimensionality.
    pub fn push(&mut self, coords: &[f64]) -> u32 {
        assert_eq!(coords.len(), self.dim, "point dimensionality mismatch");
        let id = u32::try_from(self.len()).expect("point id overflow");
        self.coords.extend_from_slice(coords);
        id
    }

    /// Overwrites the coordinates of an existing point.
    ///
    /// # Panics
    /// Panics on shape mismatch or out-of-range id.
    pub fn set(&mut self, id: u32, coords: &[f64]) {
        assert_eq!(coords.len(), self.dim, "point dimensionality mismatch");
        let i = id as usize * self.dim;
        self.coords[i..i + self.dim].copy_from_slice(coords);
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.coords.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> PointSet {
        // Four points at unit-square corners in 2-D.
        PointSet::from_rows(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0])
    }

    #[test]
    fn shape_and_access() {
        let ps = grid();
        assert_eq!(ps.dim(), 2);
        assert_eq!(ps.len(), 4);
        assert_eq!(ps.point(2), &[0.0, 1.0]);
        assert_eq!(ps.coord(3, 1), 1.0);
    }

    #[test]
    fn distances() {
        let ps = grid();
        assert_eq!(ps.distance_sq(0, &[1.0, 1.0]), 2.0);
        assert_eq!(ps.distance_sq(3, &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn bounding_region() {
        let ps = grid();
        let mbr = ps.mbr_of(&[0, 3]);
        assert_eq!(mbr.min(0), 0.0);
        assert_eq!(mbr.max(0), 1.0);
        assert_eq!(mbr.min(1), 0.0);
        assert_eq!(mbr.max(1), 1.0);
        let sub = ps.mbr_of(&[1]);
        assert_eq!(sub.min(0), 1.0);
        assert_eq!(sub.max(0), 1.0);
    }

    #[test]
    fn region_membership() {
        let ps = grid();
        let region = ps.mbr_of(&[0, 1]); // bottom edge
        assert!(ps.in_region(0, &region));
        assert!(ps.in_region(1, &region));
        assert!(!ps.in_region(2, &region));
    }

    #[test]
    fn all_ids_dense() {
        assert_eq!(grid().all_ids(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DIM")]
    fn oversized_dim_rejected() {
        let _ = PointSet::from_rows(MAX_DIM + 1, vec![0.0; (MAX_DIM + 1) * 2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn ragged_matrix_rejected() {
        let _ = PointSet::from_rows(3, vec![0.0; 7]);
    }
}
