// pretend: crates/server/src/queue.rs
// Fixture for the relaxed-justify rule: every Ordering::Relaxed needs
// a written `// relaxed:` justification nearby.

use vkg_sync::{AtomicU64, Ordering};

fn bare(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) // expect: relaxed-justify
}

fn justified_above(c: &AtomicU64) -> u64 {
    // relaxed: monotonic statistic; no reader infers other state from it
    c.load(Ordering::Relaxed)
}

fn justified_trailing(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) // relaxed: pure statistic
}

fn stronger_orders_need_no_comment(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Release);
    c.load(Ordering::Acquire)
}
