//! Amazon-review-like dataset generator.
//!
//! Entities: users and products. Relationship types (paper §VI-A):
//! `likes` / `dislikes` (derived from 1–5 star ratings exactly as for the
//! movie data) plus the product-to-product `also_viewed` and `also_bought`
//! relations. Product co-view/co-buy edges connect products that are close
//! in latent space (substitutes/complements), which is how the real
//! relations arise from browsing sessions.
//!
//! Attributes: `quality` on products — the mean rating the product has
//! received over all generated ratings (paper §VI-B, Fig. 14) — and `age`
//! on users.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{to_star_rating, Dataset};
use crate::attributes::AttributeStore;
use crate::graph::KnowledgeGraph;
use crate::zipf::Zipf;

/// Configuration for [`amazon_like`].
#[derive(Debug, Clone)]
pub struct AmazonConfig {
    /// Number of user entities.
    pub users: usize,
    /// Number of product entities.
    pub products: usize,
    /// Mean ratings authored per user.
    pub ratings_per_user: usize,
    /// `also_viewed`/`also_bought` edges per product (mean).
    pub co_edges_per_product: usize,
    /// Dimensionality of the latent vectors.
    pub latent_dim: usize,
    /// Zipf exponent for product popularity.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AmazonConfig {
    fn default() -> Self {
        Self {
            users: 8_000,
            products: 12_000,
            ratings_per_user: 25,
            co_edges_per_product: 4,
            latent_dim: 8,
            zipf_exponent: 1.05,
            seed: 0x414d5a4e, // "AMZN"
        }
    }
}

impl AmazonConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            users: 80,
            products: 150,
            ratings_per_user: 6,
            co_edges_per_product: 2,
            ..Self::default()
        }
    }

    /// Scales the entity counts by `factor`.
    pub fn scaled(factor: f64) -> Self {
        let d = Self::default();
        Self {
            users: ((d.users as f64) * factor).max(10.0) as usize,
            products: ((d.products as f64) * factor).max(20.0) as usize,
            ..d
        }
    }
}

fn latent<R: Rng>(rng: &mut R, dim: usize) -> Vec<f64> {
    let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    v.into_iter().map(|x| x / norm).collect()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Generates an Amazon-like dataset.
pub fn amazon_like(cfg: &AmazonConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut graph = KnowledgeGraph::new();
    let mut attrs = AttributeStore::new();

    let likes = graph.add_relation("likes");
    let dislikes = graph.add_relation("dislikes");
    let also_viewed = graph.add_relation("also_viewed");
    let also_bought = graph.add_relation("also_bought");

    let users: Vec<_> = (0..cfg.users)
        .map(|i| graph.add_entity(&format!("user_{i}")))
        .collect();
    let products: Vec<_> = (0..cfg.products)
        .map(|i| graph.add_entity(&format!("product_{i}")))
        .collect();

    for &u in &users {
        attrs.set("age", u, rng.gen_range(18.0f64..80.0).round());
    }

    let user_latent: Vec<Vec<f64>> = users
        .iter()
        .map(|_| latent(&mut rng, cfg.latent_dim))
        .collect();
    let prod_latent: Vec<Vec<f64>> = products
        .iter()
        .map(|_| latent(&mut rng, cfg.latent_dim))
        .collect();

    // Ratings → likes/dislikes edges + per-product rating accumulators.
    let zipf = Zipf::new(cfg.products, cfg.zipf_exponent);
    let mut rating_sum = vec![0.0f64; cfg.products];
    let mut rating_cnt = vec![0usize; cfg.products];
    for (ui, &u) in users.iter().enumerate() {
        let n = rng.gen_range(cfg.ratings_per_user / 2..=cfg.ratings_per_user * 3 / 2);
        for _ in 0..n.max(1) {
            let pi = zipf.sample(&mut rng);
            let score = dot(&user_latent[ui], &prod_latent[pi]) + rng.gen_range(-0.25..0.25);
            // Amazon ratings are whole stars 1..=5.
            let stars = to_star_rating(score).round().clamp(1.0, 5.0);
            rating_sum[pi] += stars;
            rating_cnt[pi] += 1;
            if stars >= 4.0 {
                graph
                    .add_triple(u, likes, products[pi])
                    // lint: allow(no-unwrap, both endpoints were just added to this graph by the generator)
                    .expect("generated ids are valid");
            } else if stars <= 2.0 {
                graph
                    .add_triple(u, dislikes, products[pi])
                    // lint: allow(no-unwrap, both endpoints were just added to this graph by the generator)
                    .expect("generated ids are valid");
            }
        }
    }

    // Quality attribute: mean received rating (3.0 if never rated).
    for (pi, &p) in products.iter().enumerate() {
        let quality = if rating_cnt[pi] > 0 {
            rating_sum[pi] / rating_cnt[pi] as f64
        } else {
            3.0
        };
        attrs.set("quality", p, quality);
    }

    // Product-to-product co-view/co-buy edges toward latent-space
    // neighbours: sample candidates, keep the closest.
    let candidates = 12usize.min(cfg.products.saturating_sub(1)).max(1);
    for (pi, &p) in products.iter().enumerate() {
        let n = rng.gen_range(0..=cfg.co_edges_per_product * 2);
        for _ in 0..n {
            let mut best: Option<(usize, f64)> = None;
            for _ in 0..candidates {
                let qi = rng.gen_range(0..cfg.products);
                if qi == pi {
                    continue;
                }
                let sim = dot(&prod_latent[pi], &prod_latent[qi]);
                if best.map_or(true, |(_, s)| sim > s) {
                    best = Some((qi, sim));
                }
            }
            if let Some((qi, _)) = best {
                let rel = if rng.gen_bool(0.5) {
                    also_viewed
                } else {
                    also_bought
                };
                graph
                    .add_triple(p, rel, products[qi])
                    // lint: allow(no-unwrap, both endpoints were just added to this graph by the generator)
                    .expect("generated ids are valid");
            }
        }
    }

    Dataset {
        name: "amazon-like".to_owned(),
        graph,
        attributes: attrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_four_relation_types() {
        let ds = amazon_like(&AmazonConfig::tiny());
        assert_eq!(ds.graph.num_relations(), 4);
        for r in ["likes", "dislikes", "also_viewed", "also_bought"] {
            assert!(ds.graph.relation_id(r).is_some(), "missing relation {r}");
        }
    }

    #[test]
    fn quality_in_rating_range() {
        let ds = amazon_like(&AmazonConfig::tiny());
        for p in ds.entities_with_prefix("product_") {
            let q = ds.attributes.get("quality", p).unwrap().unwrap();
            assert!((1.0..=5.0).contains(&q), "quality {q} out of range");
        }
    }

    #[test]
    fn co_edges_are_product_to_product() {
        let ds = amazon_like(&AmazonConfig::tiny());
        let av = ds.graph.relation_id("also_viewed").unwrap();
        let ab = ds.graph.relation_id("also_bought").unwrap();
        for t in ds.graph.triples() {
            if t.relation == av || t.relation == ab {
                assert!(ds
                    .graph
                    .entity_name(t.head)
                    .unwrap()
                    .starts_with("product_"));
                assert!(ds
                    .graph
                    .entity_name(t.tail)
                    .unwrap()
                    .starts_with("product_"));
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = amazon_like(&AmazonConfig::tiny());
        let b = amazon_like(&AmazonConfig::tiny());
        assert_eq!(a.graph.triples(), b.graph.triples());
    }

    #[test]
    fn users_have_ages_products_do_not() {
        let ds = amazon_like(&AmazonConfig::tiny());
        let u = ds.graph.entity_id("user_0").unwrap();
        let p = ds.graph.entity_id("product_0").unwrap();
        assert!(ds.attributes.get("age", u).unwrap().is_some());
        assert!(ds.attributes.get("age", p).unwrap().is_none());
    }
}
