//! Synchronous client for the vkg wire protocol: one TCP connection,
//! one outstanding request at a time (call–response).

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use vkg_core::query::aggregate::AggregateKind;
use vkg_core::Direction;
use vkg_kg::{EntityId, RelationId};

use crate::protocol::{
    AggregateWire, MetricsWire, Request, RequestOp, Response, ServerError, StatsWire, TopKWire,
    WireFilter,
};
use crate::wire::{read_frame, write_frame, WireError, MAX_FRAME};

/// Everything that can go wrong on the client side of a call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not decode (or the frame was truncated).
    Wire(WireError),
    /// The server answered with a typed refusal or failure.
    Server(ServerError),
    /// The server answered with a well-formed response of the wrong
    /// kind for the request that was sent.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response variant: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Shorthand result type for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A connected client. Cheap to construct; not thread-safe (use one
/// client per thread, as the load generator does).
pub struct Client {
    stream: TcpStream,
    /// Deadline stamped on requests issued through the typed helpers;
    /// `0` defers to the server's default.
    deadline_ms: u32,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> ClientResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            deadline_ms: 0,
        })
    }

    /// Sets the per-request deadline stamped by the typed helpers
    /// (`None` defers to the server default).
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline_ms = deadline.map_or(0, |d| d.as_millis().min(u32::MAX as u128) as u32);
    }

    /// Sends one request and blocks for its response. The transport
    /// failing mid-call (including server-side connection teardown
    /// after a malformed frame) surfaces as `Io` or `Wire`.
    pub fn call(&mut self, request: &Request) -> ClientResult<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        self.stream.flush()?;
        match read_frame(&mut self.stream, MAX_FRAME)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(ClientError::Wire(WireError::Truncated)),
        }
    }

    fn request(&self, op: RequestOp) -> Request {
        Request {
            deadline_ms: self.deadline_ms,
            op,
        }
    }

    /// Top-k predicted entities for `(entity, relation)` in `direction`.
    pub fn top_k(
        &mut self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
    ) -> ClientResult<TopKWire> {
        let req = self.request(RequestOp::TopK {
            entity: entity.0,
            relation: relation.0,
            direction,
            k: k as u32,
        });
        match self.call(&req)? {
            Response::TopK(t) => Ok(t),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted TopK")),
        }
    }

    /// Top-k restricted by a declarative server-side filter.
    pub fn top_k_filtered(
        &mut self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        filter: WireFilter,
    ) -> ClientResult<TopKWire> {
        let req = self.request(RequestOp::TopKFiltered {
            entity: entity.0,
            relation: relation.0,
            direction,
            k: k as u32,
            filter,
        });
        match self.call(&req)? {
            Response::TopK(t) => Ok(t),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted TopK")),
        }
    }

    /// Aggregate over the probability ball around `(entity, relation)`.
    /// Mirrors the wire message field-for-field, hence the arity.
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate(
        &mut self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        kind: AggregateKind,
        attribute: Option<&str>,
        p_tau: f64,
        sample_size: Option<usize>,
    ) -> ClientResult<AggregateWire> {
        let req = self.request(RequestOp::Aggregate {
            entity: entity.0,
            relation: relation.0,
            direction,
            kind,
            attribute: attribute.map(str::to_string),
            p_tau,
            sample_size: sample_size.map(|a| a.min(u32::MAX as usize) as u32),
        });
        match self.call(&req)? {
            Response::Aggregate(a) => Ok(a),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted Aggregate")),
        }
    }

    /// Appends a fact with local embedding refinement. Returns
    /// `(added, epoch)` — the epoch after the write.
    pub fn add_fact(
        &mut self,
        h: EntityId,
        r: RelationId,
        t: EntityId,
        refine_steps: usize,
        learning_rate: f64,
    ) -> ClientResult<(bool, u64)> {
        let req = self.request(RequestOp::AddFactDynamic {
            h: h.0,
            r: r.0,
            t: t.0,
            refine_steps: refine_steps as u32,
            learning_rate,
        });
        match self.call(&req)? {
            Response::FactAdded { added, epoch } => Ok((added, epoch)),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted FactAdded")),
        }
    }

    /// Engine + server statistics at the current epoch.
    pub fn stats(&mut self) -> ClientResult<StatsWire> {
        match self.call(&self.request(RequestOp::Stats))? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted Stats")),
        }
    }

    /// The server's observability export: merged facade + server metric
    /// registries and at most `last_spans` of the newest request spans.
    /// Answered inline like `stats`, so it works even under overload.
    pub fn metrics(&mut self, last_spans: u32) -> ClientResult<MetricsWire> {
        match self.call(&self.request(RequestOp::Metrics { last_spans }))? {
            Response::Metrics(m) => Ok(m),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted Metrics")),
        }
    }

    /// Asks the server to drain gracefully. The server acknowledges,
    /// then stops admitting work and exits once in-flight requests are
    /// answered.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        match self.call(&self.request(RequestOp::Shutdown))? {
            Response::ShuttingDown => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("wanted ShuttingDown")),
        }
    }
}
