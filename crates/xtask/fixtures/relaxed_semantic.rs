// pretend: crates/server/src/queue.rs
// Fixture for the v2 semantic ordering policy: justifications attach
// to the *statement* holding the operand, contiguous comment blocks
// count as one justification, and SeqCst needs a written reason just
// like Relaxed does.

use vkg_sync::{AtomicU64, Ordering};

fn bare_seqcst(c: &AtomicU64) -> u64 {
    c.load(Ordering::SeqCst) // expect: seqcst-justify
}

fn justified_seqcst(c: &AtomicU64) {
    // seqcst: the drain flag and the counters need one total order
    c.store(1, Ordering::SeqCst);
}

fn block_comment_reaches_the_statement(c: &AtomicU64) -> u64 {
    // relaxed: the justification may sit anywhere in a contiguous
    // comment block that touches the statement, even when the marker
    // line is further than two raw lines from the operand.
    c.load(Ordering::Relaxed)
}

fn multiline_statement(c: &AtomicU64) {
    // relaxed: pure statistic; no reader infers other state from it
    c.fetch_add(
        1,
        Ordering::Relaxed,
    );
}

fn stale_comment_does_not_leak(c: &AtomicU64) -> u64 {
    // relaxed: this justifies only statements within its window
    let a = c.load(Ordering::Relaxed);
    let b = a + 1;
    let d = b + 1;
    let e = c.load(Ordering::Relaxed); // expect: relaxed-justify
    a + b + d + e
}

fn failure_ordering_shares_the_window(c: &AtomicU64) -> bool {
    // relaxed: failure ordering only; success re-reads under Acquire
    c.compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed).is_ok()
}
