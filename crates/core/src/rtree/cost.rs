//! The two-component node-splitting cost model (paper §IV-B1).
//!
//! A cost is a pair `(c_Q, c_O)`:
//!
//! * `c_Q` — the Lemma 3 lower bound on leaf accesses for the query
//!   region, `Σ_{e∈𝒞} ⌈|Q∩e|/N⌉`. Integral.
//! * `c_O` — accumulated overlap penalty, `Σ βʰ·‖O‖/min(‖L‖,‖H‖)` over
//!   binary splits. Real-valued.
//!
//! Comparison is **lexicographic**: the paper treats `c_Q` as the major
//! order and `c_O` as the secondary order, because the query region is a
//! small ball and optimizing its access cost dominates.

use std::cmp::Ordering;

/// A composite `(c_Q, c_O)` cost. Smaller is better.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCost {
    /// Query-access component (major order).
    pub cq: u64,
    /// Overlap component (secondary order).
    pub co: f64,
}

impl SplitCost {
    /// The zero cost.
    pub const ZERO: SplitCost = SplitCost { cq: 0, co: 0.0 };

    /// Creates a cost.
    pub fn new(cq: u64, co: f64) -> Self {
        debug_assert!(co.is_finite() && co >= 0.0, "invalid overlap cost {co}");
        Self { cq, co }
    }

    /// Component-wise sum.
    pub fn plus(self, other: SplitCost) -> SplitCost {
        SplitCost {
            cq: self.cq + other.cq,
            co: self.co + other.co,
        }
    }
}

impl Eq for SplitCost {}

impl PartialOrd for SplitCost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SplitCost {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cq
            .cmp(&other.cq)
            .then_with(|| self.co.total_cmp(&other.co))
    }
}

/// The per-split overlap penalty `βʰ · ‖O‖ / min(‖L‖, ‖H‖)`.
///
/// When both candidate sides are degenerate (zero volume — e.g. all
/// points share an axis value), overlap is necessarily zero too and the
/// penalty is 0.
pub fn overlap_penalty(beta: f64, height: u32, overlap: f64, vol_low: f64, vol_high: f64) -> f64 {
    debug_assert!(beta >= 1.0);
    let min_vol = vol_low.min(vol_high);
    if overlap <= 0.0 {
        return 0.0;
    }
    // overlap ≤ min_vol geometrically, so min_vol > 0 here.
    beta.powi(height as i32) * overlap / min_vol
}

/// `⌈a / b⌉` for the Lemma 3 page count.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_ordering() {
        let a = SplitCost::new(1, 100.0);
        let b = SplitCost::new(2, 0.0);
        assert!(a < b, "c_Q dominates c_O");
        let c = SplitCost::new(1, 0.5);
        assert!(c < a, "ties on c_Q broken by c_O");
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn plus_adds_componentwise() {
        let s = SplitCost::new(2, 1.5).plus(SplitCost::new(3, 0.25));
        assert_eq!(s.cq, 5);
        assert!((s.co - 1.75).abs() < 1e-12);
    }

    #[test]
    fn penalty_scales_with_height() {
        let at0 = overlap_penalty(2.0, 0, 1.0, 4.0, 8.0);
        let at3 = overlap_penalty(2.0, 3, 1.0, 4.0, 8.0);
        assert!((at0 - 0.25).abs() < 1e-12);
        assert!((at3 - 2.0).abs() < 1e-12, "β³ = 8 × 0.25");
    }

    #[test]
    fn penalty_zero_without_overlap() {
        assert_eq!(overlap_penalty(2.0, 5, 0.0, 1.0, 1.0), 0.0);
        assert_eq!(overlap_penalty(2.0, 5, 0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn div_ceil_examples() {
        assert_eq!(div_ceil(0, 10), 0);
        assert_eq!(div_ceil(1, 10), 1);
        assert_eq!(div_ceil(10, 10), 1);
        assert_eq!(div_ceil(11, 10), 2);
    }

    #[test]
    fn sorting_uses_ord() {
        let mut costs = vec![
            SplitCost::new(2, 0.0),
            SplitCost::new(0, 9.0),
            SplitCost::new(0, 1.0),
            SplitCost::new(1, 0.0),
        ];
        costs.sort();
        assert_eq!(
            costs,
            vec![
                SplitCost::new(0, 1.0),
                SplitCost::new(0, 9.0),
                SplitCost::new(1, 0.0),
                SplitCost::new(2, 0.0),
            ]
        );
    }
}
