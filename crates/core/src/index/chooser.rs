//! Split-choice strategies.
//!
//! `best_splits` returns ranked candidates; a [`SplitChooser`] decides
//! which one a build run takes at each decision point. The greedy
//! INCREMENTALINDEXBUILD always takes the best; TOP-KSPLITSINDEXBUILD
//! (Algorithm 2) replays *scripts* of choice indices discovered by a
//! best-first search over contour change candidates (see
//! [`crate::index::topk`]).

use crate::rtree::SplitCandidate;

/// Decides which ranked split candidate a build run takes.
pub trait SplitChooser {
    /// How many candidates to request from `best_splits` (the `k` of the
    /// paper's top-k split choices).
    fn num_choices(&self) -> usize;

    /// Picks the index of the candidate to apply. `candidates` is
    /// non-empty and sorted best-first.
    fn choose(&mut self, candidates: &[SplitCandidate]) -> usize;
}

/// Always takes the locally optimal split (the paper's main cracking
/// algorithm, and the choice BULKLOADCHUNK itself makes).
#[derive(Debug, Default)]
pub struct GreedyChooser;

impl SplitChooser for GreedyChooser {
    fn num_choices(&self) -> usize {
        1
    }

    fn choose(&mut self, _candidates: &[SplitCandidate]) -> usize {
        0
    }
}

/// Replays a script of choice indices, falling back to greedy (choice 0)
/// once the script is exhausted. Records how many candidates were
/// available at every decision point so the Algorithm 2 search knows the
/// branching factor at each position.
#[derive(Debug)]
pub struct ScriptChooser {
    script: Vec<u8>,
    k: usize,
    /// Number of candidates available at each decision point of the run.
    pub available: Vec<u8>,
}

impl ScriptChooser {
    /// Creates a chooser replaying `script` with up to `k` choices per
    /// decision.
    pub fn new(script: Vec<u8>, k: usize) -> Self {
        assert!(k >= 1, "need at least one choice");
        Self {
            script,
            k,
            available: Vec::new(),
        }
    }

    /// Total decision points seen by the last run.
    pub fn decisions(&self) -> usize {
        self.available.len()
    }
}

impl SplitChooser for ScriptChooser {
    fn num_choices(&self) -> usize {
        self.k
    }

    fn choose(&mut self, candidates: &[SplitCandidate]) -> usize {
        let pos = self.available.len();
        let avail = candidates.len().min(self.k).min(u8::MAX as usize) as u8;
        self.available.push(avail);
        let want = self.script.get(pos).copied().unwrap_or(0) as usize;
        want.min(candidates.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Mbr;
    use crate::rtree::cost::SplitCost;

    fn dummy_candidates(n: usize) -> Vec<SplitCandidate> {
        (0..n)
            .map(|i| SplitCandidate {
                axis: 0,
                count: i + 1,
                cost: SplitCost::new(i as u64, 0.0),
                low_mbr: Mbr::empty(2),
                high_mbr: Mbr::empty(2),
                low_in_q: 0,
                high_in_q: 0,
            })
            .collect()
    }

    #[test]
    fn greedy_always_zero() {
        let mut g = GreedyChooser;
        assert_eq!(g.num_choices(), 1);
        assert_eq!(g.choose(&dummy_candidates(5)), 0);
    }

    #[test]
    fn script_replays_then_falls_back() {
        let mut s = ScriptChooser::new(vec![2, 1], 4);
        let c = dummy_candidates(4);
        assert_eq!(s.choose(&c), 2);
        assert_eq!(s.choose(&c), 1);
        assert_eq!(s.choose(&c), 0, "beyond script = greedy");
        assert_eq!(s.decisions(), 3);
        assert_eq!(s.available, vec![4, 4, 4]);
    }

    #[test]
    fn script_clamps_to_available() {
        let mut s = ScriptChooser::new(vec![3], 4);
        let c = dummy_candidates(2);
        assert_eq!(s.choose(&c), 1, "clamped to last candidate");
        assert_eq!(s.available, vec![2]);
    }
}
