//! The edge-probability model of the virtual knowledge graph (§V-B).
//!
//! "We let the entity closest to the query center point have probability 1
//! for the relationship, and other entities' probabilities are inversely
//! proportional to their distances to the query center point."

/// Converts sorted-or-unsorted S₁ distances into edge probabilities:
/// `p_i = d_min / d_i`, with `p = 1` for the closest entity (and for any
/// entity at distance 0).
///
/// Returns an empty vector for empty input.
pub fn inverse_distance_probabilities(distances: &[f64]) -> Vec<f64> {
    let d_min = distances.iter().copied().fold(f64::INFINITY, f64::min);
    distances
        .iter()
        .map(|&d| {
            debug_assert!(d >= 0.0, "negative distance {d}");
            if d <= 0.0 || d_min <= 0.0 {
                // Exact hits (h + r lands on t) get probability 1; if the
                // minimum itself is 0 every other finite distance gets an
                // infinitesimal probability, clamped to a tiny positive
                // value so downstream weights stay well-defined.
                if d <= 0.0 {
                    1.0
                } else {
                    f64::MIN_POSITIVE
                }
            } else {
                (d_min / d).min(1.0)
            }
        })
        .collect()
}

/// The ball radius in S₁ corresponding to a probability threshold:
/// `p(d) ≥ p_τ ⇔ d ≤ d_min / p_τ`.
///
/// # Panics
/// Panics unless `0 < p_τ ≤ 1` and `d_min ≥ 0`.
pub fn radius_for_threshold(d_min: f64, p_tau: f64) -> f64 {
    assert!(
        p_tau > 0.0 && p_tau <= 1.0,
        "probability threshold must be in (0, 1], got {p_tau}"
    );
    assert!(d_min >= 0.0, "negative minimum distance {d_min}");
    d_min / p_tau
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_gets_one() {
        let p = inverse_distance_probabilities(&[2.0, 1.0, 4.0]);
        assert_eq!(p[1], 1.0);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_monotone_in_distance() {
        let d = [1.0, 1.5, 2.0, 8.0];
        let p = inverse_distance_probabilities(&d);
        for w in p.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn zero_distance_handled() {
        let p = inverse_distance_probabilities(&[0.0, 1.0]);
        assert_eq!(p[0], 1.0);
        assert!(p[1] > 0.0 && p[1] < 1e-300);
    }

    #[test]
    fn empty_input() {
        assert!(inverse_distance_probabilities(&[]).is_empty());
    }

    #[test]
    fn threshold_radius() {
        assert_eq!(radius_for_threshold(2.0, 0.05), 40.0);
        assert_eq!(radius_for_threshold(0.0, 0.5), 0.0);
        assert_eq!(radius_for_threshold(3.0, 1.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "probability threshold")]
    fn bad_threshold_rejected() {
        let _ = radius_for_threshold(1.0, 0.0);
    }
}
