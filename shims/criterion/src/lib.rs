//! Offline stand-in for the slice of the `criterion` API used by the
//! workspace benches.
//!
//! Runs each benchmark `sample_size` times, reports mean wall-clock time
//! per iteration on stdout, and skips all of real criterion's statistics,
//! warm-up, and HTML reporting. Good enough to keep `cargo bench`
//! runnable and the bench targets compiling offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Benchmark driver; collects configuration and runs groups.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints the mean per-iteration duration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mean = if bencher.iters > 0 {
            bencher.elapsed / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: {:?} mean over {} iterations",
            self.name, id, mean, bencher.iters
        );
        self
    }

    /// Finishes the group (no-op; reports are printed eagerly).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` once per sample, accumulating wall-clock time.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

/// Prevents the optimizer from discarding a value (std-backed).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` for a bench binary with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("count", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 3);
    }
}
