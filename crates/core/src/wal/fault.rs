//! Deterministic fault injection for the durability path.
//!
//! Styled after the `vkg_obs::Clock` seam and the `vkg-sync` model
//! runtime: the default plane ([`FaultPlane::none`]) is a pure
//! passthrough that adds one branch per I/O call, and tests install an
//! injector — either an explicit [`FaultSpec`] (kill at byte 17 of
//! record 3) or a seed-derived one ([`FaultPlane::seeded`]) for sweeps —
//! that forces short writes, flush failures, and mid-record kills at
//! exact, reproducible offsets. Every write and flush the WAL performs
//! is routed through the plane, so the injector sees the same
//! touchpoints the real kernel does.
//!
//! A **kill** models process death: the configured byte prefix reaches
//! the file, everything after fails, and no later operation on the same
//! plane succeeds — exactly the torn-tail shape a SIGKILL mid-`write`
//! leaves behind. A **short write** tears one append without killing
//! the plane (the writer poisons itself; recovery truncates). A **flush
//! failure** fails the nth flush after its record's bytes are already
//! in the file — the ambiguous case where a write is logged but never
//! acked.

use std::io::Write;
use std::sync::Arc;

use vkg_sync::{AtomicBool, AtomicU64, Ordering};

use super::WalError;

/// One step of the SplitMix64 sequence — the same generator the
/// vkg-sync model sweeps and the bench harness seed from.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What the injector forces, and where. All triggers are optional and
/// independent; a default spec injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Simulated process death: the first `n` bytes offered to the file
    /// are written, every byte after fails, and the plane stays dead.
    pub kill_after_bytes: Option<u64>,
    /// The nth write call (0-based) writes only half its buffer and
    /// fails — a torn record without process death.
    pub short_write_at: Option<u64>,
    /// The nth flush call (0-based) fails after the record's bytes are
    /// already in the file — logged but unacked.
    pub flush_fail_at: Option<u64>,
}

#[derive(Debug)]
struct Injector {
    spec: FaultSpec,
    bytes: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
    killed: AtomicBool,
}

/// The durability layer's fault seam. Cloning shares the injector (and
/// its counters), so a test can hold one handle while the engine under
/// test holds the other.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    inner: Option<Arc<Injector>>,
}

impl Default for FaultPlane {
    fn default() -> Self {
        FaultPlane::none()
    }
}

impl FaultPlane {
    /// The production plane: every operation passes straight through.
    pub fn none() -> Self {
        FaultPlane { inner: None }
    }

    /// An injector with an explicit trigger layout.
    pub fn with_spec(spec: FaultSpec) -> Self {
        FaultPlane {
            inner: Some(Arc::new(Injector {
                spec,
                bytes: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                flushes: AtomicU64::new(0),
                killed: AtomicBool::new(false),
            })),
        }
    }

    /// A seed-derived injector for sweeps: the seed deterministically
    /// picks one fault kind and its trigger point somewhere inside the
    /// first `horizon_records` appends (record geometry from
    /// [`super::RECORD_BYTES`]).
    pub fn seeded(seed: u64, horizon_records: u64) -> Self {
        let mut s = seed;
        let horizon = horizon_records.max(1);
        let kind = splitmix64(&mut s) % 3;
        let record_bytes = super::RECORD_BYTES as u64;
        let spec = match kind {
            0 => FaultSpec {
                // Kill at an arbitrary byte of an arbitrary record; the
                // magic header (already on disk on recovery runs) is
                // counted past so the kill always lands inside a record.
                kill_after_bytes: Some(splitmix64(&mut s) % (horizon * record_bytes)),
                ..FaultSpec::default()
            },
            1 => FaultSpec {
                short_write_at: Some(splitmix64(&mut s) % horizon),
                ..FaultSpec::default()
            },
            _ => FaultSpec {
                flush_fail_at: Some(splitmix64(&mut s) % horizon),
                ..FaultSpec::default()
            },
        };
        FaultPlane::with_spec(spec)
    }

    /// Whether the plane has simulated process death. After a kill every
    /// further operation fails, mirroring a dead process.
    pub fn killed(&self) -> bool {
        self.inner
            .as_ref()
            // relaxed: a one-way latch read for reporting; the writer's
            // poisoned flag already orders the durability state machine.
            .is_some_and(|i| i.killed.load(Ordering::Relaxed))
    }

    /// Writes `buf` through the plane. The passthrough maps straight to
    /// `write_all`; an injector may cut the buffer short or kill the
    /// plane mid-buffer, leaving exactly the configured byte prefix in
    /// the file.
    pub fn write(&self, file: &mut impl Write, buf: &[u8]) -> Result<(), WalError> {
        let Some(inj) = self.inner.as_ref() else {
            return file.write_all(buf).map_err(|e| WalError::io("write", &e));
        };
        // relaxed: counters below are only read by this same durability
        // path (single writer) and by tests after the writer is done.
        if inj.killed.load(Ordering::Relaxed) {
            return Err(WalError::io_str("write", "fault plane killed"));
        }
        let n = inj.writes.fetch_add(1, Ordering::Relaxed); // relaxed: single-writer counter
        let offset = inj.bytes.load(Ordering::Relaxed); // relaxed: single-writer counter
        if let Some(kill) = inj.spec.kill_after_bytes {
            if offset + buf.len() as u64 > kill {
                let keep = kill.saturating_sub(offset) as usize;
                // `keep < buf.len()` by the branch condition; `get` +
                // `unwrap_or` keeps the prefix take infallible anyway.
                let torn = file
                    .write_all(buf.get(..keep).unwrap_or(buf))
                    .and_then(|()| file.flush())
                    .map_err(|e| WalError::io("write", &e));
                inj.bytes.store(kill, Ordering::Relaxed); // relaxed: single-writer counter
                inj.killed.store(true, Ordering::Relaxed); // relaxed: one-way latch
                return torn.and(Err(WalError::io_str("write", "killed mid-record")));
            }
        }
        if inj.spec.short_write_at == Some(n) {
            let keep = buf.len() / 2;
            let torn = file
                .write_all(buf.get(..keep).unwrap_or(buf))
                .map_err(|e| WalError::io("write", &e));
            inj.bytes.fetch_add(keep as u64, Ordering::Relaxed); // relaxed: single-writer counter
            return torn.and(Err(WalError::io_str("write", "short write injected")));
        }
        file.write_all(buf).map_err(|e| WalError::io("write", &e))?;
        inj.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed); // relaxed: single-writer counter
        Ok(())
    }

    /// Flushes the file through the plane (and `sync_data`s it when the
    /// caller runs the fsync policy).
    pub fn flush(&self, file: &mut std::fs::File, fsync: bool) -> Result<(), WalError> {
        let sync = |file: &mut std::fs::File| -> Result<(), WalError> {
            file.flush().map_err(|e| WalError::io("flush", &e))?;
            if fsync {
                file.sync_data().map_err(|e| WalError::io("fsync", &e))?;
            }
            Ok(())
        };
        let Some(inj) = self.inner.as_ref() else {
            return sync(file);
        };
        // relaxed: same single-writer counter discipline as write().
        if inj.killed.load(Ordering::Relaxed) {
            return Err(WalError::io_str("flush", "fault plane killed"));
        }
        let n = inj.flushes.fetch_add(1, Ordering::Relaxed); // relaxed: single-writer counter
        if inj.spec.flush_fail_at == Some(n) {
            return Err(WalError::io_str("flush", "flush failure injected"));
        }
        sync(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_writes_everything() {
        let dir = std::env::temp_dir().join("vkg_wal_fault_pass");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("pass.log");
        let mut f = std::fs::File::create(&path).unwrap();
        let plane = FaultPlane::none();
        plane.write(&mut f, b"hello").unwrap();
        plane.flush(&mut f, false).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        assert!(!plane.killed());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_leaves_exact_prefix_and_stays_dead() {
        let dir = std::env::temp_dir().join("vkg_wal_fault_kill");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("kill.log");
        let mut f = std::fs::File::create(&path).unwrap();
        let plane = FaultPlane::with_spec(FaultSpec {
            kill_after_bytes: Some(7),
            ..FaultSpec::default()
        });
        plane.write(&mut f, b"0123").unwrap();
        assert!(plane.write(&mut f, b"456789").is_err());
        assert!(plane.killed());
        assert!(plane.write(&mut f, b"x").is_err());
        assert!(plane.flush(&mut f, false).is_err());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn short_write_tears_without_killing() {
        let dir = std::env::temp_dir().join("vkg_wal_fault_short");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("short.log");
        let mut f = std::fs::File::create(&path).unwrap();
        let plane = FaultPlane::with_spec(FaultSpec {
            short_write_at: Some(1),
            ..FaultSpec::default()
        });
        plane.write(&mut f, b"abcd").unwrap();
        assert!(plane.write(&mut f, b"efgh").is_err());
        assert!(!plane.killed());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"abcdef");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_failure_fires_once_at_its_index() {
        let dir = std::env::temp_dir().join("vkg_wal_fault_flush");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("flush.log");
        let mut f = std::fs::File::create(&path).unwrap();
        let plane = FaultPlane::with_spec(FaultSpec {
            flush_fail_at: Some(0),
            ..FaultSpec::default()
        });
        assert!(plane.flush(&mut f, false).is_err());
        plane.flush(&mut f, false).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn seeded_specs_are_deterministic_and_varied() {
        let a = FaultPlane::seeded(11, 16);
        let b = FaultPlane::seeded(11, 16);
        assert_eq!(
            a.inner.as_ref().unwrap().spec,
            b.inner.as_ref().unwrap().spec
        );
        let kinds: std::collections::HashSet<&'static str> = (0..64)
            .map(|seed| {
                let p = FaultPlane::seeded(seed, 16);
                let s = p.inner.as_ref().unwrap().spec;
                if s.kill_after_bytes.is_some() {
                    "kill"
                } else if s.short_write_at.is_some() {
                    "short"
                } else {
                    "flush"
                }
            })
            .collect();
        assert_eq!(kinds.len(), 3, "64 seeds must exercise every fault kind");
    }
}
