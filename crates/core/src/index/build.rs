//! The shared build core: partition an element with stop conditions and
//! recursively construct its (possibly partial) subtree.
//!
//! Both the offline BULKLOADCHUNK (query = `None`, never stops early) and
//! the online cracking paths (query = `Some(Q)`, stop conditions of
//! §IV-C step 3) run through [`build_element`]. The result is a
//! [`BuiltNode`] tree that the index installs into its arena; dry runs of
//! the Algorithm 2 search build the same trees on cloned partitions and
//! keep only the [`RunCost`].

use vkg_sync::pool::Pool;
use vkg_sync::Mutex;

use crate::geometry::{Mbr, PointSet};
use crate::rtree::cost::div_ceil;
use crate::rtree::split::SplitContext;
use crate::rtree::{best_splits, height_for, SortOrders};

use super::chooser::{GreedyChooser, SplitChooser};

/// Static build parameters (a subset of [`crate::config::VkgConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct BuildParams {
    /// Leaf capacity `N`.
    pub leaf_capacity: usize,
    /// Non-leaf fanout `M`.
    pub fanout: usize,
    /// Overlap-cost base β.
    pub beta: f64,
    /// Whether split *ranking* uses the query-aware `c_Q` component
    /// (§IV-B1). When false, candidates rank by overlap cost alone (the
    /// classic BULKLOADCHUNK model) while the stop conditions still apply
    /// — the `abl_cost` ablation isolates the contribution of the paper's
    /// two-component cost.
    pub query_aware_cost: bool,
}

/// Aggregate cost of one build run (one contour change candidate).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunCost {
    /// Σ ⌈|Q∩e|/N⌉ over the contour elements produced (Lemma 3; the
    /// candidate weight's major order in Algorithm 2 line 3/17).
    pub cq: u64,
    /// Σ βʰ·‖O‖/min(‖L‖,‖H‖) over the binary splits performed
    /// (secondary order, line 18).
    pub co: f64,
    /// Number of binary splits performed.
    pub splits: u64,
}

/// A subtree produced by a build run, not yet installed in the arena.
#[derive(Debug)]
pub struct BuiltNode {
    /// Bounding region of all points below.
    pub mbr: Mbr,
    /// Height (0 = leaf).
    pub height: u32,
    /// Children / payload.
    pub kind: BuiltKind,
}

/// Payload of a [`BuiltNode`].
#[derive(Debug)]
pub enum BuiltKind {
    /// Fully split internal node.
    Internal(Vec<BuiltNode>),
    /// Terminal leaf holding ≤ N point ids.
    Leaf(Vec<u32>),
    /// A contour partition that the stop conditions left unsplit.
    Unsplit(SortOrders),
}

impl BuiltNode {
    /// Number of nodes in this built subtree.
    pub fn node_count(&self) -> usize {
        match &self.kind {
            BuiltKind::Internal(children) => {
                1 + children.iter().map(BuiltNode::node_count).sum::<usize>()
            }
            _ => 1,
        }
    }

    /// Number of points covered.
    pub fn point_count(&self) -> usize {
        match &self.kind {
            BuiltKind::Internal(children) => children.iter().map(BuiltNode::point_count).sum(),
            BuiltKind::Leaf(ids) => ids.len(),
            BuiltKind::Unsplit(orders) => orders.len(),
        }
    }
}

/// Whether the §IV-C stop condition holds for a partition of `len` points
/// with `in_q` of them in the query region: `Q∩e = ∅` or
/// `⌈|Q∩e|/N⌉ = ⌈|e|/N⌉`.
pub fn stop_condition(in_q: usize, len: usize, leaf_capacity: usize) -> bool {
    in_q == 0 || div_ceil(in_q, leaf_capacity) == div_ceil(len, leaf_capacity)
}

/// Builds the subtree for one contour element.
///
/// * `query = None` — offline bulk load: no stop conditions, candidate
///   ranking by overlap cost only (classic BULKLOADCHUNK).
/// * `query = Some(Q)` — cracking: partitions irrelevant to `Q` or fully
///   covered by `Q` stay unsplit.
///
/// `cost` accumulates the run's `(c_Q, c_O)` and split count. `pool`
/// fans the counting sweeps, stable partitions, and (offline) per-piece
/// recursion out over workers; a width-1 pool takes the exact serial
/// code paths, so serial results are bit-identical to the pre-pool
/// implementation.
pub fn build_element(
    points: &PointSet,
    params: &BuildParams,
    orders: SortOrders,
    query: Option<&Mbr>,
    chooser: &mut dyn SplitChooser,
    cost: &mut RunCost,
    pool: &Pool,
) -> BuiltNode {
    let len = orders.len();
    let mbr = orders.mbr(points);

    // Terminal leaf: nothing to split.
    if len <= params.leaf_capacity {
        if let Some(q) = query {
            cost.cq += div_ceil(orders.count_in_region(points, q), params.leaf_capacity);
        }
        return BuiltNode {
            mbr,
            height: 0,
            kind: BuiltKind::Leaf(orders.into_ids()),
        };
    }

    let height = height_for(len, params.leaf_capacity, params.fanout);

    // Stop conditions (only online).
    if let Some(q) = query {
        let in_q = orders.count_in_region_pooled(points, q, pool);
        if stop_condition(in_q, len, params.leaf_capacity) {
            cost.cq += div_ceil(in_q, params.leaf_capacity);
            return BuiltNode {
                mbr,
                height,
                kind: BuiltKind::Unsplit(orders),
            };
        }
    }

    // PARTITION: repeated best binary splits down to pieces of size ≤ m,
    // with per-piece stop conditions.
    let m = len.div_ceil(params.fanout);
    let ctx = SplitContext {
        points,
        query: if params.query_aware_cost { query } else { None },
        leaf_capacity: params.leaf_capacity,
        beta_pow_h: params.beta.powi(height as i32),
        pool,
    };
    let mut pieces: Vec<(SortOrders, bool)> = Vec::with_capacity(params.fanout);
    partition(&ctx, query, orders, m, chooser, cost, &mut pieces, true);

    let mut children = Vec::with_capacity(pieces.len());
    // Offline bulk load with a single-choice (stateless) chooser: the
    // pieces are independent subtrees, so each one builds on its own
    // worker. The per-piece recursion gets a *serial* pool — the
    // fan-out at this level already owns the workers, and nesting
    // would oversubscribe the machine.
    let offline_parallel =
        query.is_none() && chooser.num_choices() == 1 && !pool.is_serial() && pieces.len() > 1;
    if offline_parallel {
        let inputs: Vec<Mutex<Option<SortOrders>>> = pieces
            .into_iter()
            .map(|(piece, _)| Mutex::new(Some(piece)))
            .collect();
        let outputs: Vec<Mutex<Option<(BuiltNode, RunCost)>>> =
            inputs.iter().map(|_| Mutex::new(None)).collect();
        let serial = Pool::serial();
        pool.run(inputs.len(), |i| {
            let Some(piece) = inputs[i].lock().take() else {
                return;
            };
            let mut piece_cost = RunCost::default();
            let built = build_element(
                points,
                params,
                piece,
                None,
                &mut GreedyChooser,
                &mut piece_cost,
                &serial,
            );
            *outputs[i].lock() = Some((built, piece_cost));
        });
        // Merge in piece order so the aggregate cost sums the same
        // addends in the same sequence on every run at a given width.
        for slot in outputs {
            if let Some((built, piece_cost)) = slot.into_inner() {
                cost.cq += piece_cost.cq;
                cost.co += piece_cost.co;
                cost.splits += piece_cost.splits;
                children.push(built);
            }
        }
        return BuiltNode {
            mbr,
            height,
            kind: BuiltKind::Internal(children),
        };
    }

    for (piece, stopped) in pieces {
        if stopped {
            // Stays a contour element (or terminal leaf when small).
            let piece_mbr = piece.mbr(points);
            let piece_len = piece.len();
            if let Some(q) = query {
                cost.cq += div_ceil(piece.count_in_region(points, q), params.leaf_capacity);
            }
            let child = if piece_len <= params.leaf_capacity {
                BuiltNode {
                    mbr: piece_mbr,
                    height: 0,
                    kind: BuiltKind::Leaf(piece.into_ids()),
                }
            } else {
                BuiltNode {
                    mbr: piece_mbr,
                    height: height_for(piece_len, params.leaf_capacity, params.fanout),
                    kind: BuiltKind::Unsplit(piece),
                }
            };
            children.push(child);
        } else {
            // Reached the per-child size ≤ m: recurse to the next level
            // (line 6 of BULKLOADCHUNK / step 4 of INCREMENTALINDEXBUILD).
            children.push(build_element(
                points, params, piece, query, chooser, cost, pool,
            ));
        }
    }

    BuiltNode {
        mbr,
        height,
        kind: BuiltKind::Internal(children),
    }
}

/// Recursive binary partition of one element into pieces of size ≤ `m`.
///
/// `stop_query` drives the §IV-C stop conditions (always the real query
/// region); the *ranking* query inside `ctx` may be disabled by the
/// cost-model ablation. `force` is true for the root call: the
/// element-level stop conditions were already evaluated by the caller, so
/// the first split is mandatory (otherwise a stopped element would
/// recurse forever).
#[allow(clippy::too_many_arguments)]
fn partition(
    ctx: &SplitContext<'_>,
    stop_query: Option<&Mbr>,
    orders: SortOrders,
    m: usize,
    chooser: &mut dyn SplitChooser,
    cost: &mut RunCost,
    out: &mut Vec<(SortOrders, bool)>,
    force: bool,
) {
    let len = orders.len();
    if len <= m {
        out.push((orders, false));
        return;
    }
    if !force {
        if let Some(q) = stop_query {
            let in_q = orders.count_in_region_pooled(ctx.points, q, ctx.pool);
            if stop_condition(in_q, len, ctx.leaf_capacity) {
                out.push((orders, true));
                return;
            }
        }
    }
    let candidates = best_splits(ctx, &orders, m, chooser.num_choices());
    debug_assert!(!candidates.is_empty(), "len > m must yield a position");
    let pick = chooser.choose(&candidates);
    let chosen = &candidates[pick];
    cost.co += chosen.cost.co;
    cost.splits += 1;
    let (low, high) = orders.split_by_prefix_pooled(chosen.axis, chosen.count, ctx.pool);
    partition(ctx, stop_query, low, m, chooser, cost, out, false);
    partition(ctx, stop_query, high, m, chooser, cost, out, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    static SERIAL: Pool = Pool::serial();

    fn params() -> BuildParams {
        BuildParams {
            leaf_capacity: 8,
            fanout: 4,
            beta: 2.0,
            query_aware_cost: true,
        }
    }

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let coords: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
        PointSet::from_rows(dim, coords)
    }

    fn collect_leaf_ids(node: &BuiltNode, out: &mut Vec<u32>) {
        match &node.kind {
            BuiltKind::Internal(children) => {
                for c in children {
                    collect_leaf_ids(c, out);
                }
            }
            BuiltKind::Leaf(ids) => out.extend_from_slice(ids),
            BuiltKind::Unsplit(orders) => out.extend_from_slice(orders.ids(0)),
        }
    }

    fn max_leaf_size(node: &BuiltNode) -> usize {
        match &node.kind {
            BuiltKind::Internal(children) => children.iter().map(max_leaf_size).max().unwrap_or(0),
            BuiltKind::Leaf(ids) => ids.len(),
            BuiltKind::Unsplit(orders) => orders.len(),
        }
    }

    #[test]
    fn offline_build_is_complete() {
        let ps = random_points(500, 3, 1);
        let orders = SortOrders::build(&ps, ps.all_ids());
        let mut cost = RunCost::default();
        let node = build_element(
            &ps,
            &params(),
            orders,
            None,
            &mut GreedyChooser,
            &mut cost,
            &SERIAL,
        );
        // Offline: every point in a real leaf, all leaves ≤ N.
        let mut ids = Vec::new();
        collect_leaf_ids(&node, &mut ids);
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<u32>>());
        assert!(max_leaf_size(&node) <= 8);
        assert!(cost.splits > 0);
        assert_eq!(cost.cq, 0, "offline runs have no query cost");
        fn no_unsplit(n: &BuiltNode) -> bool {
            match &n.kind {
                BuiltKind::Internal(cs) => cs.iter().all(no_unsplit),
                BuiltKind::Leaf(_) => true,
                BuiltKind::Unsplit(_) => false,
            }
        }
        assert!(no_unsplit(&node), "offline build must fully split");
    }

    #[test]
    fn small_input_becomes_leaf() {
        let ps = random_points(5, 3, 2);
        let orders = SortOrders::build(&ps, ps.all_ids());
        let mut cost = RunCost::default();
        let node = build_element(
            &ps,
            &params(),
            orders,
            None,
            &mut GreedyChooser,
            &mut cost,
            &SERIAL,
        );
        assert!(matches!(node.kind, BuiltKind::Leaf(_)));
        assert_eq!(node.height, 0);
        assert_eq!(cost.splits, 0);
    }

    #[test]
    fn cracked_build_is_partial_but_lossless() {
        let ps = random_points(2_000, 3, 3);
        let orders = SortOrders::build(&ps, ps.all_ids());
        // Small query ball in a corner of the space.
        let q = Mbr::of_ball(&[8.0, 8.0, 8.0], 1.5);
        let mut cost = RunCost::default();
        let node = build_element(
            &ps,
            &params(),
            orders,
            Some(&q),
            &mut GreedyChooser,
            &mut cost,
            &SERIAL,
        );
        // All points still present exactly once (Lemma 1).
        let mut ids = Vec::new();
        collect_leaf_ids(&node, &mut ids);
        ids.sort_unstable();
        assert_eq!(ids, (0..2_000).collect::<Vec<u32>>());
        // The cracked tree must be much smaller than a full build.
        let mut full_cost = RunCost::default();
        let full_orders = SortOrders::build(&ps, ps.all_ids());
        let full = build_element(
            &ps,
            &params(),
            full_orders,
            None,
            &mut GreedyChooser,
            &mut full_cost,
            &SERIAL,
        );
        assert!(
            cost.splits * 3 < full_cost.splits,
            "cracked {} splits vs full {}",
            cost.splits,
            full_cost.splits
        );
        assert!(node.node_count() < full.node_count());
    }

    #[test]
    fn disjoint_query_leaves_element_unsplit() {
        let ps = random_points(300, 2, 4);
        let orders = SortOrders::build(&ps, ps.all_ids());
        let q = Mbr::of_ball(&[100.0, 100.0], 1.0); // far away
        let mut cost = RunCost::default();
        let node = build_element(
            &ps,
            &params(),
            orders,
            Some(&q),
            &mut GreedyChooser,
            &mut cost,
            &SERIAL,
        );
        assert!(matches!(node.kind, BuiltKind::Unsplit(_)));
        assert_eq!(cost.splits, 0);
        assert_eq!(cost.cq, 0);
    }

    #[test]
    fn covering_query_stops_immediately() {
        // Q covers everything → ⌈|Q∩e|/N⌉ = ⌈|e|/N⌉ → unsplit.
        let ps = random_points(300, 2, 5);
        let orders = SortOrders::build(&ps, ps.all_ids());
        let q = Mbr::of_ball(&[0.0, 0.0], 1_000.0);
        let mut cost = RunCost::default();
        let node = build_element(
            &ps,
            &params(),
            orders,
            Some(&q),
            &mut GreedyChooser,
            &mut cost,
            &SERIAL,
        );
        assert!(matches!(node.kind, BuiltKind::Unsplit(_)));
        assert_eq!(cost.splits, 0);
        assert_eq!(cost.cq, div_ceil(300, 8));
    }

    #[test]
    fn stop_condition_cases() {
        assert!(stop_condition(0, 100, 8), "empty intersection stops");
        assert!(stop_condition(100, 100, 8), "full coverage stops");
        assert!(stop_condition(97, 100, 8), "⌈97/8⌉ = ⌈100/8⌉ = 13");
        assert!(!stop_condition(1, 100, 8));
        assert!(!stop_condition(50, 100, 8));
    }

    #[test]
    fn run_cost_counts_contour_pages() {
        // Query hits a moderate slab: c_Q must equal the sum over produced
        // contour elements of ⌈|Q∩e|/N⌉, recomputed independently.
        let ps = random_points(800, 2, 6);
        let orders = SortOrders::build(&ps, ps.all_ids());
        let q = Mbr::of_ball(&[0.0, 0.0], 3.0);
        let mut cost = RunCost::default();
        let node = build_element(
            &ps,
            &params(),
            orders,
            Some(&q),
            &mut GreedyChooser,
            &mut cost,
            &SERIAL,
        );
        fn contour_cq(n: &BuiltNode, ps: &PointSet, q: &Mbr, cap: usize) -> u64 {
            match &n.kind {
                BuiltKind::Internal(cs) => cs.iter().map(|c| contour_cq(c, ps, q, cap)).sum(),
                BuiltKind::Leaf(ids) => {
                    div_ceil(ids.iter().filter(|&&i| ps.in_region(i, q)).count(), cap)
                }
                BuiltKind::Unsplit(o) => div_ceil(o.count_in_region(ps, q), cap),
            }
        }
        assert_eq!(cost.cq, contour_cq(&node, &ps, &q, 8));
    }

    /// Structural equality of two built trees: identical MBRs, heights,
    /// leaf id sequences, and unsplit partitions along every path.
    fn trees_equal(a: &BuiltNode, b: &BuiltNode) -> bool {
        if a.mbr != b.mbr || a.height != b.height {
            return false;
        }
        match (&a.kind, &b.kind) {
            (BuiltKind::Internal(ca), BuiltKind::Internal(cb)) => {
                ca.len() == cb.len() && ca.iter().zip(cb).all(|(x, y)| trees_equal(x, y))
            }
            (BuiltKind::Leaf(ia), BuiltKind::Leaf(ib)) => ia == ib,
            (BuiltKind::Unsplit(oa), BuiltKind::Unsplit(ob)) => oa == ob,
            _ => false,
        }
    }

    #[test]
    fn pooled_offline_build_matches_serial_tree() {
        let ps = random_points(6_000, 3, 77);
        let serial_orders = SortOrders::build(&ps, ps.all_ids());
        let mut c1 = RunCost::default();
        let t1 = build_element(
            &ps,
            &params(),
            serial_orders,
            None,
            &mut GreedyChooser,
            &mut c1,
            &SERIAL,
        );
        for width in [2, 4] {
            let pool = Pool::new(width);
            let orders = SortOrders::build_pooled(&ps, ps.all_ids(), &pool);
            let mut c2 = RunCost::default();
            let t2 = build_element(
                &ps,
                &params(),
                orders,
                None,
                &mut GreedyChooser,
                &mut c2,
                &pool,
            );
            assert!(
                trees_equal(&t1, &t2),
                "width {width} built a different tree"
            );
            assert_eq!(c1.splits, c2.splits, "width {width}");
            assert_eq!(c1.cq, c2.cq, "width {width}");
        }
    }

    #[test]
    fn pooled_online_crack_matches_serial_tree() {
        let ps = random_points(6_000, 3, 78);
        let q = Mbr::of_ball(&[2.0, 2.0, 2.0], 3.0);
        let mut c1 = RunCost::default();
        let t1 = build_element(
            &ps,
            &params(),
            SortOrders::build(&ps, ps.all_ids()),
            Some(&q),
            &mut GreedyChooser,
            &mut c1,
            &SERIAL,
        );
        let pool = Pool::new(4);
        let mut c2 = RunCost::default();
        let t2 = build_element(
            &ps,
            &params(),
            SortOrders::build_pooled(&ps, ps.all_ids(), &pool),
            Some(&q),
            &mut GreedyChooser,
            &mut c2,
            &pool,
        );
        assert!(trees_equal(&t1, &t2), "online crack diverged at width 4");
        assert_eq!(c1.splits, c2.splits);
        assert_eq!(c1.cq, c2.cq);
    }
}
