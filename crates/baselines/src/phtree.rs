//! The PH-tree (Zäschke et al., SIGMOD 2014 — the paper's reference
//! [22]): a space-efficient multi-dimensional index that interleaves the
//! bits of quantized coordinates into a prefix-sharing hypercube trie.
//!
//! Used in the evaluation as the "index the raw embeddings directly"
//! baseline: unlike the cracking R-tree it needs no S₂ transform, but at
//! d ≥ 50 dimensions a node's 2^d hypercube addresses are almost all
//! distinct, the trie degenerates toward a flat list, and kNN pruning
//! loses its bite — the paper's Figure 3 finding ("almost as slow as no
//! index").
//!
//! Implementation notes:
//! * Coordinates are uniformly quantized to 16-bit fixed point with one
//!   global affine map, so quantized geometry is a scaled copy of the
//!   original.
//! * A node discriminates one bit level; its hypercube address is the
//!   d-bit pattern of that level (stored sparsely in a `HashMap<u128, …>`,
//!   so d ≤ 128).
//! * kNN is best-first over dequantized node boxes inflated by one
//!   quantum (an admissible bound on true S₁ distance), with exact
//!   distances at the entries — the result is exact.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Bits per dimension after quantization.
const BITS: u32 = 16;

/// Maximum supported dimensionality (hypercube addresses are `u128`).
pub const MAX_PH_DIM: usize = 128;

#[derive(Debug)]
enum Child {
    Node(Box<Node>),
    /// A point entry: quantized key + the ids of all points sharing it.
    Entry {
        key: Vec<u16>,
        ids: Vec<u32>,
    },
}

#[derive(Debug)]
struct Node {
    /// Bit level this node discriminates (0 = least significant).
    bit: u32,
    /// Common prefix: coordinates with all bits ≤ `bit` zeroed.
    prefix: Vec<u16>,
    children: HashMap<u128, Child>,
}

impl Node {
    fn new(bit: u32, prefix: Vec<u16>) -> Self {
        Self {
            bit,
            prefix,
            children: HashMap::new(),
        }
    }
}

/// Hypercube address of `key` at bit level `bit`.
fn address(key: &[u16], bit: u32) -> u128 {
    let mut hv = 0u128;
    for (i, &c) in key.iter().enumerate() {
        hv |= u128::from((c >> bit) & 1) << i;
    }
    hv
}

/// Zeroes all bits ≤ `bit` of every coordinate.
fn mask_above(key: &[u16], bit: u32) -> Vec<u16> {
    let mask = if bit + 1 >= 16 {
        0u16
    } else {
        !((1u16 << (bit + 1)) - 1)
    };
    key.iter().map(|&c| c & mask).collect()
}

/// Highest bit level strictly below `below` at which `a` and `b` differ in
/// any dimension; `None` if equal on all those levels.
fn highest_diff_bit(a: &[u16], b: &[u16], below: u32) -> Option<u32> {
    (0..below).rev().find(|&bit| {
        a.iter()
            .zip(b)
            .any(|(&x, &y)| ((x >> bit) & 1) != ((y >> bit) & 1))
    })
}

/// The PH-tree index over a row-major point matrix.
#[derive(Debug)]
pub struct PhTree {
    dim: usize,
    data: Vec<f64>,
    min: f64,
    step: f64,
    root: Node,
    len: usize,
}

#[derive(Debug)]
enum QueueItem<'a> {
    Node(&'a Node),
    Entry(&'a [u32]),
}

struct Prioritized<'a> {
    dist_sq: f64,
    item: QueueItem<'a>,
}

impl PartialEq for Prioritized<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl Eq for Prioritized<'_> {}
impl Ord for Prioritized<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via inversion.
        other.dist_sq.total_cmp(&self.dist_sq)
    }
}
impl PartialOrd for Prioritized<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PhTree {
    /// Builds the tree over `n × dim` row-major `data`.
    ///
    /// # Panics
    /// Panics on shape mismatch, `dim` = 0 or > [`MAX_PH_DIM`], or
    /// non-finite coordinates.
    pub fn build(data: Vec<f64>, dim: usize) -> Self {
        assert!(
            dim > 0 && dim <= MAX_PH_DIM,
            "unsupported dimensionality {dim}"
        );
        assert_eq!(data.len() % dim, 0, "matrix shape mismatch");
        let n = data.len() / dim;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &data {
            assert!(v.is_finite(), "non-finite coordinate {v}");
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if n == 0 {
            lo = 0.0;
            hi = 1.0;
        }
        let span = (hi - lo).max(1e-12);
        let step = span / f64::from(u16::MAX);
        let mut tree = Self {
            dim,
            data,
            min: lo,
            step,
            root: Node::new(BITS - 1, vec![0; dim]),
            len: 0,
        };
        for id in 0..n as u32 {
            let key = tree.quantize_row(id);
            insert(&mut tree.root, key, id);
            tree.len += 1;
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of trie nodes (for the index-size comparisons).
    pub fn node_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            1 + n
                .children
                .values()
                .map(|c| match c {
                    Child::Node(sub) => count(sub),
                    Child::Entry { .. } => 0,
                })
                .sum::<usize>()
        }
        count(&self.root)
    }

    fn row(&self, id: u32) -> &[f64] {
        let i = id as usize * self.dim;
        &self.data[i..i + self.dim]
    }

    fn quantize_row(&self, id: u32) -> Vec<u16> {
        self.row(id)
            .iter()
            .map(|&v| {
                let q = ((v - self.min) / self.step).round();
                q.clamp(0.0, f64::from(u16::MAX)) as u16
            })
            .collect()
    }

    /// Admissible squared-distance lower bound from `q` to everything
    /// under `node`: the dequantized prefix box inflated by one quantum.
    fn node_min_dist_sq(&self, node: &Node, q: &[f64]) -> f64 {
        let free = if node.bit + 1 >= 16 {
            u16::MAX
        } else {
            (1u16 << (node.bit + 1)) - 1
        };
        let mut sum = 0.0;
        for (i, &qi) in q.iter().enumerate().take(self.dim) {
            let lo_q = node.prefix[i];
            let hi_q = node.prefix[i] | free;
            let lo = self.min + f64::from(lo_q) * self.step - self.step;
            let hi = self.min + f64::from(hi_q) * self.step + self.step;
            let d = if qi < lo {
                lo - qi
            } else if qi > hi {
                qi - hi
            } else {
                0.0
            };
            sum += d * d;
        }
        sum
    }

    fn exact_dist_sq(&self, id: u32, q: &[f64]) -> f64 {
        self.row(id)
            .iter()
            .zip(q)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Exact k-nearest-neighbour search, excluding ids for which `skip`
    /// returns true. Results ascend by distance.
    pub fn top_k(&self, q: &[f64], k: usize, mut skip: impl FnMut(u32) -> bool) -> Vec<(u32, f64)> {
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        let mut heap = BinaryHeap::new();
        heap.push(Prioritized {
            dist_sq: 0.0,
            item: QueueItem::Node(&self.root),
        });
        let mut results: Vec<(u32, f64)> = Vec::with_capacity(k);
        while let Some(Prioritized { dist_sq, item }) = heap.pop() {
            if results.len() >= k {
                break;
            }
            match item {
                QueueItem::Entry(ids) => {
                    // dist_sq here is exact.
                    for &id in ids {
                        if results.len() >= k {
                            break;
                        }
                        if !skip(id) {
                            results.push((id, dist_sq.sqrt()));
                        }
                    }
                }
                QueueItem::Node(node) => {
                    for child in node.children.values() {
                        match child {
                            Child::Node(sub) => {
                                heap.push(Prioritized {
                                    dist_sq: self.node_min_dist_sq(sub, q),
                                    item: QueueItem::Node(sub),
                                });
                            }
                            Child::Entry { ids, .. } => {
                                let d = self.exact_dist_sq(ids[0], q);
                                heap.push(Prioritized {
                                    dist_sq: d,
                                    item: QueueItem::Entry(ids),
                                });
                            }
                        }
                    }
                }
            }
        }
        results
    }
}

fn insert(node: &mut Node, key: Vec<u16>, id: u32) {
    let hv = address(&key, node.bit);
    let node_bit = node.bit;
    match node.children.get_mut(&hv) {
        None => {
            node.children
                .insert(hv, Child::Entry { key, ids: vec![id] });
        }
        Some(Child::Entry { key: existing, ids }) => {
            if *existing == key {
                ids.push(id);
                return;
            }
            let diff = highest_diff_bit(existing, &key, node_bit)
                .expect("distinct keys in the same slot must differ below the node bit");
            let mut sub = Node::new(diff, mask_above(&key, diff));
            let old_key = existing.clone();
            let old_ids = std::mem::take(ids);
            sub.children.insert(
                address(&old_key, diff),
                Child::Entry {
                    key: old_key,
                    ids: old_ids,
                },
            );
            sub.children
                .insert(address(&key, diff), Child::Entry { key, ids: vec![id] });
            node.children.insert(hv, Child::Node(Box::new(sub)));
        }
        Some(Child::Node(sub)) => {
            // Does `key` share `sub`'s prefix on the levels in between?
            if let Some(diff) = highest_diff_bit(&sub.prefix, &key, node_bit) {
                if diff > sub.bit {
                    // Split: an intermediate node at the divergence level.
                    let mut mid = Node::new(diff, mask_above(&key, diff));
                    let sub_hv = address(&sub.prefix, diff);
                    let old = std::mem::replace(sub, Box::new(Node::new(0, Vec::new())));
                    mid.children.insert(sub_hv, Child::Node(old));
                    mid.children
                        .insert(address(&key, diff), Child::Entry { key, ids: vec![id] });
                    **sub = mid;
                    return;
                }
            }
            insert(sub, key, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_top_k(data: &[f64], dim: usize, q: &[f64], k: usize) -> Vec<u32> {
        let n = data.len() / dim;
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.sort_by(|&a, &b| {
            let da: f64 = data[a as usize * dim..(a as usize + 1) * dim]
                .iter()
                .zip(q)
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            let db: f64 = data[b as usize * dim..(b as usize + 1) * dim]
                .iter()
                .zip(q)
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            da.total_cmp(&db).then(a.cmp(&b))
        });
        ids.truncate(k);
        ids
    }

    #[test]
    fn exact_knn_low_dim() {
        let mut rng = StdRng::seed_from_u64(5);
        let dim = 3;
        let data: Vec<f64> = (0..500 * dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let tree = PhTree::build(data.clone(), dim);
        for _ in 0..20 {
            let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let got: Vec<u32> = tree.top_k(&q, 5, |_| false).iter().map(|r| r.0).collect();
            let want = brute_top_k(&data, dim, &q, 5);
            // Quantization can flip near-ties; require high overlap and an
            // exact match on the nearest neighbour.
            assert_eq!(got[0], want[0], "nearest neighbour must be exact");
            let overlap = got.iter().filter(|g| want.contains(g)).count();
            assert!(overlap >= 4, "overlap {overlap}/5 too low");
        }
    }

    #[test]
    fn exact_knn_high_dim() {
        // d = 50 like the paper's embeddings: the tree degenerates but
        // must stay correct.
        let mut rng = StdRng::seed_from_u64(6);
        let dim = 50;
        let data: Vec<f64> = (0..300 * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let tree = PhTree::build(data.clone(), dim);
        let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let got: Vec<u32> = tree.top_k(&q, 3, |_| false).iter().map(|r| r.0).collect();
        let want = brute_top_k(&data, dim, &q, 3);
        assert_eq!(got[0], want[0]);
        let overlap = got.iter().filter(|g| want.contains(g)).count();
        assert!(overlap >= 2);
    }

    #[test]
    fn skip_respected() {
        let data = vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0];
        let tree = PhTree::build(data, 2);
        let got: Vec<u32> = tree
            .top_k(&[0.0, 0.0], 2, |id| id == 0)
            .iter()
            .map(|r| r.0)
            .collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn duplicate_points_share_entry() {
        let data = vec![1.0, 1.0, 1.0, 1.0, 5.0, 5.0];
        let tree = PhTree::build(data, 2);
        let got: Vec<u32> = tree
            .top_k(&[1.0, 1.0], 2, |_| false)
            .iter()
            .map(|r| r.0)
            .collect();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&0) && got.contains(&1));
    }

    #[test]
    fn distances_ascend() {
        let mut rng = StdRng::seed_from_u64(8);
        let data: Vec<f64> = (0..200 * 4).map(|_| rng.gen_range(0.0..1.0)).collect();
        let tree = PhTree::build(data, 4);
        let r = tree.top_k(&[0.5, 0.5, 0.5, 0.5], 10, |_| false);
        for w in r.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-9);
        }
    }

    #[test]
    fn empty_and_tiny_trees() {
        let tree = PhTree::build(vec![], 3);
        assert!(tree.is_empty());
        assert!(tree.top_k(&[0.0, 0.0, 0.0], 5, |_| false).is_empty());

        let tree = PhTree::build(vec![1.0, 2.0, 3.0], 3);
        assert_eq!(tree.len(), 1);
        let r = tree.top_k(&[0.0, 0.0, 0.0], 5, |_| false);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, 0);
    }

    #[test]
    fn k_zero_is_empty() {
        let tree = PhTree::build(vec![1.0, 2.0], 2);
        assert!(tree.top_k(&[0.0, 0.0], 0, |_| false).is_empty());
    }

    #[test]
    fn node_count_reasonable() {
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<f64> = (0..1_000 * 2).map(|_| rng.gen_range(0.0..1.0)).collect();
        let tree = PhTree::build(data, 2);
        let nodes = tree.node_count();
        assert!(nodes >= 1);
        assert!(
            nodes <= 1_000,
            "a trie over 1000 points needs ≤ n inner nodes"
        );
    }

    #[test]
    fn high_dim_root_fanout_degenerates() {
        // The §VI observation: at d = 50 almost every point occupies its
        // own root slot, so the structure is nearly flat.
        let mut rng = StdRng::seed_from_u64(10);
        let dim = 50;
        let n = 200;
        let data: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let tree = PhTree::build(data, dim);
        // Flatness: the number of trie nodes stays tiny relative to n
        // because almost no pairs share a root address.
        assert!(tree.node_count() < n / 4, "nodes = {}", tree.node_count());
    }
}
