//! Microbenchmarks for the data-parallel core: JL projection, bulk
//! R-tree build, and top-k refinement at pool widths {1, N}.
//!
//! The dataset is synthetic but shaped like the paper's: ≥100k entities
//! whose cluster memberships follow a Zipf law (real KG degree
//! distributions are power-law, §II), embedded in a 64-d S₁ and
//! projected to α = 16. Every section is timed at width 1 (the exact
//! serial code path — bit-identical to the pre-pool implementation) and
//! at width N, and the ratio is reported as the speedup.
//!
//! ```text
//! cargo run --release -p vkg-bench --bin microbench -- --entities 100000 --width 4
//! ```
//!
//! Results land in `BENCH_core.json` (schema: EXPERIMENTS.md §"Core
//! microbenchmarks"), including the result cache's Zipf hit ratio and
//! cold-miss overhead, the WAL-on vs WAL-off dynamic-write wall times,
//! and the serve path's batch-{1,N} wall times with the
//! lock-rounds-per-answer ratio. `--check` runs a seconds-fast
//! parity gate instead: blocked kernels must match the scalar reference
//! within 1e-9 relative error, pooled builds and queries must agree with
//! serial ones exactly, the pool must claim every chunk, the cache must
//! earn a > 0.5 Zipf hit ratio at ≤ 5% miss overhead, batched
//! serving must take < 1 lock acquisition per answered request, and
//! arming the write-ahead log must cost ≤ 10% on the dynamic-write
//! path — the CI tier-2 gate.

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vkg::core::config::{shards_from_env, threads_from_env, DEFAULT_CACHE_CAPACITY};
use vkg::core::geometry::kernels;
use vkg::core::geometry::PointSet;
use vkg::core::metrics::names as core_names;
use vkg::core::query::topk::find_top_k;
use vkg::core::FaultPlane;
use vkg::kg::zipf::Zipf;
use vkg::obs::{Clock, Registry};
use vkg::prelude::*;
use vkg::sync::pool::Pool;
use vkg::sync::{AtomicU64, Ordering};
use vkg_bench::{setup, workload};
use vkg_server::server::names as server_names;
use vkg_server::{Client, Server, ServerConfig};

struct Args {
    entities: usize,
    s1_dim: usize,
    alpha: usize,
    width: usize,
    shards: usize,
    reps: usize,
    queries: usize,
    seed: u64,
    zipf_s: f64,
    out: String,
    check: bool,
}

impl Default for Args {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Args {
            entities: 100_000,
            s1_dim: 64,
            alpha: 16,
            width: threads_from_env(cores),
            shards: shards_from_env(1),
            reps: 3,
            queries: 50,
            seed: 42,
            zipf_s: 1.0,
            out: "BENCH_core.json".to_owned(),
            check: false,
        }
    }
}

fn usage() {
    eprintln!(
        "usage: microbench [--entities N] [--dim N] [--alpha N] [--width N] [--shards N]\n\
         \x20                [--reps N] [--queries N] [--seed N] [--zipf F] [--out PATH]\n\
         \x20                [--check]"
    );
}

fn parse_args() -> Option<Args> {
    let mut a = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--check" {
            a.check = true;
            continue;
        }
        if arg == "--out" {
            match args.next() {
                Some(p) => a.out = p,
                None => {
                    usage();
                    return None;
                }
            }
            continue;
        }
        let mut num = |what: &str| -> Option<f64> {
            match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => Some(v),
                _ => {
                    eprintln!("microbench: {what} wants a positive number");
                    None
                }
            }
        };
        match arg.as_str() {
            "--entities" => a.entities = num("--entities")? as usize,
            "--dim" => a.s1_dim = num("--dim")? as usize,
            "--alpha" => a.alpha = num("--alpha")? as usize,
            "--width" => a.width = num("--width")? as usize,
            "--shards" => a.shards = num("--shards")? as usize,
            "--reps" => a.reps = num("--reps")? as usize,
            "--queries" => a.queries = num("--queries")? as usize,
            "--seed" => a.seed = num("--seed")? as u64,
            "--zipf" => a.zipf_s = num("--zipf")?,
            _ => {
                usage();
                return None;
            }
        }
    }
    Some(a)
}

/// Zipf-clustered synthetic embedding matrix: `n × dim` row-major, with
/// cluster popularity following `Zipf(centers, s)` so the point cloud is
/// skewed the way a power-law KG's embedding space is.
fn synthetic_s1(n: usize, dim: usize, zipf_s: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_centers = 256.min(n.max(1));
    let centers: Vec<Vec<f64>> = (0..num_centers)
        .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect();
    let zipf = Zipf::new(num_centers, zipf_s);
    let mut rows = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let c = &centers[zipf.sample(&mut rng)];
        for &coord in c {
            rows.push(coord + rng.gen_range(-1.0..1.0));
        }
    }
    rows
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Timing {
    section: &'static str,
    width: usize,
    ms: f64,
}

/// One timed sweep of every section at the given pool width. Returns
/// `(timings, top-k prediction ids)` — the ids let the caller assert
/// width-independence of the query results.
fn run_sections(args: &Args, s1: &[f64], width: usize) -> (Vec<Timing>, Vec<u32>) {
    let pool = Pool::new(width);
    let transform = JlTransform::new(args.s1_dim, args.alpha, 7);
    let mut timings = Vec::new();

    // Section 1: JL projection of the full n × d entity matrix.
    let mut projected = Vec::new();
    timings.push(Timing {
        section: "jl_transform",
        width,
        ms: time_ms(args.reps, || {
            projected = transform.apply_matrix_pooled(&pool, s1);
        }),
    });

    // Section 2: offline bulk build over the projected points.
    let points = PointSet::from_rows(args.alpha, projected);
    let mut built = None;
    timings.push(Timing {
        section: "bulk_build",
        width,
        ms: time_ms(args.reps, || {
            built = Some(CrackingIndex::bulk_load_with_pool(
                points.clone(),
                64,
                8,
                2.0,
                pool.clone(),
            ));
        }),
    });
    // lint: allow(no-unwrap, time_ms clamps reps to ≥ 1, so the closure ran at least once)
    let mut index = built.expect("reps ≥ 1 always builds");

    // Section 3: top-k refinement (Algorithm 3) with an S₂ oracle, query
    // centers at Zipf-popular points. The tree is fully built, so the
    // crack at the end of each query is a no-op and reps are comparable.
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5eed);
    let zipf = Zipf::new(points.len(), args.zipf_s);
    let queries: Vec<Vec<f64>> = (0..args.queries)
        .map(|_| {
            let anchor = zipf.sample(&mut rng) as u32;
            points
                .point(anchor)
                .iter()
                .map(|c| c + rng.gen_range(-0.5..0.5))
                .collect()
        })
        .collect();
    let mut ids = Vec::new();
    timings.push(Timing {
        section: "topk_refine",
        width,
        ms: time_ms(args.reps, || {
            ids.clear();
            for q in &queries {
                let r = find_top_k(
                    &mut index,
                    q,
                    10,
                    0.5,
                    args.alpha,
                    |pts, id| pts.distance_sq(id, q).sqrt(),
                    |_| false,
                )
                // lint: allow(no-unwrap, constants k=10 and p_tau=0.5 satisfy find_top_k's contract)
                .expect("valid top-k parameters");
                ids.extend(r.predictions.iter().map(|p| p.id));
            }
        }),
    });
    (timings, ids)
}

/// Observability overhead on the facade's top-k path: the same query
/// batch against two otherwise identical engines, one recording into a
/// live `vkg-obs` registry and one into [`Registry::noop`]. Returns
/// `(instrumented_ms, noop_ms)` as the **min** over `reps` sweeps —
/// scheduling noise only ever adds time, so the minima isolate the
/// code-path difference the ≤5% gate is about.
fn obs_overhead_ms(reps: usize, queries: usize) -> Result<(f64, f64), String> {
    let prepared = setup::movie(setup::Scale::Smoke, 16);
    let cfg = setup::bench_config();
    let batch = workload::generate(&prepared.dataset.graph, queries, 0x0b5);
    let build = |registry: Registry| {
        VirtualKnowledgeGraph::try_assemble_with_metrics(
            prepared.dataset.graph.clone(),
            prepared.dataset.attributes.clone(),
            prepared.embeddings.clone(),
            cfg.clone(),
            registry,
            Clock::real(),
        )
        .map_err(|e| format!("obs overhead assemble: {e}"))
    };
    let measure = |vkg: &VirtualKnowledgeGraph| {
        // One untimed sweep cracks the tree, so the timed sweeps
        // measure steady-state refinement on both engines identically.
        for q in &batch {
            let _ = vkg.top_k(q.entity, q.relation, q.direction, 10);
        }
        (0..reps.max(1))
            .map(|_| {
                let t = Instant::now();
                for q in &batch {
                    let _ = vkg.top_k(q.entity, q.relation, q.direction, 10);
                }
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let instrumented = build(Registry::active())?;
    let noop = build(Registry::noop())?;
    Ok((measure(&instrumented), measure(&noop)))
}

/// Dynamic-write wall time with and without the write-ahead log armed:
/// the same write plan against two identically-built smoke-scale
/// engines, one of which first attached a fresh WAL (so every write
/// appends + flushes a 54-byte record before publishing). Returns
/// `(wal_on_ms, wal_off_ms)` as the **min** over `trials` fresh-engine
/// pairs — as in [`obs_overhead_ms`], minima isolate the code-path
/// difference the ≤10% gate is about. The WAL-off side *is* today's
/// in-memory path: with no writer armed, `add_fact_dynamic` never
/// touches the durability module beyond one uncontended lock probe.
fn wal_overhead_ms(trials: usize, writes: usize) -> Result<(f64, f64), String> {
    let prepared = setup::movie(setup::Scale::Smoke, 16);
    let cfg = setup::bench_config();
    let n = prepared.dataset.graph.num_entities() as u32;
    let relations = prepared.dataset.graph.num_relations() as u32;
    let plan: Vec<(EntityId, RelationId, EntityId)> = (0..writes as u32)
        .map(|i| {
            (
                EntityId(i % n),
                RelationId(i % relations),
                EntityId((i * 37 + 11) % n),
            )
        })
        .collect();
    let mut wal_path = std::env::temp_dir();
    wal_path.push(format!("vkg_microbench_{}.wal", std::process::id()));
    let pass = |vkg: &VirtualKnowledgeGraph| -> Result<f64, String> {
        let t = Instant::now();
        for &(h, r, tail) in &plan {
            vkg.add_fact_dynamic(h, r, tail, 2, 0.01)
                .map_err(|e| format!("wal overhead write: {e}"))?;
        }
        Ok(t.elapsed().as_secs_f64() * 1e3)
    };
    let mut on_ms = f64::INFINITY;
    let mut off_ms = f64::INFINITY;
    for _ in 0..trials.max(3) {
        let off = prepared.engine(cfg.clone());
        off_ms = off_ms.min(pass(&off)?);
        let on = prepared.engine(cfg.clone());
        // A fresh log each trial: replaying the previous trial's
        // records would make later trials pay for earlier ones.
        let _ = std::fs::remove_file(&wal_path);
        on.attach_wal(&wal_path, FaultPlane::none())
            .map_err(|e| format!("wal overhead attach: {e}"))?;
        on_ms = on_ms.min(pass(&on)?);
    }
    let _ = std::fs::remove_file(&wal_path);
    Ok((on_ms, off_ms))
}

/// Measured behavior of the epoch-keyed result cache and the serve
/// path's same-shard batching, all on the smoke-scale movie engine.
struct CacheStats {
    /// hits / (hits + misses) over a repeat-heavy Zipf(1.2) read
    /// workload — the regime the cache is built for.
    hit_ratio: f64,
    /// Min wall time of one warm (all-hit) Zipf pass.
    hit_pass_ms: f64,
    /// Min wall time of one all-miss pass with the cache enabled
    /// (fresh engine per rep, every query distinct).
    miss_on_ms: f64,
    /// The same all-miss pass against a cache-disabled twin.
    miss_off_ms: f64,
    /// Wall time of the loopback serve storm at batch_max = 1.
    batch1_ms: f64,
    /// The same storm at `batch_max` — same workload, same workers.
    batchn_ms: f64,
    /// The batch cap used for `batchn_ms`.
    batch_max: usize,
    /// Server lock acquisitions per answered request in the batched
    /// storm; < 1.0 means same-shard grouping really amortized locks.
    lock_rounds_per_answered: f64,
}

impl CacheStats {
    fn miss_overhead_pct(&self) -> f64 {
        (self.miss_on_ms / self.miss_off_ms.max(1e-9) - 1.0) * 1e2
    }
    fn batch_speedup(&self) -> f64 {
        self.batch1_ms / self.batchn_ms.max(1e-9)
    }
}

/// Times the cache's three regimes (steady-state hits, cold misses
/// vs a cache-off twin, and the batched serve path at batch sizes
/// {1, N}). Minima over `reps` isolate the code-path difference, as in
/// [`obs_overhead_ms`].
fn cache_batch_stats(reps: usize, shards: usize) -> Result<CacheStats, String> {
    let prepared = setup::movie(setup::Scale::Smoke, 16);
    let base = VkgConfig {
        shards,
        ..setup::bench_config()
    };
    let graph = &prepared.dataset.graph;
    let reps = reps.max(1);

    // (a) Hit ratio + hit-path latency on a repeat-heavy Zipf workload.
    let zipf = workload::generate_zipf(graph, 300, 0xcafe, 1.2);
    let cached = prepared.engine(VkgConfig {
        cache_capacity: DEFAULT_CACHE_CAPACITY,
        ..base.clone()
    });
    let pass = |vkg: &VirtualKnowledgeGraph, qs: &[workload::Query]| {
        let t = Instant::now();
        for q in qs {
            let _ = vkg.top_k(q.entity, q.relation, q.direction, 10);
        }
        t.elapsed().as_secs_f64() * 1e3
    };
    pass(&cached, &zipf); // warm fill: the timed passes measure hits
    let hit_pass_ms = (0..reps)
        .map(|_| pass(&cached, &zipf))
        .fold(f64::INFINITY, f64::min);
    let snap = cached.metrics_snapshot();
    let hits = snap.counter(core_names::CACHE_HIT).unwrap_or(0) as f64;
    let misses = snap.counter(core_names::CACHE_MISS).unwrap_or(0) as f64;
    let hit_ratio = hits / (hits + misses).max(1.0);

    // (b) Cold-miss overhead: every query distinct, fresh engines per
    // rep so the cache-on side never hits — its overhead is the lookup,
    // the fingerprint, and the insert.
    let mut seen = std::collections::HashSet::new();
    let distinct: Vec<workload::Query> = workload::generate(graph, 512, 0xd15)
        .into_iter()
        .filter(|q| seen.insert((q.entity.0, q.relation.0, q.direction == Direction::Tails)))
        .collect();
    // Min over at least 5 fresh-engine trials regardless of --reps: this
    // difference is a per-query ~µs effect, and scheduling noise only
    // adds time, so more minima mean a more honest code-path comparison.
    let miss_trials = reps.max(5);
    let mut miss_on_ms = f64::INFINITY;
    let mut miss_off_ms = f64::INFINITY;
    for _ in 0..miss_trials {
        let on = prepared.engine(VkgConfig {
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            ..base.clone()
        });
        miss_on_ms = miss_on_ms.min(pass(&on, &distinct));
        let off = prepared.engine(VkgConfig {
            cache_capacity: 0,
            ..base.clone()
        });
        miss_off_ms = miss_off_ms.min(pass(&off, &distinct));
    }

    // (c) The serve path at batch_max {1, N}: 8 closed-loop connections
    // against 2 workers keep the queue deep enough for same-shard
    // groups to form; the lock-rounds counter shows the amortization.
    let batch_max = 8;
    let storm = Arc::new(zipf);
    let serve_pass = |batch: usize| -> Result<(f64, u64, u64), String> {
        let vkg = Arc::new(prepared.engine(VkgConfig {
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            ..base.clone()
        }));
        let handle = Server::start(
            Arc::clone(&vkg),
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_capacity: 512,
                batch_max: batch,
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("serve storm bind: {e}"))?;
        let addr = handle.addr();
        let t = Instant::now();
        let conns: Vec<_> = (0..8)
            .map(|_| {
                let storm = Arc::clone(&storm);
                thread::spawn(move || -> Result<(), String> {
                    let mut client =
                        Client::connect(addr).map_err(|e| format!("storm connect: {e}"))?;
                    for q in storm.iter() {
                        client
                            .top_k(q.entity, q.relation, q.direction, 10)
                            .map_err(|e| format!("storm top-k: {e}"))?;
                    }
                    Ok(())
                })
            })
            .collect();
        for c in conns {
            c.join().map_err(|_| "storm connection panicked")??;
        }
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let m = Client::connect(addr)
            .and_then(|mut c| c.metrics(0))
            .map_err(|e| format!("storm metrics: {e}"))?;
        let rounds = m.snapshot.counter(server_names::LOCK_ROUNDS).unwrap_or(0);
        let answered = m.snapshot.gauge(server_names::ANSWERED).unwrap_or(0);
        handle.shutdown();
        Ok((ms, rounds, answered))
    };
    let (batch1_ms, _, _) = serve_pass(1)?;
    let (batchn_ms, rounds, answered) = serve_pass(batch_max)?;

    Ok(CacheStats {
        hit_ratio,
        hit_pass_ms,
        miss_on_ms,
        miss_off_ms,
        batch1_ms,
        batchn_ms,
        batch_max,
        lock_rounds_per_answered: rounds as f64 / (answered as f64).max(1.0),
    })
}

fn write_json(
    args: &Args,
    cores: usize,
    timings: &[Timing],
    obs: (f64, f64),
    wal: (f64, f64),
    cache: &CacheStats,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"vkg_core_microbench\",\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"entities\": {},\n", args.entities));
    out.push_str(&format!("  \"s1_dim\": {},\n", args.s1_dim));
    out.push_str(&format!("  \"alpha\": {},\n", args.alpha));
    out.push_str(&format!("  \"zipf_exponent\": {},\n", args.zipf_s));
    out.push_str(&format!("  \"shards\": {},\n", args.shards));
    out.push_str(&format!("  \"reps\": {},\n", args.reps));
    out.push_str(&format!("  \"queries\": {},\n", args.queries));
    if args.width > 1 {
        out.push_str(&format!("  \"widths\": [1, {}],\n", args.width));
    } else {
        out.push_str("  \"widths\": [1],\n");
    }
    out.push_str("  \"timings_ms\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"section\": \"{}\", \"width\": {}, \"ms\": {:.3}}}{comma}\n",
            t.section, t.width, t.ms
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": {\n");
    let sections = ["jl_transform", "bulk_build", "topk_refine"];
    for (i, section) in sections.iter().enumerate() {
        let at = |w: usize| {
            timings
                .iter()
                .find(|t| t.section == *section && t.width == w)
                .map_or(f64::NAN, |t| t.ms)
        };
        let speedup = at(1) / at(args.width).max(1e-9);
        let comma = if i + 1 < sections.len() { "," } else { "" };
        out.push_str(&format!("    \"{section}\": {speedup:.3}{comma}\n"));
    }
    out.push_str("  },\n");
    let (instr_ms, noop_ms) = obs;
    let overhead_pct = (instr_ms / noop_ms.max(1e-9) - 1.0) * 1e2;
    out.push_str("  \"obs_overhead\": {\n");
    out.push_str(&format!("    \"instrumented_ms\": {instr_ms:.3},\n"));
    out.push_str(&format!("    \"noop_ms\": {noop_ms:.3},\n"));
    out.push_str(&format!("    \"overhead_pct\": {overhead_pct:.2}\n"));
    out.push_str("  },\n");
    let (wal_on_ms, wal_off_ms) = wal;
    let wal_overhead_pct = (wal_on_ms / wal_off_ms.max(1e-9) - 1.0) * 1e2;
    out.push_str("  \"wal\": {\n");
    out.push_str(&format!("    \"on_ms\": {wal_on_ms:.3},\n"));
    out.push_str(&format!("    \"off_ms\": {wal_off_ms:.3},\n"));
    out.push_str(&format!("    \"overhead_pct\": {wal_overhead_pct:.2}\n"));
    out.push_str("  },\n");
    out.push_str(&format!("  \"cache_hit_ratio\": {:.4},\n", cache.hit_ratio));
    out.push_str(&format!(
        "  \"batch_speedup\": {:.3},\n",
        cache.batch_speedup()
    ));
    out.push_str("  \"cache\": {\n");
    out.push_str(&format!("    \"hit_pass_ms\": {:.3},\n", cache.hit_pass_ms));
    out.push_str(&format!("    \"miss_on_ms\": {:.3},\n", cache.miss_on_ms));
    out.push_str(&format!("    \"miss_off_ms\": {:.3},\n", cache.miss_off_ms));
    out.push_str(&format!(
        "    \"miss_overhead_pct\": {:.2}\n",
        cache.miss_overhead_pct()
    ));
    out.push_str("  },\n");
    out.push_str("  \"serve_batch\": {\n");
    out.push_str(&format!("    \"batch1_ms\": {:.3},\n", cache.batch1_ms));
    out.push_str(&format!("    \"batchN_ms\": {:.3},\n", cache.batchn_ms));
    out.push_str(&format!("    \"batch_max\": {},\n", cache.batch_max));
    out.push_str(&format!(
        "    \"lock_rounds_per_answered\": {:.4}\n",
        cache.lock_rounds_per_answered
    ));
    out.push_str("  }\n}\n");
    std::fs::write(&args.out, out)
}

/// The `--check` gate: kernel parity, pool sanity, and serial/pooled
/// agreement on a small dataset. Fast enough for CI tier 2.
fn check(args: &Args) -> Result<(), String> {
    // 1. Blocked kernel vs scalar reference, several dims and id strides.
    let mut rng = StdRng::seed_from_u64(9);
    for dim in [2usize, 3, 7, 16] {
        let n = 512;
        let coords: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let ps = PointSet::from_rows(dim, coords);
        let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
        for stride in [1usize, 3] {
            let ids: Vec<u32> = (0..n as u32).step_by(stride).collect();
            let mut scalar = vec![0.0; ids.len()];
            let mut blocked = vec![0.0; ids.len()];
            kernels::scalar_distances_sq(&ps, &ids, &q, &mut scalar);
            kernels::blocked_distances_sq(&ps, &ids, &q, &mut blocked);
            for (i, (s, b)) in scalar.iter().zip(&blocked).enumerate() {
                if (s - b).abs() > 1e-9 * s.abs().max(1.0) {
                    return Err(format!(
                        "kernel parity: dim {dim} stride {stride} id {i}: scalar {s} blocked {b}"
                    ));
                }
            }
        }
    }

    // 2. Pool sanity: width clamping and exactly-once chunk claiming.
    if Pool::new(0).width() != 1 || !Pool::new(0).is_serial() {
        return Err("pool width 0 must clamp to serial".into());
    }
    for width in [1usize, 4] {
        let counter = AtomicU64::new(0);
        Pool::new(width).run(97, |_| {
            // relaxed: independent increments; the pool's scoped join publishes the sum.
            counter.fetch_add(1, Ordering::Relaxed);
        });
        // relaxed: single-threaded read after the pool joined every worker.
        let claimed = counter.load(Ordering::Relaxed);
        if claimed != 97 {
            return Err(format!("pool width {width} ran {claimed}/97 chunks"));
        }
    }

    // 3. Serial vs pooled agreement end-to-end on a small Zipf dataset:
    //    same tree size, same top-k answers.
    let small = Args {
        entities: 4096,
        reps: 1,
        queries: 8,
        ..Default::default()
    };
    let s1 = synthetic_s1(small.entities, small.s1_dim, small.zipf_s, small.seed);
    let (_, serial_ids) = run_sections(&small, &s1, 1);
    let (_, pooled_ids) = run_sections(&small, &s1, args.width.max(2));
    if serial_ids != pooled_ids {
        return Err(format!(
            "pooled top-k diverged from serial ({} vs {} prediction ids)",
            serial_ids.len(),
            pooled_ids.len()
        ));
    }

    // 4. Shard parity: the relation-sharded engine answers every top-k
    //    and aggregate query identically to the unsharded one — shards
    //    change which tree a query cracks, never the answer. CI runs
    //    this stage with VKG_SHARDS ∈ {1, 4}.
    let prepared = setup::movie(setup::Scale::Smoke, 16);
    let cfg = setup::bench_config();
    let unsharded = prepared.engine(VkgConfig {
        shards: 1,
        ..cfg.clone()
    });
    let sharded = prepared.engine(VkgConfig {
        shards: args.shards.max(2),
        ..cfg
    });
    let relations = prepared.dataset.graph.num_relations();
    let entities = prepared.dataset.graph.num_entities();
    for r in 0..relations {
        let relation = RelationId(r as u32);
        for e in (0..entities).step_by(entities / 16 + 1) {
            let entity = EntityId(e as u32);
            for direction in [Direction::Tails, Direction::Heads] {
                let a = unsharded.top_k(entity, relation, direction, 5);
                let b = sharded.top_k(entity, relation, direction, 5);
                let (a, b) = match (a, b) {
                    (Ok(a), Ok(b)) => (a, b),
                    (Err(ea), Err(eb)) if ea.to_string() == eb.to_string() => continue,
                    (a, b) => {
                        return Err(format!(
                            "shard parity: top-k error mismatch e{e} r{r}: {a:?} vs {b:?}"
                        ))
                    }
                };
                let ids = |r: &TopKResult| r.predictions.iter().map(|p| p.id).collect::<Vec<_>>();
                if ids(&a) != ids(&b) {
                    return Err(format!(
                        "shard parity: top-k diverged for entity {e} relation {r}"
                    ));
                }
            }
            let spec = AggregateSpec::count(0.05);
            let a = unsharded.aggregate(entity, relation, Direction::Tails, &spec);
            let b = sharded.aggregate(entity, relation, Direction::Tails, &spec);
            match (a, b) {
                (Ok(a), Ok(b)) if a.estimate == b.estimate => {}
                (Err(_), Err(_)) => {}
                (a, b) => {
                    return Err(format!(
                        "shard parity: COUNT diverged for entity {e} relation {r}: {a:?} vs {b:?}"
                    ))
                }
            }
        }
    }

    // 5. Observability overhead gate: the instrumented facade must stay
    //    within 5% of the no-op-registry facade on the top-k path.
    let (instr_ms, noop_ms) = obs_overhead_ms(5, 200)?;
    if instr_ms > noop_ms * 1.05 {
        return Err(format!(
            "observability overhead {:.2}% exceeds the 5% gate \
             (instrumented {instr_ms:.3}ms vs noop {noop_ms:.3}ms)",
            (instr_ms / noop_ms.max(1e-9) - 1.0) * 1e2
        ));
    }
    eprintln!(
        "microbench --check: obs overhead {:.2}% (instrumented {instr_ms:.3}ms, noop {noop_ms:.3}ms)",
        (instr_ms / noop_ms.max(1e-9) - 1.0) * 1e2
    );

    // 6. Cache + batching gates: the cache must earn > 0.5 hit ratio on
    //    a Zipf workload, cost ≤ 5% on an all-miss workload, and the
    //    batched serve path must take strictly fewer than one lock
    //    acquisition per answered request.
    let cs = cache_batch_stats(5, args.shards)?;
    if cs.hit_ratio <= 0.5 {
        return Err(format!(
            "cache hit ratio {:.3} ≤ 0.5 on the Zipf workload",
            cs.hit_ratio
        ));
    }
    if cs.miss_overhead_pct() > 5.0 {
        return Err(format!(
            "cache-miss overhead {:.2}% exceeds the 5% gate \
             (on {:.3}ms vs off {:.3}ms)",
            cs.miss_overhead_pct(),
            cs.miss_on_ms,
            cs.miss_off_ms
        ));
    }
    if cs.lock_rounds_per_answered >= 1.0 {
        return Err(format!(
            "batched serving took {:.3} lock rounds per answered request (want < 1.0)",
            cs.lock_rounds_per_answered
        ));
    }
    eprintln!(
        "microbench --check: cache hit ratio {:.3}, miss overhead {:+.2}%, \
         batch speedup {:.2}x, {:.3} lock rounds/answer",
        cs.hit_ratio,
        cs.miss_overhead_pct(),
        cs.batch_speedup(),
        cs.lock_rounds_per_answered
    );

    // 7. Durability overhead gate: arming the WAL (append + flush one
    //    54-byte record per write, no fsync) must cost ≤ 10% on the
    //    dynamic-write path. The dominant per-write cost is the
    //    snapshot clone, so a breach here means the log is doing more
    //    I/O than the format requires.
    let (wal_on_ms, wal_off_ms) = wal_overhead_ms(3, 48)?;
    if wal_on_ms > wal_off_ms * 1.10 {
        return Err(format!(
            "WAL write overhead {:.2}% exceeds the 10% gate \
             (on {wal_on_ms:.3}ms vs off {wal_off_ms:.3}ms)",
            (wal_on_ms / wal_off_ms.max(1e-9) - 1.0) * 1e2
        ));
    }
    eprintln!(
        "microbench --check: WAL write overhead {:+.2}% (on {wal_on_ms:.3}ms, off {wal_off_ms:.3}ms)",
        (wal_on_ms / wal_off_ms.max(1e-9) - 1.0) * 1e2
    );
    Ok(())
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return ExitCode::FAILURE;
    };
    if args.check {
        return match check(&args) {
            Ok(()) => {
                eprintln!("microbench --check: kernel parity and pool sanity OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("microbench --check FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut args = args;
    if args.width > cores {
        // Timing a width the machine cannot actually run in parallel
        // reports scheduling overhead as if it were a property of the
        // code; clamp so published speedups are honest.
        eprintln!(
            "microbench: clamping timed width {} to {} available core(s)",
            args.width, cores
        );
        args.width = cores;
    }
    eprintln!(
        "microbench: {} entities, S1 dim {}, alpha {}, widths [1, {}], {} cores, {} shard(s)",
        args.entities, args.s1_dim, args.alpha, args.width, cores, args.shards
    );
    let s1 = synthetic_s1(args.entities, args.s1_dim, args.zipf_s, args.seed);

    let mut timings = Vec::new();
    let mut reference_ids = None;
    let widths = if args.width > 1 {
        vec![1, args.width]
    } else {
        vec![1]
    };
    for width in widths {
        let (t, ids) = run_sections(&args, &s1, width);
        for timing in &t {
            eprintln!(
                "  {:<12} width {:>2}: {:>10.2} ms",
                timing.section, timing.width, timing.ms
            );
        }
        timings.extend(t);
        match &reference_ids {
            None => reference_ids = Some(ids),
            Some(reference) => {
                if *reference != ids {
                    eprintln!("microbench: FATAL: width {width} changed the top-k answers");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let obs = match obs_overhead_ms(args.reps.max(3), 200) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("microbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  obs_overhead: instrumented {:.3} ms, noop {:.3} ms ({:+.2}%)",
        obs.0,
        obs.1,
        (obs.0 / obs.1.max(1e-9) - 1.0) * 1e2
    );
    let wal = match wal_overhead_ms(args.reps.max(5), 64) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("microbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  wal_overhead: on {:.3} ms, off {:.3} ms ({:+.2}%)",
        wal.0,
        wal.1,
        (wal.0 / wal.1.max(1e-9) - 1.0) * 1e2
    );
    let cache = match cache_batch_stats(args.reps, args.shards) {
        Ok(cs) => cs,
        Err(e) => {
            eprintln!("microbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  cache: hit ratio {:.3}, hit pass {:.3} ms, miss overhead {:+.2}%",
        cache.hit_ratio,
        cache.hit_pass_ms,
        cache.miss_overhead_pct()
    );
    eprintln!(
        "  serve_batch: batch1 {:.3} ms, batch{} {:.3} ms ({:.2}x), {:.3} lock rounds/answer",
        cache.batch1_ms,
        cache.batch_max,
        cache.batchn_ms,
        cache.batch_speedup(),
        cache.lock_rounds_per_answered
    );
    match write_json(&args, cores, &timings, obs, wal, &cache) {
        Ok(()) => {
            eprintln!("microbench: wrote {}", args.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("microbench: cannot write {}: {e}", args.out);
            ExitCode::FAILURE
        }
    }
}
