//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p vkg-bench --release --bin run_experiments -- --all
//! cargo run -p vkg-bench --release --bin run_experiments -- --exp fig3 --scale standard
//! ```
//!
//! Results print as aligned tables and land as CSVs under `results/`
//! (override with `--out <dir>`).

use std::path::PathBuf;
use std::process::ExitCode;

use vkg_bench::experiments;
use vkg_bench::setup::Scale;

fn usage() {
    eprintln!(
        "usage: run_experiments (--all | --exp <id>)... [--scale smoke|standard|large] [--out DIR]\n\
         experiment ids: {}",
        experiments::ALL.join(", ")
    );
}

fn main() -> ExitCode {
    let mut scale = Scale::Standard;
    let mut out = PathBuf::from("results");
    let mut exps: Vec<String> = Vec::new();
    let mut all = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--exp" => match args.next() {
                Some(e) => exps.push(e),
                None => {
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--scale" => match args.next().as_deref().and_then(Scale::parse) {
                Some(s) => scale = s,
                None => {
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(d) => out = PathBuf::from(d),
                None => {
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    if all {
        exps = experiments::ALL.iter().map(|s| (*s).to_string()).collect();
    }
    if exps.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    println!("scale: {scale:?}   output: {}\n", out.display());
    for exp in &exps {
        let t = std::time::Instant::now();
        if !experiments::run(exp, scale, &out) {
            eprintln!("unknown experiment id {exp:?}");
            usage();
            return ExitCode::FAILURE;
        }
        println!("[{exp} done in {:.1?}]\n", t.elapsed());
    }
    ExitCode::SUCCESS
}
