//! Model-mode (`--features model`) implementations of the facade
//! primitives. Same API as `passthrough`, but on a *managed* thread
//! (one spawned inside [`crate::model::check`]) every operation first
//! consults the runtime: a scheduling decision, happens-before
//! bookkeeping, and violation checks. On unmanaged threads everything
//! degrades to plain `std::sync` behavior, so binaries compiled with
//! the feature still run their ordinary tests unchanged.
//!
//! Physically the data still lives in `std::sync` primitives; because
//! the model runtime admits exactly one managed thread at a time and
//! grants model-level ownership before the real `try_lock`, those
//! inner locks are always uncontended in a model run.

use std::sync::PoisonError;

use crate::model::runtime::{current, LazyId};
use crate::Ordering;

fn ordering_effects(order: Ordering, is_load: bool, is_store: bool) -> (bool, bool) {
    // (acquire-edge, release-edge) the model runtime should apply.
    // SeqCst is modelled as AcqRel: the global total order is not
    // tracked, only its happens-before consequences.
    let acq = !is_store
        && matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        );
    let rel = !is_load
        && matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        );
    (acq, rel)
}

/// A mutual-exclusion lock; see the passthrough twin for the contract.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    id: LazyId,
    name: Option<&'static str>,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    managed: bool,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            id: LazyId::new(),
            name: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a named mutex; the name appears in model violations.
    pub const fn with_name(value: T, name: &'static str) -> Self {
        Self {
            id: LazyId::new(),
            name: Some(name),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (a model yield point on managed threads).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current() {
            Some((rt, me)) => {
                rt.acquire_mutex(me, self.id.get(), self.name);
                let inner = self
                    .inner
                    .try_lock()
                    .expect("model runtime granted a mutex that is really held");
                MutexGuard {
                    lock: self,
                    managed: true,
                    inner: Some(inner),
                }
            }
            None => MutexGuard {
                lock: self,
                managed: false,
                inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            },
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model release hands the
        // processor to a thread that may immediately try_lock it.
        self.inner = None;
        if self.managed {
            if let Some((rt, me)) = current() {
                rt.release_mutex(me, self.lock.id.get());
            }
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// A reader-writer lock; see the passthrough twin for the contract.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    id: LazyId,
    name: Option<&'static str>,
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    managed: bool,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

/// RAII guard for [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    managed: bool,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            id: LazyId::new(),
            name: None,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a named lock; the name appears in model violations.
    pub const fn with_name(value: T, name: &'static str) -> Self {
        Self {
            id: LazyId::new(),
            name: Some(name),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access (a model yield point).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match current() {
            Some((rt, me)) => {
                rt.acquire_rw(me, self.id.get(), false, self.name);
                let inner = self
                    .inner
                    .try_read()
                    .expect("model runtime granted a read lock that is really held");
                RwLockReadGuard {
                    lock: self,
                    managed: true,
                    inner: Some(inner),
                }
            }
            None => RwLockReadGuard {
                lock: self,
                managed: false,
                inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
            },
        }
    }

    /// Acquires exclusive write access (a model yield point).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match current() {
            Some((rt, me)) => {
                rt.acquire_rw(me, self.id.get(), true, self.name);
                let inner = self
                    .inner
                    .try_write()
                    .expect("model runtime granted a write lock that is really held");
                RwLockWriteGuard {
                    lock: self,
                    managed: true,
                    inner: Some(inner),
                }
            }
            None => RwLockWriteGuard {
                lock: self,
                managed: false,
                inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
            },
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.managed {
            if let Some((rt, me)) = current() {
                rt.release_rw(me, self.lock.id.get(), false);
            }
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.managed {
            if let Some((rt, me)) = current() {
                rt.release_rw(me, self.lock.id.get(), true);
            }
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// A condition variable tied to [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    id: LazyId,
    /// Used only on unmanaged threads; managed waits are pure model
    /// state.
    std_cv: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            id: LazyId::new(),
            std_cv: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and parks until notified;
    /// reacquires before returning.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match current() {
            Some((rt, me)) if guard.managed => {
                let lock = guard.lock;
                let mutex_id = lock.id.get();
                // Disarm the guard: the model release happens inside
                // condvar_wait, atomically with parking.
                guard.managed = false;
                guard.inner = None;
                drop(guard);
                rt.condvar_wait(me, self.id.get(), mutex_id, None);
                // Notified: reacquire through the full model path.
                rt.acquire_mutex(me, mutex_id, lock.name);
                let inner = lock
                    .inner
                    .try_lock()
                    .expect("model runtime granted a mutex that is really held");
                MutexGuard {
                    lock,
                    managed: true,
                    inner: Some(inner),
                }
            }
            _ => {
                let lock = guard.lock;
                let inner = guard.inner.take().expect("guard holds the lock");
                guard.managed = false; // nothing left to release
                drop(guard);
                let inner = self
                    .std_cv
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
                MutexGuard {
                    lock,
                    managed: false,
                    inner: Some(inner),
                }
            }
        }
    }

    /// Wakes one waiter (the model picks which, from the seed).
    pub fn notify_one(&self) {
        if let Some((rt, me)) = current() {
            rt.condvar_notify(me, self.id.get(), false, None);
        } else {
            self.std_cv.notify_one();
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some((rt, me)) = current() {
            rt.condvar_notify(me, self.id.get(), true, None);
        } else {
            self.std_cv.notify_all();
        }
    }
}

/// A 64-bit atomic counter with model-interpreted orderings.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    id: LazyId,
    inner: std::sync::atomic::AtomicU64,
}

impl AtomicU64 {
    /// Creates a new atomic with the given initial value.
    pub const fn new(value: u64) -> Self {
        Self {
            id: LazyId::new(),
            inner: std::sync::atomic::AtomicU64::new(value),
        }
    }

    fn instrument(&self, order: Ordering, is_load: bool, is_store: bool) {
        if let Some((rt, me)) = current() {
            let (acq, rel) = ordering_effects(order, is_load, is_store);
            rt.atomic_access(me, self.id.get(), acq, rel, None);
        }
    }

    /// Loads the current value.
    pub fn load(&self, order: Ordering) -> u64 {
        self.instrument(order, true, false);
        self.inner.load(order)
    }

    /// Stores `value`.
    pub fn store(&self, value: u64, order: Ordering) {
        self.instrument(order, false, true);
        self.inner.store(value, order)
    }

    /// Adds `value`, returning the previous value.
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.instrument(order, false, false);
        self.inner.fetch_add(value, order)
    }

    /// Stores `new` if the current value is `current`; returns the
    /// previous value as `Ok` on success, `Err` on mismatch.
    ///
    /// Instrumented as a read-modify-write at the *success* ordering:
    /// the scheduler treats every CAS as a yield point regardless of
    /// outcome, so interleavings that make it fail are explored too.
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.instrument(success, false, false);
        self.inner.compare_exchange(current, new, success, failure)
    }
}

/// A boolean atomic flag with model-interpreted orderings.
#[derive(Debug, Default)]
pub struct AtomicBool {
    id: LazyId,
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new flag with the given initial value.
    pub const fn new(value: bool) -> Self {
        Self {
            id: LazyId::new(),
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    fn instrument(&self, order: Ordering, is_load: bool, is_store: bool) {
        if let Some((rt, me)) = current() {
            let (acq, rel) = ordering_effects(order, is_load, is_store);
            rt.atomic_access(me, self.id.get(), acq, rel, None);
        }
    }

    /// Loads the current value.
    pub fn load(&self, order: Ordering) -> bool {
        self.instrument(order, true, false);
        self.inner.load(order)
    }

    /// Stores `value`.
    pub fn store(&self, value: bool, order: Ordering) {
        self.instrument(order, false, true);
        self.inner.store(value, order)
    }

    /// Stores `value`, returning the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.instrument(order, false, false);
        self.inner.swap(value, order)
    }
}

/// A shared cell whose every access is race-checked by the model
/// runtime: two accesses (at least one a write) with no happens-before
/// edge between them fail the run at that first conflicting pair.
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    id: LazyId,
    name: Option<&'static str>,
    /// Physical storage. The inner mutex is *not* part of the modelled
    /// program — races are judged purely on vector clocks — it merely
    /// keeps the cell `Sync` for the real OS threads underneath.
    inner: std::sync::Mutex<T>,
}

impl<T: Copy> RaceCell<T> {
    /// Creates a new cell holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            id: LazyId::new(),
            name: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a named cell; the name appears in race reports.
    pub const fn with_name(value: T, name: &'static str) -> Self {
        Self {
            id: LazyId::new(),
            name: Some(name),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Reads the current value (race-checked on managed threads).
    pub fn get(&self) -> T {
        if let Some((rt, me)) = current() {
            rt.cell_read(me, self.id.get(), self.name);
        }
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Replaces the value (race-checked on managed threads).
    pub fn set(&self, value: T) {
        if let Some((rt, me)) = current() {
            rt.cell_write(me, self.id.get(), self.name);
        }
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = value;
    }
}
