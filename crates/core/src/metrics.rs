//! Facade-level observability: the `vkg-obs` registry owned by each
//! [`crate::VirtualKnowledgeGraph`] and the typed metric handles its
//! query paths record into.
//!
//! The handles are resolved **once** at assembly, so the per-query hot
//! path pays one atomic add per counter and one short mutex hold for
//! the latency histogram — never a name lookup. Engine-side statistics
//! that already exist as plain counters ([`crate::IndexStats`], pool
//! dispatch counts, crack-log traffic) are *sampled* into gauges when a
//! snapshot is taken rather than double-counted on the hot path.

use vkg_obs::{Clock, Counter, Gauge, HistogramCell, MetricsSnapshot, Registry, Tick};

use crate::engine::ShardedEngine;

/// Metric names exported by the facade (`core.*` namespace). Kept as
/// constants so exporters and cross-checks reference one spelling.
pub mod names {
    /// Queries served (top-k, filtered top-k, and aggregates).
    pub const QUERIES: &str = "core.queries";
    /// Queries that returned a typed error.
    pub const QUERY_ERRORS: &str = "core.query_errors";
    /// Refine steps (S₁ distance evaluations) across served queries.
    pub const REFINE_STEPS: &str = "core.refine_steps";
    /// End-to-end facade query latency, microseconds.
    pub const QUERY_LATENCY_US: &str = "core.query_latency_us";
    /// Sampled: binary splits performed across shards.
    pub const INDEX_SPLITS: &str = "core.index.splits";
    /// Sampled: tree nodes across shards.
    pub const INDEX_NODES: &str = "core.index.nodes";
    /// Sampled: approximate index bytes across shards.
    pub const INDEX_BYTES: &str = "core.index.bytes";
    /// Sampled: cumulative S₁ distance evaluations across shards.
    pub const INDEX_S1_EVALS: &str = "core.index.s1_evals";
    /// Sampled: crack regions appended to the shared crack log.
    pub const CRACKS_PUBLISHED: &str = "core.cracklog.published";
    /// Sampled: crack-log entries replayed onto lagging shards.
    pub const CRACKS_REPLAYED: &str = "core.cracklog.replayed";
    /// Sampled: kernel pool jobs that ran on the exact serial path.
    pub const POOL_SERIAL_RUNS: &str = "core.pool.serial_runs";
    /// Sampled: kernel pool jobs dispatched across worker threads.
    pub const POOL_PARALLEL_RUNS: &str = "core.pool.parallel_runs";
    /// Sampled: chunks handed to parallel claim loops.
    pub const POOL_CHUNKS_CLAIMED: &str = "core.pool.chunks_claimed";
    /// Result-cache hits served whole at the pinned epochs.
    pub const CACHE_HIT: &str = "core.cache.hit";
    /// Result-cache probes that found nothing usable (includes probes
    /// that only yielded warm-start seeds).
    pub const CACHE_MISS: &str = "core.cache.miss";
    /// Stale result-cache entries removed on touch (epoch moved on).
    pub const CACHE_INVALIDATE: &str = "core.cache.invalidate";
    /// Hits served by cutting a larger cached k down to the requested
    /// one (superset containment).
    pub const CACHE_PREFIX_HIT: &str = "core.cache.prefix_hit";
    /// WAL records appended + flushed on the dynamic write path.
    pub const WAL_APPENDED: &str = "core.wal.appended";
    /// WAL records replayed into the engine at recovery.
    pub const WAL_REPLAYED: &str = "core.wal.replayed";
    /// Tokened writes answered from the idempotency map without being
    /// re-applied (retries after an ambiguous failure).
    pub const WAL_DEDUP_HITS: &str = "core.wal.dedup_hits";
    /// Sampled at recovery: torn-tail bytes truncated from the log.
    pub const WAL_TRUNCATED_BYTES: &str = "core.wal.truncated_bytes";
}

/// The registry plus pre-resolved handles a facade records into.
#[derive(Debug)]
pub struct VkgMetrics {
    registry: Registry,
    clock: Clock,
    queries: Counter,
    query_errors: Counter,
    refine_steps: Counter,
    latency: HistogramCell,
    index_splits: Gauge,
    index_nodes: Gauge,
    index_bytes: Gauge,
    index_s1_evals: Gauge,
    cracks_published: Gauge,
    cracks_replayed: Gauge,
    pool_serial: Gauge,
    pool_parallel: Gauge,
    pool_chunks: Gauge,
    cache_hit: Counter,
    cache_miss: Counter,
    cache_invalidate: Counter,
    cache_prefix_hit: Counter,
    wal_appended: Counter,
    wal_replayed: Counter,
    wal_dedup_hits: Counter,
    wal_truncated_bytes: Gauge,
}

impl VkgMetrics {
    /// Resolves every handle against `registry`. With a
    /// [`Registry::noop`] registry every handle is a no-op too — the
    /// configuration the overhead microbench compares against.
    pub fn new(registry: Registry, clock: Clock) -> Self {
        Self {
            queries: registry.counter(names::QUERIES),
            query_errors: registry.counter(names::QUERY_ERRORS),
            refine_steps: registry.counter(names::REFINE_STEPS),
            latency: registry.histogram(names::QUERY_LATENCY_US),
            index_splits: registry.gauge(names::INDEX_SPLITS),
            index_nodes: registry.gauge(names::INDEX_NODES),
            index_bytes: registry.gauge(names::INDEX_BYTES),
            index_s1_evals: registry.gauge(names::INDEX_S1_EVALS),
            cracks_published: registry.gauge(names::CRACKS_PUBLISHED),
            cracks_replayed: registry.gauge(names::CRACKS_REPLAYED),
            pool_serial: registry.gauge(names::POOL_SERIAL_RUNS),
            pool_parallel: registry.gauge(names::POOL_PARALLEL_RUNS),
            pool_chunks: registry.gauge(names::POOL_CHUNKS_CLAIMED),
            cache_hit: registry.counter(names::CACHE_HIT),
            cache_miss: registry.counter(names::CACHE_MISS),
            cache_invalidate: registry.counter(names::CACHE_INVALIDATE),
            cache_prefix_hit: registry.counter(names::CACHE_PREFIX_HIT),
            wal_appended: registry.counter(names::WAL_APPENDED),
            wal_replayed: registry.counter(names::WAL_REPLAYED),
            wal_dedup_hits: registry.counter(names::WAL_DEDUP_HITS),
            wal_truncated_bytes: registry.gauge(names::WAL_TRUNCATED_BYTES),
            registry,
            clock,
        }
    }

    /// The registry behind the handles (export surfaces snapshot it).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The clock query latencies are measured on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Records one served query: latency since `start`, the refine
    /// steps it performed, and whether it returned an error.
    pub fn record_query(&self, start: Tick, refine_steps: u64, ok: bool) {
        self.record_query_timed(self.clock.since(start), refine_steps, ok);
    }

    /// Records one served query whose latency was measured externally —
    /// the server path executes reads inside shard closures and times
    /// them on its own clock, so ticks from that clock cannot be
    /// compared against this one.
    pub fn record_query_timed(&self, latency: std::time::Duration, refine_steps: u64, ok: bool) {
        self.queries.incr();
        if !ok {
            self.query_errors.incr();
        }
        self.refine_steps.add(refine_steps);
        self.latency.record(latency);
    }

    /// Records one whole-result cache hit (served at the pinned epochs).
    pub fn record_cache_hit(&self) {
        self.cache_hit.incr();
    }

    /// Records one cache probe that had to recompute (no entry, or only
    /// warm-start seeds).
    pub fn record_cache_miss(&self) {
        self.cache_miss.incr();
    }

    /// Records the lazy removal of one stale cache entry.
    pub fn record_cache_invalidate(&self) {
        self.cache_invalidate.incr();
    }

    /// Records one hit served by prefix-cutting a larger cached k.
    pub fn record_cache_prefix_hit(&self) {
        self.cache_prefix_hit.incr();
    }

    /// Records one WAL record appended + flushed before its ack.
    pub fn record_wal_append(&self) {
        self.wal_appended.incr();
    }

    /// Records WAL records replayed at recovery, and the torn-tail
    /// bytes the recovery truncated.
    pub fn record_wal_recovery(&self, replayed: u64, truncated_bytes: u64) {
        self.wal_replayed.add(replayed);
        self.wal_truncated_bytes.set(truncated_bytes);
    }

    /// Records one tokened retry answered from the idempotency map.
    pub fn record_wal_dedup_hit(&self) {
        self.wal_dedup_hits.incr();
    }

    /// Samples the engine-side counters (index statistics, crack-log
    /// traffic, pool dispatch) into gauges and returns a full snapshot.
    /// Takes each shard's read lock briefly (a consistent-per-shard
    /// sum, like [`ShardedEngine::merged_stats`]).
    pub fn snapshot_with_engine(&self, engine: &ShardedEngine) -> MetricsSnapshot {
        if !self.registry.is_noop() {
            let stats = engine.merged_stats();
            self.index_splits.set(stats.counters.splits_performed);
            self.index_nodes.set(stats.nodes as u64);
            self.index_bytes.set(stats.bytes as u64);
            self.index_s1_evals.set(stats.counters.s1_distance_evals);
            self.cracks_published.set(engine.cracks_published());
            self.cracks_replayed.set(engine.cracks_replayed());
            let pool = engine.pool_stats();
            self.pool_serial.set(pool.serial_runs());
            self.pool_parallel.set(pool.parallel_runs());
            self.pool_chunks.set(pool.chunks_claimed());
        }
        self.registry.snapshot()
    }
}
