//! Model-checked admission-control scenarios over the real
//! [`JobQueue`]/[`Counters`] types the serving loop uses. The seeded
//! scheduler explores producer/consumer interleavings and checks the
//! drain invariant — every admitted job is answered exactly once — plus
//! freedom from data races, lock inversions, and lost wakeups.
//!
//! Run with `cargo test -p vkg-server --features model --test model`.

#![cfg(feature = "model")]

use std::sync::Arc;

use vkg_server::queue::{Admission, Counters, JobQueue};
use vkg_sync::{model, thread, AtomicBool, Mutex, Ordering};

const SEEDS: u64 = 64;

/// Producers race consumers and a closer: after the drain, the counter
/// invariant `admitted == answered` holds and every admitted item was
/// popped exactly once (no loss, no duplication).
#[test]
fn drain_invariant_admitted_equals_answered() {
    model::sweep(SEEDS, || {
        let queue = Arc::new(JobQueue::new(2));
        let counters = Arc::new(Counters::default());
        let popped = Arc::new(Mutex::with_name(Vec::new(), "popped-items"));

        let producers: Vec<_> = (0..2)
            .map(|p| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                thread::spawn(move || {
                    for i in 0..2_u64 {
                        match queue.try_push(p * 10 + i) {
                            Admission::Admitted => counters.record_admitted(),
                            Admission::QueueFull => counters.record_shed(),
                            Admission::Closed => counters.record_drained(),
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let popped = Arc::clone(&popped);
                thread::spawn(move || {
                    while let Some(item) = queue.pop() {
                        counters.record_answered();
                        popped.lock().push(item);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        // All producers are done: closing now lets the consumers drain
        // the backlog and exit — exactly the accept-loop teardown order.
        queue.close();
        for c in consumers {
            c.join().expect("consumer");
        }

        let s = counters.snapshot();
        assert_eq!(
            s.admitted, s.answered,
            "drain invariant: admitted ({}) != answered ({})",
            s.admitted, s.answered
        );
        assert_eq!(s.admitted + s.shed + s.drained, 4, "every push accounted");
        let mut items = popped.lock().clone();
        items.sort_unstable();
        items.dedup();
        assert_eq!(
            items.len() as u64,
            s.answered,
            "each admitted item popped exactly once"
        );
    })
    .unwrap_or_else(|v| panic!("drain-invariant model failed: {v}"));
}

/// A consumer that parks before any producer runs must still be woken:
/// the queue's notify discipline admits no lost wakeup in any schedule.
#[test]
fn parked_consumer_always_woken() {
    model::sweep(SEEDS, || {
        let queue = Arc::new(JobQueue::new(1));
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(item) = queue.pop() {
                    seen.push(item);
                }
                seen
            })
        };
        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                // Capacity 1: the second push may shed while the first
                // sits unpopped — both outcomes are legal; losing the
                // admitted item is not.
                let first = queue.try_push(7);
                assert_eq!(first, Admission::Admitted, "empty queue admits");
                let _ = queue.try_push(8);
                queue.close();
            })
        };
        producer.join().expect("producer");
        let seen = consumer.join().expect("consumer");
        assert!(!seen.is_empty(), "the admitted item must be consumed");
        assert_eq!(seen[0], 7);
    })
    .unwrap_or_else(|v| panic!("parked-consumer model failed: {v}"));
}

/// The batching consumer loop: producers race consumers that drain via
/// [`JobQueue::pop_batch`] (the same-shard group path of the serving
/// loop) and a closer. In every explored interleaving the drain
/// invariant holds — each admitted item lands in exactly one batch,
/// batches respect the size cap, and none is empty or lost.
#[test]
fn batch_drain_admitted_equals_answered() {
    model::sweep(SEEDS, || {
        let queue = Arc::new(JobQueue::new(4));
        let counters = Arc::new(Counters::default());
        let popped = Arc::new(Mutex::with_name(Vec::new(), "popped-items"));

        let producers: Vec<_> = (0..2)
            .map(|p| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                thread::spawn(move || {
                    for i in 0..3_u64 {
                        match queue.try_push(p * 10 + i) {
                            Admission::Admitted => counters.record_admitted(),
                            Admission::QueueFull => counters.record_shed(),
                            Admission::Closed => counters.record_drained(),
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let popped = Arc::clone(&popped);
                thread::spawn(move || {
                    while let Some(batch) = queue.pop_batch(3) {
                        assert!(!batch.is_empty(), "pop_batch never returns empty");
                        assert!(batch.len() <= 3, "batches respect the cap");
                        for item in batch {
                            counters.record_answered();
                            popped.lock().push(item);
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        queue.close();
        for c in consumers {
            c.join().expect("consumer");
        }

        let s = counters.snapshot();
        assert_eq!(
            s.admitted, s.answered,
            "batch-drain invariant: admitted ({}) != answered ({})",
            s.admitted, s.answered
        );
        assert_eq!(s.admitted + s.shed + s.drained, 6, "every push accounted");
        let mut items = popped.lock().clone();
        items.sort_unstable();
        items.dedup();
        assert_eq!(
            items.len() as u64,
            s.answered,
            "each admitted item landed in exactly one batch"
        );
    })
    .unwrap_or_else(|v| panic!("batch-drain model failed: {v}"));
}

/// The drain flag + closed queue interplay of the serving loop: once a
/// connection observes `draining`, refusals are counted as drained, and
/// no admission slips through after the close — in any interleaving.
#[test]
fn draining_refusals_never_admit() {
    model::sweep(SEEDS, || {
        let queue = Arc::new(JobQueue::new(4));
        let counters = Arc::new(Counters::default());
        let draining = Arc::new(AtomicBool::new(false));

        let conn = {
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            let draining = Arc::clone(&draining);
            thread::spawn(move || {
                for i in 0..3_u64 {
                    if draining.load(Ordering::SeqCst) {
                        counters.record_drained();
                        continue;
                    }
                    match queue.try_push(i) {
                        Admission::Admitted => counters.record_admitted(),
                        Admission::QueueFull => counters.record_shed(),
                        Admission::Closed => counters.record_drained(),
                    }
                }
            })
        };
        let drainer = {
            let queue = Arc::clone(&queue);
            let draining = Arc::clone(&draining);
            thread::spawn(move || {
                draining.store(true, Ordering::SeqCst);
                queue.close();
            })
        };
        conn.join().expect("connection");
        drainer.join().expect("drainer");

        // Drain the backlog the way workers do.
        let mut answered = 0;
        while let Some(_item) = queue.pop() {
            counters.record_answered();
            answered += 1;
        }
        let s = counters.snapshot();
        assert_eq!(s.admitted, s.answered, "drain invariant after close");
        assert_eq!(s.admitted, answered);
        assert_eq!(s.admitted + s.shed + s.drained, 3, "every request counted");
    })
    .unwrap_or_else(|v| panic!("draining model failed: {v}"));
}
