//! Shard parity: the relation-sharded engine is an implementation
//! detail, never an answer change.
//!
//! Algorithm 3 seeds its search from the contour element containing the
//! query, so the crack history of a tree shapes the answers it gives.
//! The sharded engine replicates every crack through a shared log (see
//! `core/engine/shard.rs`), which makes a strong promise testable here:
//! for ANY shard count, replaying the same query workload yields the
//! same top-k id sequences and bit-identical aggregate estimates as the
//! unsharded engine. Proptest drives seeded random workloads mixing
//! top-k queries, single-relation aggregates, and cross-shard
//! `aggregate_multi` fan-outs over shard counts {1, 2, 7}.

use std::sync::OnceLock;

use proptest::prelude::*;
use vkg::prelude::*;

/// Shard counts under test: unsharded reference, an even split, and a
/// count coprime to the relation count (so hashing scatters unevenly).
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

/// Dataset + embeddings are trained once; every proptest case assembles
/// fresh engines from clones so crack state never leaks between cases.
fn trained() -> &'static (Dataset, EmbeddingStore) {
    static TRAINED: OnceLock<(Dataset, EmbeddingStore)> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let ds = movie_like(&MovieConfig::tiny());
        let (embeddings, _) = TransE::new(TransEConfig {
            dim: 16,
            epochs: 6,
            ..TransEConfig::default()
        })
        .train(&ds.graph);
        (ds, embeddings)
    })
}

fn engine(shards: usize) -> VirtualKnowledgeGraph {
    let (ds, embeddings) = trained();
    VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        embeddings.clone(),
        VkgConfig {
            shards,
            epsilon: 0.5,
            ..VkgConfig::default()
        },
    )
}

/// One step of a replayable workload.
#[derive(Debug, Clone)]
enum Op {
    TopK {
        entity: u32,
        relation: u32,
        direction: Direction,
        k: usize,
    },
    Aggregate {
        entity: u32,
        relation: u32,
        direction: Direction,
    },
    /// Cross-shard fan-out over every relation in the dataset.
    AggregateMulti { entity: u32 },
}

/// The observable outcome of one op, normalized for comparison. Errors
/// compare by message: an invalid query must fail identically at every
/// shard count.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Ids(Vec<u32>),
    Estimate(Vec<u64>),
    Err(String),
}

fn apply(vkg: &VirtualKnowledgeGraph, op: &Op, relations: u32) -> Outcome {
    match *op {
        Op::TopK {
            entity,
            relation,
            direction,
            k,
        } => match vkg.top_k(
            EntityId(entity),
            RelationId(relation % relations),
            direction,
            k,
        ) {
            Ok(r) => Outcome::Ids(r.predictions.iter().map(|p| p.id).collect()),
            Err(e) => Outcome::Err(e.to_string()),
        },
        Op::Aggregate {
            entity,
            relation,
            direction,
        } => {
            let spec = AggregateSpec::count(0.05);
            match vkg.aggregate(
                EntityId(entity),
                RelationId(relation % relations),
                direction,
                &spec,
            ) {
                Ok(r) => Outcome::Estimate(vec![r.estimate.to_bits()]),
                Err(e) => Outcome::Err(e.to_string()),
            }
        }
        Op::AggregateMulti { entity } => {
            let all: Vec<RelationId> = (0..relations).map(RelationId).collect();
            let spec = AggregateSpec::count(0.05);
            match vkg.aggregate_multi(EntityId(entity), &all, Direction::Tails, &spec) {
                Ok(r) => Outcome::Estimate(
                    std::iter::once(r.combined.estimate.to_bits())
                        .chain(r.parts.iter().map(|p| p.result.estimate.to_bits()))
                        .collect(),
                ),
                Err(e) => Outcome::Err(e.to_string()),
            }
        }
    }
}

fn direction_strategy() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::Tails), Just(Direction::Heads)]
}

fn op_strategy(entities: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..entities, 0u32..8, direction_strategy(), 1usize..8).prop_map(
            |(entity, relation, direction, k)| Op::TopK { entity, relation, direction, k }
        ),
        2 => (0..entities, 0u32..8, direction_strategy()).prop_map(
            |(entity, relation, direction)| Op::Aggregate { entity, relation, direction }
        ),
        1 => (0..entities).prop_map(|entity| Op::AggregateMulti { entity }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every shard count replays the workload to the exact same
    /// outcome sequence as the unsharded reference engine.
    #[test]
    fn any_shard_count_answers_identically(
        ops in prop::collection::vec(op_strategy(trained().0.graph.num_entities() as u32), 1..24)
    ) {
        let relations = trained().0.graph.num_relations() as u32;
        let reference: Vec<Outcome> = {
            let vkg = engine(SHARD_COUNTS[0]);
            ops.iter().map(|op| apply(&vkg, op, relations)).collect()
        };
        for &shards in &SHARD_COUNTS[1..] {
            let vkg = engine(shards);
            for (i, op) in ops.iter().enumerate() {
                let got = apply(&vkg, op, relations);
                prop_assert_eq!(
                    &got,
                    &reference[i],
                    "op {} ({:?}) diverged at {} shards",
                    i,
                    op,
                    shards
                );
            }
            vkg.index().check_invariants();
        }
    }
}
