//! BESTBINARYSPLIT: enumerate and rank candidate binary splits.
//!
//! Given a partition in its `S` sort orders and the per-child subtree size
//! `m`, the candidate splits are prefixes of each sort order at the
//! equally spaced positions `m, 2m, …` (COMPUTEBOUNDINGBOXES of
//! Algorithm 1). Each candidate is scored with the two-component cost of
//! §IV-B1: `c_Q` from the Lemma 3 page bound of the two sides, `c_O` from
//! the overlap penalty. Candidates are returned best-first, so the greedy
//! algorithm takes index 0 and TOP-KSPLITSINDEXBUILD takes the first `k`.

use vkg_sync::pool::Pool;
use vkg_sync::Mutex;

use crate::geometry::{Mbr, PointSet};

use super::cost::{div_ceil, overlap_penalty, SplitCost};
use super::sorted::SortOrders;

/// Below this many points candidate enumeration stays serial even on a
/// wide pool — the per-axis sweeps finish faster than a fan-out.
const POOLED_MIN: usize = 4096;

/// One ranked candidate binary split.
#[derive(Debug, Clone)]
pub struct SplitCandidate {
    /// Sort order (axis) the prefix is taken from (`s*`).
    pub axis: usize,
    /// Number of points in the low side (`i* · m`).
    pub count: usize,
    /// Composite cost of taking this split.
    pub cost: SplitCost,
    /// MBR of the low side.
    pub low_mbr: Mbr,
    /// MBR of the high side.
    pub high_mbr: Mbr,
    /// Points of the low side inside the query region (0 when offline).
    pub low_in_q: usize,
    /// Points of the high side inside the query region (0 when offline).
    pub high_in_q: usize,
}

/// Parameters shared by every candidate evaluation at one node.
#[derive(Debug, Clone, Copy)]
pub struct SplitContext<'a> {
    /// The point set the partitions index into.
    pub points: &'a PointSet,
    /// Query region (None = offline bulk load: overlap cost only).
    pub query: Option<&'a Mbr>,
    /// Leaf capacity `N` (for the `c_Q` page bound).
    pub leaf_capacity: usize,
    /// Overlap weight `βʰ` at this node's height.
    pub beta_pow_h: f64,
    /// Pool the candidate sweeps and partition splits fan out over
    /// (width 1 = the exact serial code paths).
    pub pool: &'a Pool,
}

/// Enumerates all candidate splits of `orders` at multiples of `m` and
/// returns the best `k`, cheapest first.
///
/// Returns an empty vector when no proper split position exists
/// (`orders.len() ≤ m`).
pub fn best_splits(
    ctx: &SplitContext<'_>,
    orders: &SortOrders,
    m: usize,
    k: usize,
) -> Vec<SplitCandidate> {
    let len = orders.len();
    debug_assert!(m >= 1);
    if len <= m || k == 0 {
        return Vec::new();
    }
    let positions: Vec<usize> = (1..).map(|i| i * m).take_while(|&p| p < len).collect();

    let mut candidates: Vec<SplitCandidate> = Vec::new();
    let num_orders = orders.num_orders();
    if ctx.pool.is_serial() || len < POOLED_MIN || num_orders < 2 {
        for axis in 0..num_orders {
            axis_candidates(ctx, orders, axis, &positions, &mut candidates);
        }
    } else {
        // One sweep per axis on the pool; per-axis results land in
        // index-addressed slots and merge in axis order, so the
        // candidate list matches the serial enumeration exactly.
        let slots: Vec<Mutex<Vec<SplitCandidate>>> =
            (0..num_orders).map(|_| Mutex::new(Vec::new())).collect();
        ctx.pool.run(num_orders, |axis| {
            let mut local = Vec::new();
            axis_candidates(ctx, orders, axis, &positions, &mut local);
            *slots[axis].lock() = local;
        });
        for slot in slots {
            candidates.extend(slot.into_inner());
        }
    }
    candidates.sort_by(|a, b| {
        a.cost
            .cmp(&b.cost)
            .then(a.axis.cmp(&b.axis))
            .then(a.count.cmp(&b.count))
    });
    candidates.truncate(k);
    candidates
}

/// Enumerates the candidates of one sort order (axis): the two
/// prefix/suffix sweeps of COMPUTEBOUNDINGBOXES sampled at `positions`.
fn axis_candidates(
    ctx: &SplitContext<'_>,
    orders: &SortOrders,
    axis: usize,
    positions: &[usize],
    candidates: &mut Vec<SplitCandidate>,
) {
    {
        let ids = orders.ids(axis);
        // One forward sweep for prefix MBRs and in-Q counts, one backward
        // sweep for suffix MBRs and counts, sampling at the positions.
        let mut prefix_mbrs = Vec::with_capacity(positions.len());
        let mut prefix_in_q = Vec::with_capacity(positions.len());
        {
            let mut mbr = Mbr::empty(ctx.points.dim());
            let mut in_q = 0usize;
            let mut next = 0usize;
            for (i, &id) in ids.iter().enumerate() {
                mbr.include_point(ctx.points.point(id));
                if let Some(q) = ctx.query {
                    if ctx.points.in_region(id, q) {
                        in_q += 1;
                    }
                }
                if next < positions.len() && i + 1 == positions[next] {
                    prefix_mbrs.push(mbr);
                    prefix_in_q.push(in_q);
                    next += 1;
                }
            }
        }
        let mut suffix_mbrs = vec![Mbr::empty(ctx.points.dim()); positions.len()];
        let mut suffix_in_q = vec![0usize; positions.len()];
        {
            let mut mbr = Mbr::empty(ctx.points.dim());
            let mut in_q = 0usize;
            let mut next = positions.len();
            for (i, &id) in ids.iter().enumerate().rev() {
                // Before absorbing position i, record the suffix starting
                // at i if it is a split boundary.
                if next > 0 && i == positions[next - 1] {
                    next -= 1;
                    suffix_mbrs[next] = mbr;
                    suffix_in_q[next] = in_q;
                }
                mbr.include_point(ctx.points.point(id));
                if let Some(q) = ctx.query {
                    if ctx.points.in_region(id, q) {
                        in_q += 1;
                    }
                }
            }
        }
        // The backward sweep records the suffix *excluding* position i, but
        // boundaries are "first `p` vs rest", so redo the boundary logic:
        // suffix at boundary p covers ids[p..]; in the loop above we stored
        // the MBR of ids[i+1..] when visiting i = p — that misses ids[p].
        // Fix by absorbing after the check instead: simplest correct form
        // is recomputed below when the stored MBR is empty for small
        // suffixes; instead of patching, recompute directly when needed.
        for (pi, &p) in positions.iter().enumerate() {
            // Guard against the off-by-one noted above: suffix must cover
            // exactly len − p points; if the sweep missed one (stored MBR
            // excluded ids[p]), extend it.
            let mut smbr = suffix_mbrs[pi];
            let mut s_in_q = suffix_in_q[pi];
            smbr.include_point(ctx.points.point(ids[p]));
            if let Some(q) = ctx.query {
                if ctx.points.in_region(ids[p], q) {
                    s_in_q += 1;
                }
            }
            let low_mbr = prefix_mbrs[pi];
            let high_mbr = smbr;
            let low_in_q = prefix_in_q[pi];
            let high_in_q = s_in_q;

            let cq = if ctx.query.is_some() {
                div_ceil(low_in_q, ctx.leaf_capacity) + div_ceil(high_in_q, ctx.leaf_capacity)
            } else {
                0
            };
            let co = overlap_penalty(
                1.0, // beta folded into beta_pow_h below
                0,
                low_mbr.overlap_volume(&high_mbr),
                low_mbr.volume(),
                high_mbr.volume(),
            ) * ctx.beta_pow_h;
            candidates.push(SplitCandidate {
                axis,
                count: p,
                cost: SplitCost::new(cq, co),
                low_mbr,
                high_mbr,
                low_in_q,
                high_in_q,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters along x.
    fn clustered() -> (PointSet, SortOrders) {
        let mut coords = Vec::new();
        for i in 0..8 {
            coords.extend_from_slice(&[i as f64 * 0.1, (i % 3) as f64]);
        }
        for i in 0..8 {
            coords.extend_from_slice(&[100.0 + i as f64 * 0.1, (i % 3) as f64]);
        }
        let ps = PointSet::from_rows(2, coords);
        let ids = ps.all_ids();
        let so = SortOrders::build(&ps, ids);
        (ps, so)
    }

    static SERIAL: Pool = Pool::serial();

    fn offline_ctx(ps: &PointSet) -> SplitContext<'_> {
        SplitContext {
            points: ps,
            query: None,
            leaf_capacity: 4,
            beta_pow_h: 1.0,
            pool: &SERIAL,
        }
    }

    #[test]
    fn finds_the_natural_gap() {
        let (ps, so) = clustered();
        let ctx = offline_ctx(&ps);
        let best = best_splits(&ctx, &so, 8, 1);
        assert_eq!(best.len(), 1);
        let c = &best[0];
        assert_eq!(c.axis, 0, "should split on x");
        assert_eq!(c.count, 8, "should split between the clusters");
        assert_eq!(c.cost.co, 0.0, "disjoint halves have no overlap cost");
        assert!(!c.low_mbr.intersects(&c.high_mbr) || c.low_mbr.overlap_volume(&c.high_mbr) == 0.0);
    }

    #[test]
    fn candidate_counts_respect_k() {
        let (ps, so) = clustered();
        let ctx = offline_ctx(&ps);
        // m = 4 → positions 4, 8, 12 on each of 2 axes = 6 candidates.
        assert_eq!(best_splits(&ctx, &so, 4, 100).len(), 6);
        assert_eq!(best_splits(&ctx, &so, 4, 2).len(), 2);
        assert!(best_splits(&ctx, &so, 16, 3).is_empty(), "no proper split");
        assert!(best_splits(&ctx, &so, 4, 0).is_empty());
    }

    #[test]
    fn candidates_are_sorted_by_cost() {
        let (ps, so) = clustered();
        let ctx = offline_ctx(&ps);
        let all = best_splits(&ctx, &so, 4, 100);
        for w in all.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }

    #[test]
    fn sides_partition_counts() {
        let (ps, so) = clustered();
        let ctx = offline_ctx(&ps);
        for c in best_splits(&ctx, &so, 4, 100) {
            assert!(c.count == 4 || c.count == 8 || c.count == 12);
            // MBRs must jointly cover the partition MBR.
            let mut joint = c.low_mbr;
            joint.include_mbr(&c.high_mbr);
            assert_eq!(joint, so.mbr(&ps));
        }
    }

    #[test]
    fn query_aware_cost_prefers_keeping_q_together() {
        // 12 points on a line; query region covers points 4..8 (indices).
        let coords: Vec<f64> = (0..12).flat_map(|i| [i as f64, 0.0]).collect();
        let ps = PointSet::from_rows(2, coords);
        let so = SortOrders::build(&ps, ps.all_ids());
        let q = Mbr::of_ball(&[5.5, 0.0], 1.6); // covers x ∈ [3.9, 7.1] → ids 4..=7
        let ctx = SplitContext {
            points: &ps,
            query: Some(&q),
            leaf_capacity: 4,
            beta_pow_h: 1.0,
            pool: &SERIAL,
        };
        // m = 4 → positions 4 and 8 on axis 0.
        let best = best_splits(&ctx, &so, 4, 10);
        // Split at 4: low has 0 in Q... ids 4..=7 are in Q; low = ids 0..4
        // (0 in Q), high = 4..12 (4 in Q) → cq = 0 + 1 = 1.
        // Split at 8: low = 0..8 (4 in Q), high = 8..12 (0 in Q) → cq = 1.
        // Both keep Q's points in one side → cq = 1.
        let axis0: Vec<_> = best.iter().filter(|c| c.axis == 0).collect();
        assert!(axis0.iter().all(|c| c.cost.cq == 1));
        // In-Q bookkeeping is consistent.
        for c in axis0 {
            assert_eq!(c.low_in_q + c.high_in_q, 4);
        }
    }

    #[test]
    fn query_counts_split_across_boundary() {
        // Query covering ids 2..=5 with split at 4 separates 2 and 2.
        let coords: Vec<f64> = (0..8).flat_map(|i| [i as f64, 0.0]).collect();
        let ps = PointSet::from_rows(2, coords);
        let so = SortOrders::build(&ps, ps.all_ids());
        let q = Mbr::of_ball(&[3.5, 0.0], 1.6); // x ∈ [1.9, 5.1] → ids 2..=5
        let ctx = SplitContext {
            points: &ps,
            query: Some(&q),
            leaf_capacity: 2,
            beta_pow_h: 1.0,
            pool: &SERIAL,
        };
        let cands = best_splits(&ctx, &so, 4, 10);
        let at4 = cands
            .iter()
            .find(|c| c.axis == 0 && c.count == 4)
            .expect("position 4 must be enumerated");
        assert_eq!(at4.low_in_q, 2);
        assert_eq!(at4.high_in_q, 2);
        assert_eq!(at4.cost.cq, 2, "⌈2/2⌉ + ⌈2/2⌉");
    }

    #[test]
    fn pooled_candidates_match_serial() {
        // Enough points past POOLED_MIN to exercise the fan-out.
        let n = POOLED_MIN + 256;
        let coords: Vec<f64> = (0..n * 2)
            .map(|i| ((i as f64) * 0.377).sin() * 20.0)
            .collect();
        let ps = PointSet::from_rows(2, coords);
        let so = SortOrders::build(&ps, ps.all_ids());
        let m = n / 8;
        let serial = best_splits(&offline_ctx(&ps), &so, m, 100);
        for width in [2, 4] {
            let pool = Pool::new(width);
            let ctx = SplitContext {
                pool: &pool,
                ..offline_ctx(&ps)
            };
            let pooled = best_splits(&ctx, &so, m, 100);
            assert_eq!(pooled.len(), serial.len());
            for (a, b) in serial.iter().zip(&pooled) {
                assert_eq!(a.axis, b.axis, "width {width}");
                assert_eq!(a.count, b.count, "width {width}");
                assert_eq!(a.cost, b.cost, "width {width}");
                assert_eq!(a.low_mbr, b.low_mbr);
                assert_eq!(a.high_mbr, b.high_mbr);
            }
        }
    }
}
