//! Epoch-keyed semantic result cache for the facade's read path.
//!
//! Repeated queries on a skewed stream (the serving layer's reality)
//! recompute identical answers: the same ⟨entity, relation, direction,
//! k⟩ arrives again and again while nothing was published in between.
//! This cache memoizes complete [`TopKResult`]s and [`AggregateResult`]s
//! keyed by the query's semantic identity, and validates every hit
//! against the **exact** epoch pair the engine pins for the serving
//! shard ([`crate::vkg::ShardPin`]): a hit is served only when both the
//! global snapshot epoch and the owning shard's epoch equal the values
//! the entry was computed at. Publication bumps those counters under
//! every shard lock, so a matching pair proves the snapshot — graph,
//! embeddings, attributes, and the shard's point set — is byte-identical
//! to fill time, which makes a hit *provably* identical to
//! recomputation. Stale entries are invalidated lazily on touch; no
//! writer ever scans the cache.
//!
//! Two deliberate asymmetries keep hits honest:
//!
//! * **Cracks replay on hits.** Queries reshape the index (Algorithm 3
//!   line 9 cracks for the final ball) without bumping any epoch —
//!   cracking is answer-neutral, so entries stay valid across it. But a
//!   served hit that skipped the engine would also skip the crack, and
//!   a cached deployment's tree (and its crack-log traffic to sibling
//!   shards) would drift from an uncached one's. Every cached value
//!   therefore carries the crack regions its computation performed, and
//!   the facade replays them (idempotently) on each hit.
//! * **Containment answers smaller k.** A cached top-k′ answers any
//!   k ≤ k′ by prefix — the top-k of a fixed candidate set is a prefix
//!   of its top-k′ — with probabilities and the Theorem 2 guarantee
//!   recomputed from the prefix distances (both are pure functions of
//!   them). For k > k′ the entry still helps: its (id, distance) pairs
//!   warm-start the shrinking ball
//!   ([`crate::query::topk::find_top_k_warm`]).
//!
//! Locking: entries live in `stripes` (hash-partitioned mutexes, lock
//! class `vkg.cache`). A stripe lock is only taken while the caller
//! holds the serving shard's lock, and **nothing** is acquired while a
//! stripe lock is held — `vkg.cache` sits after the shard classes and
//! before `vkg.published` in the lock order, and is never held across
//! another acquisition.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use vkg_sync::Mutex;

use crate::query::aggregate::{AggregateKind, AggregateResult, AggregateSpec};
use crate::query::guarantees::topk_guarantee;
use crate::query::probability::inverse_distance_probabilities;
use crate::query::topk::{Prediction, TopKResult};
use crate::snapshot::Direction;

/// Semantic identity of a cacheable query.
///
/// The query *point* is deliberately absent: at a pinned epoch it is a
/// pure function of ⟨entity, relation, direction⟩ (embeddings and the JL
/// transform are part of the epoch-validated snapshot), so the id triple
/// is a lossless — and collision-free — stand-in for the quantized
/// point. `k` is also absent: it lives in the entry, which is what lets
/// one entry answer every k ≤ k′ (and seed every k > k′). Refinement
/// parameters (ε, α) are fixed per facade by [`crate::VkgConfig`] and
/// need no key bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// A top-k entity query (plain or wire-filtered).
    TopK {
        /// Dense query-entity id.
        entity: u32,
        /// Relation id.
        relation: u32,
        /// Whether the query runs tail-ward (`h + r`).
        tails: bool,
        /// Deterministic fingerprint of the candidate filter (the wire
        /// encoding of the filter expression); `None` for unfiltered
        /// queries. Closure filters have no fingerprint and bypass the
        /// cache entirely.
        filter: Option<Vec<u8>>,
    },
    /// A full-accuracy aggregate query (sampled aggregates bypass the
    /// cache: their access order depends on tree shape, so their answers
    /// are not reproducible across differently-cracked trees).
    Aggregate {
        /// Dense query-entity id.
        entity: u32,
        /// Relation id.
        relation: u32,
        /// Whether the query runs tail-ward (`h + r`).
        tails: bool,
        /// The aggregate kind, as a stable discriminant.
        kind: u8,
        /// Attribute name (`None` for COUNT).
        attribute: Option<String>,
        /// The probability threshold p_τ, as bits (total order ≡ value
        /// equality for the validated range (0, 1]).
        p_tau_bits: u64,
    },
}

impl CacheKey {
    /// Key for a top-k query; `filter` is the deterministic wire
    /// fingerprint, `None` when unfiltered.
    pub fn top_k(
        entity: u32,
        relation: u32,
        direction: Direction,
        filter: Option<Vec<u8>>,
    ) -> Self {
        CacheKey::TopK {
            entity,
            relation,
            tails: matches!(direction, Direction::Tails),
            filter,
        }
    }

    /// Key for an aggregate query. Callers must not build keys for
    /// sampled specs (`sample_size.is_some()`) — those are uncacheable.
    pub fn aggregate(
        entity: u32,
        relation: u32,
        direction: Direction,
        spec: &AggregateSpec,
    ) -> Self {
        debug_assert!(
            spec.sample_size.is_none(),
            "sampled aggregates are not cacheable"
        );
        let kind = match spec.kind {
            AggregateKind::Count => 0u8,
            AggregateKind::Sum => 1,
            AggregateKind::Avg => 2,
            AggregateKind::Max => 3,
            AggregateKind::Min => 4,
        };
        CacheKey::Aggregate {
            entity,
            relation,
            tails: matches!(direction, Direction::Tails),
            kind,
            attribute: spec.attribute.clone(),
            p_tau_bits: spec.p_tau.to_bits(),
        }
    }
}

/// Outcome of a top-k probe.
// Hit dwarfs Miss/Stale by design; boxing it would put an allocation on
// the hit path this cache exists to make cheap.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum TopKLookup {
    /// A complete answer. The caller must replay `result.crack_region`
    /// before serving so cached and uncached trees stay identical.
    Hit {
        /// The answer, already cut to the requested k.
        result: TopKResult,
        /// Whether the answer was cut down from a larger cached k
        /// (containment fast path) rather than matched exactly.
        prefix: bool,
    },
    /// The entry matches the epochs but was computed for a smaller k:
    /// its (id, S₁-distance) pairs warm-start the shrinking ball.
    Partial {
        /// Trusted (id, distance) pairs, ascending by distance.
        warm: Vec<(u32, f64)>,
    },
    /// An entry existed but its epochs no longer match — it has been
    /// removed (lazy invalidation).
    Stale,
    /// No entry.
    Miss,
}

/// Outcome of an aggregate probe.
#[derive(Debug)]
pub enum AggregateLookup {
    /// A complete answer. The caller must replay `crack_regions`.
    Hit(AggregateResult),
    /// Removed a stale entry (lazy invalidation).
    Stale,
    /// No entry.
    Miss,
}

// Same tradeoff as TopKLookup: values are stored once, read hot.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum CachedValue {
    TopK(TopKResult),
    Aggregate(AggregateResult),
}

#[derive(Debug)]
struct Entry {
    /// Global snapshot epoch at fill time.
    epoch: u64,
    /// Owning shard's epoch at fill time.
    shard_epoch: u64,
    /// The k the value was computed for (0 for aggregates).
    k: usize,
    value: CachedValue,
    /// Monotone per-stripe use stamp (LRU victim selection).
    stamp: u64,
}

/// FNV-1a, used both for stripe selection and inside the stripe maps.
/// The keys are short (a handful of ids and flags), already admitted —
/// SipHash's DoS resistance buys nothing here and costs ~4 full-key
/// hashes per miss (stripe choice + map op, on lookup and insert). FNV
/// is several times cheaper on these sizes and, unlike
/// `DefaultHasher`'s per-process keys, deterministic across runs, which
/// the model tests' stripe-choice reproducibility relies on.
#[derive(Debug)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

#[derive(Debug)]
struct Stripe {
    map: HashMap<CacheKey, Entry, FnvBuild>,
    /// Monotone counter behind the stripe lock — no atomics needed.
    tick: u64,
}

/// The sharded (striped) cache. See the module docs for the validity
/// and locking story.
#[derive(Debug)]
pub struct ResultCache {
    stripes: Vec<Mutex<Stripe>>,
    /// Entry capacity per stripe (total capacity / stripe count).
    stripe_capacity: usize,
}

/// Stripe count: enough to keep same-shard batch workers from
/// serializing on one mutex, small enough that a capacity-1024 cache
/// still gives each stripe a useful working set.
const STRIPES: usize = 8;

impl ResultCache {
    /// A cache holding up to `capacity` entries (clamped to ≥ 1; a
    /// facade with `cache_capacity = 0` holds no cache at all).
    pub fn new(capacity: usize) -> Self {
        let stripes = STRIPES.min(capacity.max(1));
        let stripe_capacity = capacity.max(1).div_ceil(stripes);
        Self {
            stripes: (0..stripes)
                .map(|_| {
                    Mutex::with_name(
                        Stripe {
                            // Preallocate up to the stripe's working set
                            // (clamped so a huge configured capacity does
                            // not reserve memory up front): filling the
                            // cache must never rehash, which would re-run
                            // every stored key's hash on the miss path.
                            map: HashMap::with_capacity_and_hasher(
                                stripe_capacity.min(4096),
                                FnvBuild::default(),
                            ),
                            tick: 0,
                        },
                        "vkg.cache",
                    )
                })
                .collect(),
            stripe_capacity,
        }
    }

    /// Total entries currently held (tests, exposition).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn stripe(&self, key: &CacheKey) -> &Mutex<Stripe> {
        // FNV is keyless, so stripe choice is deterministic across runs
        // (the model tests rely on that).
        let mut h = FnvHasher::default();
        key.hash(&mut h);
        &self.stripes[(h.finish() as usize) % self.stripes.len()]
    }

    /// Probes for a top-k answer at the pinned epochs. `epsilon`/`alpha`
    /// recompute the Theorem 2 guarantee on prefix cuts.
    pub fn lookup_top_k(
        &self,
        key: &CacheKey,
        k: usize,
        epoch: u64,
        shard_epoch: u64,
        epsilon: f64,
        alpha: usize,
    ) -> TopKLookup {
        let mut stripe = self.stripe(key).lock();
        stripe.tick += 1;
        let tick = stripe.tick;
        let Some(entry) = stripe.map.get_mut(key) else {
            return TopKLookup::Miss;
        };
        if entry.epoch != epoch || entry.shard_epoch != shard_epoch {
            stripe.map.remove(key);
            return TopKLookup::Stale;
        }
        entry.stamp = tick;
        let CachedValue::TopK(cached) = &entry.value else {
            // Key kinds and value kinds correspond one-to-one; treat a
            // mismatch as a miss rather than asserting on the hot path.
            return TopKLookup::Miss;
        };
        if k == entry.k {
            return TopKLookup::Hit {
                result: cached.clone(),
                prefix: false,
            };
        }
        if k < entry.k || cached.predictions.len() < entry.k {
            // Containment: the top-k of a fixed candidate set is a
            // prefix of its top-k′ for k ≤ k′; and an entry with fewer
            // than k′ predictions exhausted the candidate set, so it
            // answers *any* k.
            return TopKLookup::Hit {
                result: cut_prefix(cached, k, epsilon, alpha),
                prefix: true,
            };
        }
        TopKLookup::Partial {
            warm: cached
                .predictions
                .iter()
                .map(|p| (p.id, p.distance))
                .collect(),
        }
    }

    /// Records a freshly-computed top-k answer for `k` at the pinned
    /// epochs, replacing any entry under the same key.
    pub fn insert_top_k(
        &self,
        key: CacheKey,
        k: usize,
        epoch: u64,
        shard_epoch: u64,
        result: &TopKResult,
    ) {
        self.insert(
            key,
            k,
            epoch,
            shard_epoch,
            CachedValue::TopK(result.clone()),
        );
    }

    /// Probes for an aggregate answer at the pinned epochs.
    pub fn lookup_aggregate(
        &self,
        key: &CacheKey,
        epoch: u64,
        shard_epoch: u64,
    ) -> AggregateLookup {
        let mut stripe = self.stripe(key).lock();
        stripe.tick += 1;
        let tick = stripe.tick;
        let Some(entry) = stripe.map.get_mut(key) else {
            return AggregateLookup::Miss;
        };
        if entry.epoch != epoch || entry.shard_epoch != shard_epoch {
            stripe.map.remove(key);
            return AggregateLookup::Stale;
        }
        entry.stamp = tick;
        match &entry.value {
            CachedValue::Aggregate(a) => AggregateLookup::Hit(a.clone()),
            CachedValue::TopK(_) => AggregateLookup::Miss,
        }
    }

    /// Records a freshly-computed aggregate answer at the pinned epochs.
    pub fn insert_aggregate(
        &self,
        key: CacheKey,
        epoch: u64,
        shard_epoch: u64,
        result: &AggregateResult,
    ) {
        self.insert(
            key,
            0,
            epoch,
            shard_epoch,
            CachedValue::Aggregate(result.clone()),
        );
    }

    fn insert(&self, key: CacheKey, k: usize, epoch: u64, shard_epoch: u64, value: CachedValue) {
        let mut stripe = self.stripe(&key).lock();
        stripe.tick += 1;
        let tick = stripe.tick;
        if stripe.map.len() >= self.stripe_capacity && !stripe.map.contains_key(&key) {
            // Evict the least-recently-used entry. Linear in the stripe
            // (≤ capacity/stripes entries) — fine at the capacities the
            // facade configures, and only on insert at a full stripe.
            if let Some(victim) = stripe
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(key, _)| key.clone())
            {
                stripe.map.remove(&victim);
            }
        }
        stripe.map.insert(
            key,
            Entry {
                epoch,
                shard_epoch,
                k,
                value,
                stamp: tick,
            },
        );
    }
}

/// Cuts a cached top-k′ answer down to k, recomputing probabilities and
/// the Theorem 2 guarantee from the prefix distances (both are pure
/// functions of them, so the cut is bit-identical to recomputing the
/// smaller query at the same epochs). Cost counters keep their fill-time
/// values: they describe the work that *built* the answer.
fn cut_prefix(cached: &TopKResult, k: usize, epsilon: f64, alpha: usize) -> TopKResult {
    if k >= cached.predictions.len() {
        return cached.clone();
    }
    let distances: Vec<f64> = cached.predictions[..k].iter().map(|p| p.distance).collect();
    let probabilities = inverse_distance_probabilities(&distances);
    let predictions: Vec<Prediction> = cached.predictions[..k]
        .iter()
        .zip(probabilities)
        .map(|(p, probability)| Prediction {
            id: p.id,
            distance: p.distance,
            probability,
        })
        .collect();
    let guarantee = topk_guarantee(&distances, epsilon, alpha);
    TopKResult {
        predictions,
        guarantee,
        s1_evals: cached.s1_evals,
        candidates_examined: cached.candidates_examined,
        crack_region: cached.crack_region,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Mbr;

    fn top_k_result(n: usize) -> TopKResult {
        let distances: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let probabilities = inverse_distance_probabilities(&distances);
        TopKResult {
            predictions: distances
                .iter()
                .zip(probabilities)
                .enumerate()
                .map(|(i, (&distance, probability))| Prediction {
                    id: i as u32,
                    distance,
                    probability,
                })
                .collect(),
            guarantee: topk_guarantee(&distances, 3.0, 3),
            s1_evals: 10,
            candidates_examined: 20,
            crack_region: Some(Mbr::of_ball(&[0.0, 0.0, 0.0], 1.0)),
        }
    }

    fn key() -> CacheKey {
        CacheKey::top_k(1, 2, Direction::Tails, None)
    }

    #[test]
    fn exact_hit_after_insert() {
        let cache = ResultCache::new(16);
        let r = top_k_result(3);
        cache.insert_top_k(key(), 3, 5, 2, &r);
        match cache.lookup_top_k(&key(), 3, 5, 2, 3.0, 3) {
            TopKLookup::Hit { result, prefix } => {
                assert!(!prefix);
                assert_eq!(result.predictions, r.predictions);
                assert_eq!(result.crack_region, r.crack_region);
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn epoch_mismatch_invalidates_lazily() {
        let cache = ResultCache::new(16);
        cache.insert_top_k(key(), 3, 5, 2, &top_k_result(3));
        // Global epoch moved on.
        assert!(matches!(
            cache.lookup_top_k(&key(), 3, 6, 2, 3.0, 3),
            TopKLookup::Stale
        ));
        // The stale entry is gone: the next probe is a plain miss.
        assert!(matches!(
            cache.lookup_top_k(&key(), 3, 6, 2, 3.0, 3),
            TopKLookup::Miss
        ));
        // Shard epoch mismatch invalidates too.
        cache.insert_top_k(key(), 3, 5, 2, &top_k_result(3));
        assert!(matches!(
            cache.lookup_top_k(&key(), 3, 5, 3, 3.0, 3),
            TopKLookup::Stale
        ));
        assert!(cache.is_empty());
    }

    #[test]
    fn prefix_cut_matches_direct_computation() {
        let cache = ResultCache::new(16);
        cache.insert_top_k(key(), 5, 0, 0, &top_k_result(5));
        let TopKLookup::Hit { result, prefix } = cache.lookup_top_k(&key(), 2, 0, 0, 3.0, 3) else {
            panic!("expected prefix hit");
        };
        assert!(prefix);
        assert_eq!(result.predictions.len(), 2);
        // Bit-identical to computing the 2-element answer directly.
        let direct = top_k_result(2);
        for (got, want) in result.predictions.iter().zip(&direct.predictions) {
            assert_eq!(got.id, want.id);
            assert_eq!(got.distance.to_bits(), want.distance.to_bits());
            assert_eq!(got.probability.to_bits(), want.probability.to_bits());
        }
        assert_eq!(
            result.guarantee.success_probability.to_bits(),
            direct.guarantee.success_probability.to_bits()
        );
        // The crack region stays the fill-time one (it is what the
        // filling query cracked; the facade replays it on this hit).
        assert_eq!(result.crack_region, top_k_result(5).crack_region);
    }

    #[test]
    fn exhausted_entry_answers_larger_k() {
        let cache = ResultCache::new(16);
        // Asked for k=8, found only 3 candidates: the candidate set is
        // exhausted, so the same answer serves any larger k.
        cache.insert_top_k(key(), 8, 0, 0, &top_k_result(3));
        match cache.lookup_top_k(&key(), 20, 0, 0, 3.0, 3) {
            TopKLookup::Hit { result, prefix } => {
                assert!(prefix);
                assert_eq!(result.predictions.len(), 3);
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn larger_k_gets_warm_seeds() {
        let cache = ResultCache::new(16);
        cache.insert_top_k(key(), 3, 0, 0, &top_k_result(3));
        match cache.lookup_top_k(&key(), 5, 0, 0, 3.0, 3) {
            TopKLookup::Partial { warm } => {
                assert_eq!(warm, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_roundtrip_and_kind_separation() {
        use crate::query::aggregate::DeviationBound;
        let cache = ResultCache::new(16);
        let spec = AggregateSpec::count(0.05);
        let akey = CacheKey::aggregate(1, 2, Direction::Tails, &spec);
        let a = AggregateResult {
            estimate: 4.25,
            accessed: 5,
            ball_size: 6,
            bound: DeviationBound {
                mu: 4.25,
                increment_mass: 0.5,
            },
            crack_regions: vec![Mbr::of_ball(&[0.0, 0.0, 0.0], 2.0)],
        };
        cache.insert_aggregate(akey.clone(), 1, 1, &a);
        match cache.lookup_aggregate(&akey, 1, 1) {
            AggregateLookup::Hit(got) => {
                assert_eq!(got.estimate.to_bits(), a.estimate.to_bits());
                assert_eq!(got.ball_size, a.ball_size);
                assert_eq!(got.crack_regions, a.crack_regions);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(
            cache.lookup_aggregate(&akey, 2, 1),
            AggregateLookup::Stale
        ));
        // A different p_τ is a different key.
        let other = CacheKey::aggregate(1, 2, Direction::Tails, &AggregateSpec::count(0.1));
        assert_ne!(akey, other);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        // Capacity below the stripe count degenerates to one stripe of
        // one entry each — use a single-stripe configuration to make the
        // LRU order observable.
        let cache = ResultCache::new(1);
        assert_eq!(cache.stripes.len(), 1);
        let k1 = CacheKey::top_k(1, 0, Direction::Tails, None);
        let k2 = CacheKey::top_k(2, 0, Direction::Tails, None);
        cache.insert_top_k(k1.clone(), 3, 0, 0, &top_k_result(3));
        cache.insert_top_k(k2.clone(), 3, 0, 0, &top_k_result(3));
        assert_eq!(cache.len(), 1);
        assert!(matches!(
            cache.lookup_top_k(&k1, 3, 0, 0, 3.0, 3),
            TopKLookup::Miss
        ));
        assert!(matches!(
            cache.lookup_top_k(&k2, 3, 0, 0, 3.0, 3),
            TopKLookup::Hit { .. }
        ));
    }

    #[test]
    fn filter_fingerprint_separates_keys() {
        let cache = ResultCache::new(16);
        let plain = CacheKey::top_k(1, 2, Direction::Tails, None);
        let filtered = CacheKey::top_k(1, 2, Direction::Tails, Some(vec![0, 3, b'a', b'b', b'c']));
        cache.insert_top_k(plain.clone(), 3, 0, 0, &top_k_result(3));
        assert!(matches!(
            cache.lookup_top_k(&filtered, 3, 0, 0, 3.0, 3),
            TopKLookup::Miss
        ));
        let heads = CacheKey::top_k(1, 2, Direction::Heads, None);
        assert!(matches!(
            cache.lookup_top_k(&heads, 3, 0, 0, 3.0, 3),
            TopKLookup::Miss
        ));
    }
}
