//! The cracking / uneven R-tree index (§IV).
//!
//! The index starts as a single unsplit root partition and is shaped by
//! the queries: each call to [`CrackingIndex::crack`] performs the
//! partial, query-directed top-down build of INCREMENTALINDEXBUILD (or
//! Algorithm 2's TOP-KSPLITSINDEXBUILD when the strategy asks for
//! multiple split choices). A full offline
//! [`CrackingIndex::bulk_load`] path implements the classic
//! BULKLOADCHUNK baseline the paper compares against.
//!
//! The implementation is decomposed into cohesive submodules:
//!
//! - [`arena`] — flat node storage ([`Node`] / [`NodeKind`] / [`NodeId`])
//!   and size accounting;
//! - [`contour`] — reads over the current contour (Definitions 2–3):
//!   region search, element summaries, seed probes;
//! - [`crack`] — the crack/split driver turning query regions into
//!   partial builds;
//! - [`build`] — the recursive build core shared by cracking and bulk
//!   loading;
//! - [`chooser`] — split-choice strategies (greedy and top-k candidates);
//! - [`topk`] — Algorithm 2's TOP-KSPLITSINDEXBUILD search;
//! - [`dynamic`] — online insertions and removals.

pub mod arena;
pub mod build;
pub mod chooser;
pub mod contour;
pub mod crack;
pub mod dynamic;
pub mod topk;

pub use arena::{Node, NodeId, NodeKind};
pub use contour::ElementSummary;

use vkg_sync::pool::Pool;

use crate::config::SplitStrategy;
use crate::geometry::PointSet;
use crate::rtree::SortOrders;
use crate::stats::IndexStats;

use build::{build_element, BuildParams, RunCost};
use chooser::GreedyChooser;

/// The online cracking R-tree over a set of S₂ points.
#[derive(Debug)]
pub struct CrackingIndex {
    points: PointSet,
    nodes: Vec<Node>,
    root: NodeId,
    params: BuildParams,
    strategy: SplitStrategy,
    stats: IndexStats,
    /// Tombstoned point ids (dynamic removals; ids are never reused).
    removed: std::collections::HashSet<u32>,
    /// Data-parallel pool the build layers fan out over. Width 1 (the
    /// default) takes the exact serial code paths.
    pool: Pool,
    /// Crack regions recorded since the last drain, when journaling is
    /// on (`Some`). A sharded engine replays these on sibling trees so
    /// every shard's contour passes through the same crack sequence —
    /// Algorithm 3 seeds from the contour, so answers would otherwise
    /// depend on which relation's queries shaped which tree. Off
    /// (`None`, the default) for single-tree engines.
    journal: Option<Vec<crate::geometry::Mbr>>,
}

impl CrackingIndex {
    /// Creates an index whose tree is a single unsplit root — query
    /// processing can start immediately (§IV-C: "we can start processing
    /// the first query when the index only has a root node").
    pub fn new(
        points: PointSet,
        leaf_capacity: usize,
        fanout: usize,
        beta: f64,
        strategy: SplitStrategy,
    ) -> Self {
        Self::with_pool(
            points,
            leaf_capacity,
            fanout,
            beta,
            strategy,
            Pool::serial(),
        )
    }

    /// [`CrackingIndex::new`] with an explicit pool: root sort orders
    /// build in parallel, and every later crack or bulk load fans out
    /// over the same pool. A width-1 pool reproduces `new` exactly.
    pub fn with_pool(
        points: PointSet,
        leaf_capacity: usize,
        fanout: usize,
        beta: f64,
        strategy: SplitStrategy,
        pool: Pool,
    ) -> Self {
        assert!(leaf_capacity >= 2, "leaf capacity N must be ≥ 2");
        assert!(fanout >= 2, "fanout M must be ≥ 2");
        assert!(beta >= 1.0, "β must be ≥ 1");
        let params = BuildParams {
            leaf_capacity,
            fanout,
            beta,
            query_aware_cost: true,
        };
        let ids = points.all_ids();
        let orders = SortOrders::build_pooled(&points, ids, &pool);
        let mbr = orders.mbr(&points);
        let len = orders.len();
        let kind = if len <= leaf_capacity {
            NodeKind::Leaf(orders.into_ids())
        } else {
            NodeKind::Unsplit(orders)
        };
        let height = crate::rtree::height_for(len, leaf_capacity, fanout);
        let root_node = Node { mbr, height, kind };
        let mut index = Self {
            points,
            nodes: vec![root_node],
            root: 0,
            params,
            strategy,
            stats: IndexStats::default(),
            removed: std::collections::HashSet::new(),
            pool,
            journal: None,
        };
        index.stats.nodes_created = 1;
        index
    }

    /// Builds the complete balanced index offline (the BULKLOADCHUNK
    /// baseline of §VI). No stop conditions; every leaf materialized.
    pub fn bulk_load(points: PointSet, leaf_capacity: usize, fanout: usize, beta: f64) -> Self {
        Self::bulk_load_with_pool(points, leaf_capacity, fanout, beta, Pool::serial())
    }

    /// [`CrackingIndex::bulk_load`] with an explicit pool: sort-order
    /// construction, candidate sweeps, stable partitions, and the
    /// top-level piece recursion all fan out. The tree is structurally
    /// identical at every width (split choices are deterministic); a
    /// width-1 pool is bit-identical to `bulk_load`.
    pub fn bulk_load_with_pool(
        points: PointSet,
        leaf_capacity: usize,
        fanout: usize,
        beta: f64,
        pool: Pool,
    ) -> Self {
        let mut index = Self::with_pool(
            points,
            leaf_capacity,
            fanout,
            beta,
            SplitStrategy::Greedy,
            pool,
        );
        let root = index.root;
        // A root that already fits in one leaf needs no building; only an
        // unsplit root is taken apart (swapping the kind out first would
        // destroy a leaf root's payload).
        if matches!(index.nodes[root as usize].kind, NodeKind::Unsplit(_)) {
            let NodeKind::Unsplit(orders) = std::mem::replace(
                &mut index.nodes[root as usize].kind,
                NodeKind::Internal(Vec::new()),
            ) else {
                // lint: allow(no-unwrap, replace returns the value the matches! above proved Unsplit)
                unreachable!("kind matched Unsplit above");
            };
            let mut cost = RunCost::default();
            let built = build_element(
                &index.points,
                &index.params,
                orders,
                None,
                &mut GreedyChooser,
                &mut cost,
                &index.pool,
            );
            index.stats.splits_performed += cost.splits;
            index.install(root, built);
        }
        index
    }

    /// The pool the index's build layers run on.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Turns on crack journaling: every [`CrackingIndex::crack`] also
    /// records its query region so a sharded engine can replay the same
    /// crack sequence on sibling trees. Idempotent.
    pub fn enable_crack_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Takes the crack regions journaled since the last drain. Always
    /// empty when journaling is off.
    pub fn drain_crack_journal(&mut self) -> Vec<crate::geometry::Mbr> {
        match &mut self.journal {
            Some(journal) => std::mem::take(journal),
            None => Vec::new(),
        }
    }

    /// Applies a crack recorded on a sibling tree *without* journaling
    /// it again — the region is already in the shared log, and
    /// re-recording it would echo forever between shards.
    pub fn replay_crack(&mut self, q: &crate::geometry::Mbr) {
        self.crack_unjournaled(q);
    }

    /// Disables (or re-enables) the query-aware `c_Q` component of the
    /// split-ranking cost — the `abl_cost` ablation. Stop conditions are
    /// unaffected.
    pub fn set_query_aware_cost(&mut self, enabled: bool) {
        self.params.query_aware_cost = enabled;
    }

    /// The point set the index is built over.
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Dimensionality α of the index space.
    pub fn dim(&self) -> usize {
        self.points.dim()
    }

    /// Current statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Mutable statistics (e.g. to reset per-query access counters).
    pub fn stats_mut(&mut self) -> &mut IndexStats {
        &mut self.stats
    }

    /// Leaf capacity `N`.
    pub fn leaf_capacity(&self) -> usize {
        self.params.leaf_capacity
    }

    /// Consistency checks used by the test-suite: Lemma 1 (the contour
    /// partitions the point ids) and MBR containment along every path.
    ///
    /// # Panics
    /// Panics on violation.
    pub fn check_invariants(&self) {
        // Lemma 1: contour elements are mutually exclusive and cover all
        // live points; tombstoned points must appear nowhere.
        let mut seen = vec![false; self.points.len()];
        for id in self.contour() {
            for &pid in self.element_point_ids(id) {
                assert!(
                    !seen[pid as usize],
                    "point {pid} appears in two contour elements"
                );
                assert!(
                    !self.removed.contains(&pid),
                    "tombstoned point {pid} still indexed"
                );
                seen[pid as usize] = true;
            }
        }
        for (pid, &s) in seen.iter().enumerate() {
            assert!(
                s || self.removed.contains(&(pid as u32)),
                "live point {pid} is missing from the contour"
            );
        }
        // MBR containment and child coverage.
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            match &node.kind {
                NodeKind::Internal(children) => {
                    assert!(!children.is_empty(), "internal node {id} has no children");
                    for &c in children {
                        let child = &self.nodes[c as usize];
                        assert!(
                            node.mbr.contains_mbr(&child.mbr),
                            "child {c} MBR escapes parent {id}"
                        );
                        stack.push(c);
                    }
                }
                NodeKind::Leaf(ids) => {
                    for &pid in ids {
                        assert!(
                            node.mbr.contains_point(self.points.point(pid)),
                            "leaf point {pid} outside node MBR"
                        );
                    }
                }
                NodeKind::Unsplit(orders) => {
                    for &pid in orders.ids(0) {
                        assert!(
                            node.mbr.contains_point(self.points.point(pid)),
                            "partition point {pid} outside node MBR"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Mbr;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let coords: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
        PointSet::from_rows(dim, coords)
    }

    fn fresh(n: usize, strategy: SplitStrategy) -> CrackingIndex {
        CrackingIndex::new(random_points(n, 3, 42), 16, 8, 2.0, strategy)
    }

    /// Brute-force region query for ground truth.
    fn brute_force(ps: &PointSet, q: &Mbr) -> Vec<u32> {
        (0..ps.len() as u32)
            .filter(|&i| ps.in_region(i, q))
            .collect()
    }

    #[test]
    fn new_index_is_root_only() {
        let idx = fresh(1_000, SplitStrategy::Greedy);
        assert_eq!(idx.node_count(), 1);
        assert_eq!(idx.contour(), vec![0]);
        idx.check_invariants();
    }

    #[test]
    fn tiny_input_is_leaf_root() {
        let idx = fresh(10, SplitStrategy::Greedy);
        assert_eq!(idx.node_count(), 1);
        assert!(matches!(idx.nodes[0].kind, NodeKind::Leaf(_)));
        idx.check_invariants();
    }

    #[test]
    fn search_on_unsplit_root_finds_everything() {
        let mut idx = fresh(500, SplitStrategy::Greedy);
        let q = Mbr::of_ball(&[0.0, 0.0, 0.0], 4.0);
        let mut found = Vec::new();
        idx.search_region(&q, |id| found.push(id));
        found.sort_unstable();
        assert_eq!(found, brute_force(idx.points(), &q));
        assert!(idx.stats().points_examined >= found.len() as u64);
    }

    #[test]
    fn crack_then_search_is_exact() {
        let mut idx = fresh(3_000, SplitStrategy::Greedy);
        let q = Mbr::of_ball(&[2.0, -3.0, 5.0], 2.0);
        idx.crack(&q);
        idx.check_invariants();
        let mut found = Vec::new();
        idx.search_region(&q, |id| found.push(id));
        found.sort_unstable();
        assert_eq!(found, brute_force(idx.points(), &q));
        assert!(idx.node_count() > 1, "crack must split the root");
    }

    #[test]
    fn crack_is_idempotent() {
        let mut idx = fresh(3_000, SplitStrategy::Greedy);
        let q = Mbr::of_ball(&[2.0, -3.0, 5.0], 2.0);
        idx.crack(&q);
        let nodes_after_first = idx.node_count();
        let splits_after_first = idx.stats().splits_performed;
        idx.crack(&q);
        assert_eq!(
            idx.node_count(),
            nodes_after_first,
            "re-crack must not grow"
        );
        assert_eq!(idx.stats().splits_performed, splits_after_first);
        idx.check_invariants();
    }

    #[test]
    fn successive_queries_grow_then_converge() {
        let mut idx = fresh(5_000, SplitStrategy::Greedy);
        let mut rng = StdRng::seed_from_u64(7);
        // Queries cluster around a few hot centers — Figs. 9–11 measure
        // convergence under a *fixed* query distribution, where later
        // queries revisit cracked territory. Independent uniform queries
        // would keep hitting virgin space and never converge.
        let hot: Vec<[f64; 3]> = (0..4)
            .map(|_| {
                [
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                ]
            })
            .collect();
        let mut sizes = Vec::new();
        for i in 0..24 {
            let h = hot[i % hot.len()];
            let c = [
                h[0] + rng.gen_range(-0.5..0.5),
                h[1] + rng.gen_range(-0.5..0.5),
                h[2] + rng.gen_range(-0.5..0.5),
            ];
            let q = Mbr::of_ball(&c, 1.0);
            idx.crack(&q);
            sizes.push(idx.node_count());
        }
        idx.check_invariants();
        // Growth must slow down (convergence of Figs. 9–11): the second
        // half of the workload revisits regions the first half cracked.
        let early: usize = sizes[11] - sizes[0];
        let late: usize = sizes[23] - sizes[12];
        assert!(late <= early, "early growth {early}, late {late}");
    }

    #[test]
    fn bulk_load_builds_complete_tree() {
        let ps = random_points(2_000, 3, 9);
        let idx = CrackingIndex::bulk_load(ps, 16, 8, 2.0);
        idx.check_invariants();
        // No unsplit partitions anywhere.
        for id in idx.contour() {
            assert!(
                matches!(idx.nodes[id as usize].kind, NodeKind::Leaf(_)),
                "bulk-loaded index must be fully split"
            );
        }
        // Leaf sizes bounded by N.
        for id in idx.contour() {
            assert!(idx.element_point_ids(id).len() <= 16);
        }
    }

    #[test]
    fn cracked_index_much_smaller_than_bulk() {
        let ps = random_points(20_000, 3, 11);
        let bulk = CrackingIndex::bulk_load(ps.clone(), 16, 8, 2.0);
        let mut cracked = CrackingIndex::new(ps, 16, 8, 2.0, SplitStrategy::Greedy);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let c = [
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
            ];
            cracked.crack(&Mbr::of_ball(&c, 0.8));
        }
        assert!(
            cracked.node_count() * 3 < bulk.node_count(),
            "cracked {} nodes vs bulk {}",
            cracked.node_count(),
            bulk.node_count()
        );
        assert!(
            cracked.stats().splits_performed * 3 < bulk.stats().splits_performed,
            "cracked {} splits vs bulk {}",
            cracked.stats().splits_performed,
            bulk.stats().splits_performed
        );
    }

    #[test]
    fn bulk_and_cracked_search_agree() {
        let ps = random_points(4_000, 3, 21);
        let mut bulk = CrackingIndex::bulk_load(ps.clone(), 16, 8, 2.0);
        let mut cracked = CrackingIndex::new(ps, 16, 8, 2.0, SplitStrategy::Greedy);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..8 {
            let c = [
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
            ];
            let q = Mbr::of_ball(&c, 1.5);
            cracked.crack(&q);
            let mut a = Vec::new();
            bulk.search_region(&q, |id| a.push(id));
            let mut b = Vec::new();
            cracked.search_region(&q, |id| b.push(id));
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn seed_scan_returns_nearby_points() {
        let mut idx = fresh(2_000, SplitStrategy::Greedy);
        let center = [1.0, 1.0, 1.0];
        let el = idx.smallest_element_containing(&center);
        let n_before = idx.element_point_ids(el).len();
        let seeds = idx.seed_scan(el, &center, 5);
        assert_eq!(seeds.len(), 5);
        // After cracking, the probe lands in a smaller element.
        idx.crack(&Mbr::of_ball(&center, 1.0));
        let el2 = idx.smallest_element_containing(&center);
        let n_after = idx.element_point_ids(el2).len();
        assert!(n_after <= n_before);
        let seeds2 = idx.seed_scan(el2, &center, 5);
        assert_eq!(seeds2.len(), 5);
    }

    #[test]
    fn topk_strategy_produces_valid_index() {
        let mut idx = fresh(3_000, SplitStrategy::TopK { choices: 3 });
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..5 {
            let c = [
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
            ];
            let q = Mbr::of_ball(&c, 1.5);
            idx.crack(&q);
            idx.check_invariants();
            let mut found = Vec::new();
            idx.search_region(&q, |id| found.push(id));
            found.sort_unstable();
            assert_eq!(found, brute_force(idx.points(), &q));
        }
    }

    #[test]
    fn index_bytes_grow_with_cracking() {
        let mut idx = fresh(5_000, SplitStrategy::Greedy);
        let before = idx.index_bytes();
        idx.crack(&Mbr::of_ball(&[0.0, 0.0, 0.0], 2.0));
        // Splitting adds node envelopes even though payload shrinks per
        // element; byte accounting must stay positive and sane.
        assert!(idx.index_bytes() > 0);
        assert!(before > 0);
    }

    #[test]
    fn empty_point_set() {
        let ps = PointSet::from_rows(3, vec![]);
        let mut idx = CrackingIndex::new(ps, 8, 4, 1.0, SplitStrategy::Greedy);
        let q = Mbr::of_ball(&[0.0, 0.0, 0.0], 1.0);
        idx.crack(&q);
        let mut found = Vec::new();
        idx.search_region(&q, |id| found.push(id));
        assert!(found.is_empty());
        idx.check_invariants();
    }
}
