//! Criterion counterpart of Figure 3: steady-state top-k query latency
//! per method on the Freebase-like dataset.
//!
//! (The `run_experiments` binary reports the full figure including index
//! build time and the 1st/6th/11th/16th query; Criterion measures the
//! steady state rigorously.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vkg::prelude::*;
use vkg_bench::setup::{self, Scale};
use vkg_bench::workload;

fn bench_fig3(c: &mut Criterion) {
    let p = setup::freebase(Scale::Smoke, 24);
    let queries = workload::generate(&p.dataset.graph, 256, 0xBE03);
    let snap = p.snapshot(vkg_bench::setup::bench_config());
    let mut scan = LinearScanEngine::new();
    let mut phtree = PhTreeEngine::build(&snap);

    let mut group = c.benchmark_group("fig03_freebase_topk");

    group.bench_function("no_index", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(workload::run(&mut scan, &snap, q, 10))
        })
    });

    group.bench_function("ph_tree", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(workload::run(&mut phtree, &snap, q, 10))
        })
    });

    // Warmed engines: cracking has converged, so iterations measure the
    // steady state of each method.
    let strategies: [(&str, VkgConfig); 4] = [
        ("bulk_load", vkg_bench::setup::bench_config()),
        ("cracking_greedy", vkg_bench::setup::bench_config()),
        (
            "cracking_2choice",
            VkgConfig {
                split_strategy: SplitStrategy::TopK { choices: 2 },
                ..vkg_bench::setup::bench_config()
            },
        ),
        (
            "cracking_4choice",
            VkgConfig {
                split_strategy: SplitStrategy::TopK { choices: 4 },
                ..vkg_bench::setup::bench_config()
            },
        ),
    ];
    for (name, cfg) in strategies {
        let snap_c = p.snapshot(cfg);
        let mut engine = if name == "bulk_load" {
            IndexState::bulk_loaded(&snap_c)
        } else {
            IndexState::cracking(&snap_c)
        };
        // Warm-up: run the paper's "first query issued offline" plus a
        // few more to converge the cracking.
        for q in queries.iter().take(20) {
            let _ = workload::run(&mut engine, &snap_c, q, 10);
        }
        let qs = queries.clone();
        group.bench_function(name, move |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                black_box(workload::run(&mut engine, &snap_c, q, 10))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig3
}
criterion_main!(benches);
