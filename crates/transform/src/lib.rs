//! Johnson–Lindenstrauss transform of embedding vectors (paper §III).
//!
//! The embedding space S₁ has dimensionality `d` in the tens or hundreds —
//! too high for spatial indices like the R-tree. This crate implements the
//! paper's JL-type random projection to a *very* low-dimensional space S₂
//! (α such as 3):
//!
//! ```text
//!   x ↦ (1/√α) · A · x,    A ∈ ℝ^{α×d},  A_ij ~ N(0, 1) i.i.d.
//! ```
//!
//! Classical JL analysis needs α in the hundreds; the paper's Theorem 1
//! re-derives distance-distortion tail bounds that are meaningful for any
//! α, and those closed forms live in [`bounds`]. Gaussian sampling is
//! hand-rolled Box–Muller ([`gaussian`]) to avoid an extra dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod gaussian;
pub mod jl;

pub use jl::JlTransform;
