// pretend: crates/server/src/server.rs
// Fixture for the no-panic-on-request-path rule: panic sources are
// flagged only when the call graph reaches them from a request entry
// point (`connection_loop` / `worker_loop`). Unwrap/expect sites in
// this file are already policed by the token-level no-unwrap rule, so
// the graph rule adds the cases tokens cannot see: slice indexing.

pub fn worker_loop(jobs: &[u32]) -> u32 {
    first_job(jobs) + justified(jobs, 0)
}

fn first_job(jobs: &[u32]) -> u32 {
    jobs[0] // expect: no-panic-on-request-path
}

pub fn connection_loop(frames: &[u32]) -> u32 {
    let f = frames.first().unwrap(); // expect: no-unwrap
    *f
}

fn boot_only(cfg: &[u32]) -> u32 {
    // Indexing here is silent: nothing on the request path calls this.
    cfg[1]
}

fn justified(jobs: &[u32], i: usize) -> u32 {
    // lint: allow(no-panic-on-request-path, i comes from the admission router which bounds it by len)
    jobs[i]
}
