//! The schedule-exploring model checker (only with `--features model`).
//!
//! [`check`] runs a closure under a seed-deterministic randomized
//! scheduler: threads spawned with [`crate::thread::spawn`] inside the
//! closure become *managed* — serialized onto one logical processor,
//! preempted only at instrumentation yield points (every operation on a
//! [`crate::Mutex`], [`crate::RwLock`], [`crate::Condvar`],
//! [`crate::AtomicU64`]/[`crate::AtomicBool`], [`crate::RaceCell`],
//! spawn or join), with every scheduling decision drawn from the seed.
//! Vector clocks track happens-before across those operations, so the
//! runtime reports:
//!
//! * **data races** — concurrent, unsynchronized accesses to a
//!   [`crate::RaceCell`], at the first conflicting pair;
//! * **lock-order inversions** — a cycle in the global
//!   acquired-while-holding graph, even when this particular schedule
//!   did not deadlock;
//! * **deadlocks and lost wakeups** — no runnable thread while some
//!   thread still waits (a condvar waiter nobody will notify is the
//!   lost-wakeup shape);
//! * **panics** inside managed threads, and runaway schedules
//!   (step-bound exceeded).
//!
//! [`sweep`] runs a range of seeds and stops at the first violation;
//! re-running [`check`] with `Violation::seed` replays the failing
//! schedule exactly.
//!
//! ```
//! use vkg_sync::{model, thread, Arc, Mutex};
//!
//! let report = model::check(7, || {
//!     let m = Arc::new(Mutex::new(0_u64));
//!     let m2 = m.clone();
//!     let h = thread::spawn(move || *m2.lock() += 1);
//!     *m.lock() += 1;
//!     h.join().expect("worker");
//!     assert_eq!(*m.lock(), 2);
//! })
//! .expect("clean program");
//! assert!(report.steps > 0);
//! ```

mod clock;
mod rng;
pub(crate) mod runtime;

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};

/// Tuning knobs for a model run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum number of *voluntary* preemptions the scheduler may
    /// inject (PCT-style bound). Switches forced by blocking are free.
    pub preemption_bound: u32,
    /// Abort the schedule (as a [`ViolationKind::ScheduleBound`]
    /// violation) after this many instrumented operations.
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: 8,
            max_steps: 200_000,
        }
    }
}

/// What went wrong in a failing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ViolationKind {
    /// Concurrent unsynchronized accesses to a [`crate::RaceCell`].
    DataRace,
    /// A cycle in the acquired-while-holding lock-order graph.
    LockOrderInversion,
    /// No runnable thread while some thread still waits — includes
    /// classic ABBA deadlocks and lost condvar wakeups.
    Deadlock,
    /// A managed thread panicked (failed assertion, unwrap, …).
    Panic,
    /// The schedule exceeded [`Config::max_steps`] operations.
    ScheduleBound,
}

/// A violation found by the checker, tied to the seed that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The seed whose schedule exposed the violation; re-running
    /// [`check`] with it replays the exact interleaving.
    pub seed: u64,
    /// The violation class.
    pub kind: ViolationKind,
    /// Human-readable description naming the objects and threads.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} (seed {}): {} — replay with model::check({}, …)",
            self.kind, self.seed, self.message, self.seed
        )
    }
}

impl std::error::Error for Violation {}

/// Statistics from a clean schedule.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Instrumented operations executed.
    pub steps: u64,
    /// Threads that participated (including the root).
    pub threads: usize,
}

fn panic_payload_to_string(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Installs (once per process) a panic hook that silences the private
/// [`runtime::ModelAbort`] payload used to unwind managed threads after
/// a violation; every other panic still prints normally.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<runtime::ModelAbort>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Explores one schedule of `f` under `seed` with default [`Config`].
pub fn check<F: FnOnce()>(seed: u64, f: F) -> Result<Report, Violation> {
    check_with(&Config::default(), seed, f)
}

/// Explores one schedule of `f` under `seed` with explicit knobs.
pub fn check_with<F: FnOnce()>(cfg: &Config, seed: u64, f: F) -> Result<Report, Violation> {
    install_quiet_hook();
    assert!(
        runtime::current().is_none(),
        "model::check cannot be nested inside a managed thread"
    );
    let rt = Arc::new(runtime::Runtime::new(seed, cfg));
    runtime::set_current(Some((rt.clone(), 0)));
    let user = panic::catch_unwind(AssertUnwindSafe(f));
    // Drive leftover spawned threads to completion (or flag them) so
    // the run ends quiescent regardless of how `f` exited.
    let _ = panic::catch_unwind(AssertUnwindSafe(|| rt.wind_down()));
    runtime::set_current(None);
    let failure = rt.take_failure();
    match (user, failure) {
        (_, Some(v)) => Err(v),
        (Err(p), None) => {
            if p.is::<runtime::ModelAbort>() {
                // Aborted but no recorded violation: only possible if
                // someone raced take_failure; treat as clean teardown.
                Ok(rt.report())
            } else {
                Err(Violation {
                    seed,
                    kind: ViolationKind::Panic,
                    message: format!("root thread panicked: {}", panic_payload_to_string(&*p)),
                })
            }
        }
        (Ok(()), None) => Ok(rt.report()),
    }
}

/// Runs `f` under seeds `0..seeds`, stopping at the first violation.
pub fn sweep<F: Fn()>(seeds: u64, f: F) -> Result<(), Violation> {
    sweep_with(&Config::default(), seeds, f)
}

/// [`sweep`] with explicit knobs.
pub fn sweep_with<F: Fn()>(cfg: &Config, seeds: u64, f: F) -> Result<(), Violation> {
    for seed in 0..seeds {
        check_with(cfg, seed, &f)?;
    }
    Ok(())
}
