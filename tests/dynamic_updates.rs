//! Dynamic knowledge-graph updates end-to-end (the paper's §VIII future
//! work): new entities and facts arrive after assembly, embeddings move
//! locally, and the partial index absorbs every change in place.

use vkg::prelude::*;

fn world() -> (Dataset, VirtualKnowledgeGraph) {
    let ds = movie_like(&MovieConfig::tiny());
    let embeddings = vkg::embed::least_squares_embedding(
        &ds.graph,
        &vkg::embed::LsConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let vkg = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        embeddings,
        VkgConfig {
            epsilon: 1.0,
            ..VkgConfig::default()
        },
    );
    (ds, vkg)
}

#[test]
fn cold_start_entity_becomes_queryable() {
    let (_ds, vkg) = world();
    let likes = vkg.graph().relation_id("likes").unwrap();

    // A new movie arrives with an embedding placed exactly where an
    // existing user's "likes" query lands — it must become that user's
    // top prediction.
    let user = vkg.graph().entity_id("user_1").unwrap();
    let target = vkg.query_point_s1(user, likes, Direction::Tails).unwrap();
    let new_movie = vkg
        .add_entity_dynamic("movie_coldstart", &target)
        .expect("well-shaped dynamic entity");
    vkg.index().check_invariants();

    let r = vkg.top_k(user, likes, Direction::Tails, 3).unwrap();
    assert_eq!(
        r.predictions[0].id, new_movie.0,
        "the perfectly placed new movie must rank first"
    );
    assert!(r.predictions[0].distance < 1e-9);
}

#[test]
fn new_fact_is_excluded_from_predictions() {
    let (_ds, vkg) = world();
    let likes = vkg.graph().relation_id("likes").unwrap();
    let user = vkg.graph().entity_id("user_2").unwrap();

    let before = vkg.top_k(user, likes, Direction::Tails, 1).unwrap();
    let top = EntityId(before.predictions[0].id);

    // The user now actually likes their top prediction: the edge enters
    // E, so E′ semantics must drop it from future answers.
    assert!(vkg.add_fact_dynamic(user, likes, top, 4, 0.05).unwrap().0);
    vkg.index().check_invariants();
    let after = vkg.top_k(user, likes, Direction::Tails, 5).unwrap();
    assert!(
        after.predictions.iter().all(|p| p.id != top.0),
        "materialized edge must be skipped"
    );
}

#[test]
fn refinement_pulls_endpoints_together() {
    let (_ds, vkg) = world();
    let likes = vkg.graph().relation_id("likes").unwrap();
    let user = vkg.graph().entity_id("user_3").unwrap();
    // A far-away movie the user does not like yet.
    let movie = vkg.graph().entity_id("movie_50").unwrap();
    let before = vkg.embeddings().triple_distance(user, likes, movie);
    vkg.add_fact_dynamic(user, likes, movie, 8, 0.05).unwrap();
    let after = vkg.embeddings().triple_distance(user, likes, movie);
    assert!(
        after < before,
        "local refinement must tighten the new triple ({before} → {after})"
    );
    vkg.index().check_invariants();
}

#[test]
fn duplicate_fact_is_noop() {
    let (ds, vkg) = world();
    let likes = ds.graph.relation_id("likes").unwrap();
    let t = ds
        .graph
        .triples()
        .iter()
        .find(|t| t.relation == likes)
        .copied()
        .unwrap();
    let h_before = vkg.embeddings().entity(t.head).to_vec();
    let (added, epoch) = vkg
        .add_fact_dynamic(t.head, likes, t.tail, 5, 0.05)
        .unwrap();
    assert!(!added);
    assert_eq!(epoch, vkg.epoch(), "duplicates report the current epoch");
    assert_eq!(
        vkg.embeddings().entity(t.head),
        h_before.as_slice(),
        "duplicate facts must not move embeddings"
    );
}

#[test]
fn dynamic_attribute_visible_to_aggregates() {
    let (_ds, vkg) = world();
    let likes = vkg.graph().relation_id("likes").unwrap();
    let user = vkg.graph().entity_id("user_0").unwrap();
    // Give every movie a fresh attribute after assembly.
    let ids: Vec<EntityId> = (0..vkg.graph().num_entities() as u32)
        .map(EntityId)
        .filter(|&e| {
            vkg.graph()
                .entity_name(e)
                .is_some_and(|n| n.starts_with("movie_"))
        })
        .collect();
    for (i, m) in ids.iter().enumerate() {
        vkg.set_attribute_dynamic("runtime", *m, 90.0 + (i % 60) as f64);
    }
    let r = vkg
        .aggregate(
            user,
            likes,
            Direction::Tails,
            &AggregateSpec::of(AggregateKind::Avg, "runtime", 0.05),
        )
        .unwrap();
    assert!(
        (90.0..=150.0).contains(&r.estimate),
        "avg runtime {} outside the attribute's range",
        r.estimate
    );
}

#[test]
fn many_updates_keep_queries_exact() {
    let (_ds, vkg) = world();
    let likes = vkg.graph().relation_id("likes").unwrap();
    // Interleave queries and updates, then verify against the scan.
    for i in 0..10 {
        let user = vkg.graph().entity_id(&format!("user_{i}")).unwrap();
        let _ = vkg.top_k(user, likes, Direction::Tails, 5).unwrap();
        let q = vkg.query_point_s1(user, likes, Direction::Tails).unwrap();
        let jitter: Vec<f64> = q.iter().map(|v| v + 0.01 * i as f64).collect();
        vkg.add_entity_dynamic(&format!("new_movie_{i}"), &jitter)
            .expect("well-shaped dynamic entity");
    }
    vkg.index().check_invariants();
    let user = vkg.graph().entity_id("user_5").unwrap();
    let indexed = vkg.top_k(user, likes, Direction::Tails, 5).unwrap();
    let scan_store = vkg.embeddings().clone();
    let scan = LinearScan::new(&scan_store);
    let q = vkg.query_point_s1(user, likes, Direction::Tails).unwrap();
    let known: std::collections::HashSet<u32> =
        vkg.graph().tails(user, likes).map(|e| e.0).collect();
    let truth = scan.top_k_near(&q, 5, |id| id == user.0 || known.contains(&id));
    let truth_ids: Vec<u32> = truth.iter().map(|t| t.0).collect();
    let got_ids: Vec<u32> = indexed.predictions.iter().map(|p| p.id).collect();
    let hits = got_ids.iter().filter(|g| truth_ids.contains(g)).count();
    assert!(hits >= 4, "only {hits}/5 agree with the scan after updates");
}
