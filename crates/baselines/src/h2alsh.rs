//! H2-ALSH (Huang et al., KDD 2018 — the paper's reference [12]):
//! accurate and fast asymmetric LSH for maximum inner product search.
//!
//! The closest prior work to the paper's index. It answers *one*
//! collaborative-filtering-style relationship (find items maximizing
//! `x · q`), which is why the paper can only compare against it on
//! single-relation workloads (§VI: movie / Amazon "likes").
//!
//! Pipeline, as in the original:
//!
//! 1. **Homocentric hypersphere partitioning** — items sorted by norm
//!    descending and greedily grouped so every partition `j` has
//!    `‖x‖ ≥ b·M_j` where `M_j` is the partition's max norm and
//!    `0 < b < 1` the norm ratio.
//! 2. **QNF asymmetric transform** per partition: item
//!    `x ↦ [x; √(M_j² − ‖x‖²)]` (all transformed items share norm `M_j`),
//!    query `q ↦ [q; 0]` — inner-product order becomes (reversed)
//!    Euclidean order among the transformed points.
//! 3. **E2LSH tables** over the transformed points: `L` tables of `K`
//!    concatenated projections `⌊(a·x + u)/w⌋`.
//! 4. **Query** probes partitions in descending `M_j` order and stops
//!    early once `M_j · ‖q‖` (the best inner product the partition could
//!    possibly contain) cannot beat the current k-th best.
//!
//! The flat hash buckets are the structural reason H2-ALSH scales worse
//! than a tree index in Figures 5/7 — buckets grow with the data while a
//! tree's depth grows logarithmically.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunables for [`H2Alsh::build`].
#[derive(Debug, Clone)]
pub struct H2AlshConfig {
    /// Norm ratio `b` delimiting partitions (0 < b < 1).
    pub norm_ratio: f64,
    /// Hash functions concatenated per table (`K`).
    pub hash_k: usize,
    /// Number of hash tables (`L`).
    pub tables: usize,
    /// Bucket width `w` of the `⌊(a·x + u)/w⌋` projections.
    pub bucket_width: f64,
    /// RNG seed for the projections.
    pub seed: u64,
}

impl Default for H2AlshConfig {
    fn default() -> Self {
        Self {
            norm_ratio: 0.9,
            hash_k: 6,
            tables: 10,
            bucket_width: 16.0,
            seed: 0x4832_4c53, // "H2LS"
        }
    }
}

/// One E2LSH hash table over a partition's transformed points.
#[derive(Debug)]
struct HashTable {
    /// `hash_k` projection vectors, each of `dim + 1` entries.
    projections: Vec<Vec<f64>>,
    offsets: Vec<f64>,
    buckets: HashMap<Vec<i32>, Vec<u32>>,
}

impl HashTable {
    fn signature(&self, point: &[f64], w: f64) -> Vec<i32> {
        self.projections
            .iter()
            .zip(&self.offsets)
            .map(|(a, &u)| {
                let dot: f64 = a.iter().zip(point).map(|(x, y)| x * y).sum();
                ((dot + u) / w).floor() as i32
            })
            .collect()
    }
}

/// One homocentric-hypersphere partition.
#[derive(Debug)]
struct Partition {
    /// Global ids of the members.
    ids: Vec<u32>,
    /// Max norm `M_j` of the partition.
    max_norm: f64,
    /// Transformed `(dim+1)`-dimensional points, row-major. Consumed at
    /// build time to fill the hash tables; retained for invariant checks.
    #[cfg_attr(not(test), allow(dead_code))]
    transformed: Vec<f64>,
    tables: Vec<HashTable>,
}

/// The H2-ALSH index.
#[derive(Debug)]
pub struct H2Alsh {
    dim: usize,
    /// Original row-major data (for exact inner-product verification).
    data: Vec<f64>,
    partitions: Vec<Partition>,
    cfg: H2AlshConfig,
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    // Box–Muller (polar form), as in vkg-transform.
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

impl H2Alsh {
    /// Builds the index over `n × dim` row-major `data` (the offline
    /// index-building phase measured in Figures 5 and 7).
    ///
    /// # Panics
    /// Panics on shape mismatch or invalid configuration.
    pub fn build(data: Vec<f64>, dim: usize, cfg: H2AlshConfig) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert_eq!(data.len() % dim, 0, "matrix shape mismatch");
        assert!(
            cfg.norm_ratio > 0.0 && cfg.norm_ratio < 1.0,
            "norm ratio must be in (0, 1)"
        );
        assert!(cfg.hash_k >= 1 && cfg.tables >= 1, "need hashes and tables");
        assert!(cfg.bucket_width > 0.0, "bucket width must be positive");
        let n = data.len() / dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // 1. Sort ids by norm descending.
        let norms: Vec<f64> = (0..n)
            .map(|i| norm(&data[i * dim..(i + 1) * dim]))
            .collect();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| norms[b as usize].total_cmp(&norms[a as usize]));

        // 2. Greedy homocentric partitioning.
        let mut partitions: Vec<Partition> = Vec::new();
        let mut start = 0usize;
        while start < n {
            let max_norm = norms[order[start] as usize].max(1e-12);
            let mut end = start + 1;
            while end < n && norms[order[end] as usize] >= cfg.norm_ratio * max_norm {
                end += 1;
            }
            let ids: Vec<u32> = order[start..end].to_vec();

            // 3. QNF transform: x ↦ [x; √(M² − ‖x‖²)].
            let mut transformed = Vec::with_capacity(ids.len() * (dim + 1));
            for &id in &ids {
                let row = &data[id as usize * dim..(id as usize + 1) * dim];
                transformed.extend_from_slice(row);
                let extra = (max_norm * max_norm - norms[id as usize] * norms[id as usize])
                    .max(0.0)
                    .sqrt();
                transformed.push(extra);
            }

            // 4. Hash tables over the transformed points.
            let mut tables = Vec::with_capacity(cfg.tables);
            for _ in 0..cfg.tables {
                let projections: Vec<Vec<f64>> = (0..cfg.hash_k)
                    .map(|_| (0..dim + 1).map(|_| gaussian(&mut rng)).collect())
                    .collect();
                let offsets: Vec<f64> = (0..cfg.hash_k)
                    .map(|_| rng.gen_range(0.0..cfg.bucket_width))
                    .collect();
                let mut table = HashTable {
                    projections,
                    offsets,
                    buckets: HashMap::new(),
                };
                for (local, _) in ids.iter().enumerate() {
                    let p = &transformed[local * (dim + 1)..(local + 1) * (dim + 1)];
                    let sig = table.signature(p, cfg.bucket_width);
                    table.buckets.entry(sig).or_default().push(local as u32);
                }
                tables.push(table);
            }

            partitions.push(Partition {
                ids,
                max_norm,
                transformed,
                tables,
            });
            start = end;
        }

        Self {
            dim,
            data,
            partitions,
            cfg,
        }
    }

    /// Number of norm partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn inner_product(&self, id: u32, q: &[f64]) -> f64 {
        self.data[id as usize * self.dim..(id as usize + 1) * self.dim]
            .iter()
            .zip(q)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Top-k maximum-inner-product search, excluding ids for which `skip`
    /// returns true. Results descend by inner product.
    ///
    /// Probes partitions in decreasing max-norm order and stops once even
    /// a perfectly aligned item (`ip ≤ M_j·‖q‖`) could not improve the
    /// current k-th best.
    pub fn top_k_mips(
        &self,
        q: &[f64],
        k: usize,
        mut skip: impl FnMut(u32) -> bool,
    ) -> Vec<(u32, f64)> {
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        let q_norm = norm(q);
        let mut tq: Vec<f64> = Vec::with_capacity(self.dim + 1);
        tq.extend_from_slice(q);
        tq.push(0.0);

        let mut best: Vec<(u32, f64)> = Vec::new();
        for part in &self.partitions {
            // Early termination (the H2-ALSH pruning rule).
            if best.len() >= k {
                let kth = best[k - 1].1;
                if part.max_norm * q_norm <= kth {
                    break;
                }
            }
            // Gather bucket candidates from all tables, multi-probing the
            // ±1 neighbours of each signature coordinate (points near a
            // bucket boundary land one slot over about half the time).
            let mut candidates: Vec<u32> = Vec::new();
            let mut seen = vec![false; part.ids.len()];
            let mut absorb = |bucket: Option<&Vec<u32>>, candidates: &mut Vec<u32>| {
                if let Some(bucket) = bucket {
                    for &local in bucket {
                        if !seen[local as usize] {
                            seen[local as usize] = true;
                            candidates.push(local);
                        }
                    }
                }
            };
            for table in &part.tables {
                let sig = table.signature(&tq, self.cfg.bucket_width);
                absorb(table.buckets.get(&sig), &mut candidates);
                for i in 0..sig.len() {
                    for delta in [-1i32, 1] {
                        let mut probe = sig.clone();
                        probe[i] += delta;
                        absorb(table.buckets.get(&probe), &mut candidates);
                    }
                }
            }
            // Small partitions (or empty probes) fall back to scanning the
            // partition — the original implementation verifies candidates
            // exactly, and never returning anything would break recall.
            if candidates.is_empty() {
                candidates = (0..part.ids.len() as u32).collect();
            }
            for local in candidates {
                let id = part.ids[local as usize];
                if skip(id) {
                    continue;
                }
                let ip = self.inner_product(id, q);
                insert_desc(&mut best, k, id, ip);
            }
        }
        best
    }
}

/// Keeps `best` sorted descending by inner product, capped at `k`.
fn insert_desc(best: &mut Vec<(u32, f64)>, k: usize, id: u32, ip: f64) {
    if best.len() >= k {
        if ip <= best[k - 1].1 {
            return;
        }
        best.pop();
    }
    let pos = best
        .binary_search_by(|probe| probe.1.total_cmp(&ip).reverse())
        .unwrap_or_else(|p| p);
    best.insert(pos, (id, ip));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_scan::exact_mips_top_k;

    fn random_data(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn partitions_respect_norm_ratio() {
        let data = random_data(500, 8, 1);
        let idx = H2Alsh::build(data.clone(), 8, H2AlshConfig::default());
        assert!(idx.num_partitions() >= 1);
        for part in &idx.partitions {
            for &id in &part.ids {
                let n = norm(&data[id as usize * 8..(id as usize + 1) * 8]);
                assert!(n <= part.max_norm + 1e-9);
                assert!(n >= 0.9 * part.max_norm - 1e-9);
            }
        }
        // Every id in exactly one partition.
        let total: usize = idx.partitions.iter().map(|p| p.ids.len()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn transformed_points_share_partition_norm() {
        let data = random_data(200, 6, 2);
        let idx = H2Alsh::build(data, 6, H2AlshConfig::default());
        for part in &idx.partitions {
            for local in 0..part.ids.len() {
                let p = &part.transformed[local * 7..(local + 1) * 7];
                assert!(
                    (norm(p) - part.max_norm).abs() < 1e-6,
                    "QNF must equalize norms"
                );
            }
        }
    }

    #[test]
    fn mips_recall_is_high() {
        let data = random_data(2_000, 16, 3);
        let idx = H2Alsh::build(data.clone(), 16, H2AlshConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let mut hit = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q: Vec<f64> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let got = idx.top_k_mips(&q, 10, |_| false);
            let want = exact_mips_top_k(&data, 16, &q, 10);
            let want_ids: Vec<u32> = want.iter().map(|w| w.0).collect();
            hit += got.iter().filter(|g| want_ids.contains(&g.0)).count();
            total += 10;
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.8, "recall {recall} too low");
    }

    #[test]
    fn results_descend_by_inner_product() {
        let data = random_data(500, 8, 5);
        let idx = H2Alsh::build(data, 8, H2AlshConfig::default());
        let q: Vec<f64> = vec![0.3; 8];
        let r = idx.top_k_mips(&q, 8, |_| false);
        for w in r.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn skip_respected() {
        let data = vec![1.0, 0.0, 0.9, 0.0, 0.0, 1.0];
        let idx = H2Alsh::build(data, 2, H2AlshConfig::default());
        let r = idx.top_k_mips(&[1.0, 0.0], 1, |id| id == 0);
        assert_eq!(r[0].0, 1, "best non-skipped item");
    }

    #[test]
    fn early_termination_on_norm_bound() {
        // One giant-norm item and many tiny ones: after the giant is
        // found, tiny partitions cannot contain a better inner product.
        let mut data = vec![100.0, 0.0];
        data.extend(random_data(300, 2, 6).iter().map(|v| v * 0.01));
        let idx = H2Alsh::build(data, 2, H2AlshConfig::default());
        let r = idx.top_k_mips(&[1.0, 0.0], 1, |_| false);
        assert_eq!(r[0].0, 0);
        assert!((r[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_index() {
        let idx = H2Alsh::build(vec![], 4, H2AlshConfig::default());
        assert!(idx.is_empty());
        assert!(idx.top_k_mips(&[0.0; 4], 5, |_| false).is_empty());
    }

    #[test]
    #[should_panic(expected = "norm ratio")]
    fn invalid_ratio_rejected() {
        let _ = H2Alsh::build(
            vec![1.0],
            1,
            H2AlshConfig {
                norm_ratio: 1.5,
                ..H2AlshConfig::default()
            },
        );
    }
}
