//! Model-checked scenarios over the real facade: the epoch-swap
//! publication protocol of [`VirtualKnowledgeGraph`] is explored under
//! `vkg-sync`'s seeded scheduler, which serializes the threads onto
//! adversarial interleavings and verifies the absence of data races,
//! lock-order inversions, and deadlocks at every step.
//!
//! Run with `cargo test -p vkg-core --features model --test model`.

#![cfg(feature = "model")]

use std::sync::Arc;

use vkg_core::vkg::VirtualKnowledgeGraph;
use vkg_core::{Direction, SplitStrategy, VkgConfig};
use vkg_embed::EmbeddingStore;
use vkg_kg::{AttributeStore, KnowledgeGraph, RelationId};
use vkg_sync::{model, thread};

const SEEDS: u64 = 64;

/// A hand-built world (no training): users u0..u3 at x = i, items
/// m0..m5 at x = 10 + i, "likes" translates by +10, so uᵢ + likes ≈ mᵢ.
fn tiny_vkg() -> (VirtualKnowledgeGraph, RelationId) {
    tiny_vkg_sharded(1)
}

/// [`tiny_vkg`] with an explicit engine shard count, for scenarios that
/// exercise per-shard locks and epochs.
fn tiny_vkg_sharded(shards: usize) -> (VirtualKnowledgeGraph, RelationId) {
    tiny_vkg_config(shards, 0)
}

/// [`tiny_vkg_sharded`] plus an enabled result cache, for scenarios
/// that race cached readers against epoch-bumping writers.
fn tiny_vkg_config(shards: usize, cache_capacity: usize) -> (VirtualKnowledgeGraph, RelationId) {
    let dim = 8;
    let mut g = KnowledgeGraph::new();
    let likes = g.add_relation("likes");
    // A second relation the Fibonacci router places on the other shard
    // at shard count 2 (relation 1 hashes odd), so cross-shard
    // scenarios can drive both shards from one fixture.
    let also = g.add_relation("also");
    let users: Vec<_> = (0..4).map(|i| g.add_entity(&format!("u{i}"))).collect();
    let items: Vec<_> = (0..6).map(|i| g.add_entity(&format!("m{i}"))).collect();
    g.add_triple(users[0], likes, items[0]).expect("fresh edge");
    g.add_triple(users[1], also, items[3]).expect("fresh edge");

    let mut ent = vec![0.0; 10 * dim];
    for (i, _) in users.iter().enumerate() {
        ent[i * dim] = i as f64;
    }
    for (j, _) in items.iter().enumerate() {
        ent[(4 + j) * dim] = 10.0 + j as f64;
        ent[(4 + j) * dim + 1] = 0.5;
    }
    let mut rel = vec![0.0; 2 * dim];
    rel[0] = 10.0;
    rel[1] = 0.5;
    rel[dim] = 10.0;
    rel[dim + 1] = -0.5;
    let store = EmbeddingStore::from_raw(dim, ent, rel);

    let mut attrs = AttributeStore::new();
    for (j, &m) in items.iter().enumerate() {
        attrs.set("year", m, 2000.0 + j as f64);
    }
    let cfg = VkgConfig {
        alpha: 3,
        epsilon: 3.0,
        leaf_capacity: 2,
        fanout: 2,
        beta: 2.0,
        split_strategy: SplitStrategy::Greedy,
        query_aware_cost: true,
        transform_seed: 7,
        threads: 1,
        shards,
        cache_capacity,
    };
    let vkg = VirtualKnowledgeGraph::try_assemble(g, attrs, store, cfg).expect("tiny world");
    let _ = also;
    (vkg, likes)
}

/// Two concurrent writers and a polling reader: every epoch observation
/// is monotone, and after both writers land the epoch counted exactly
/// one publication per write.
#[test]
fn epoch_monotonic_across_concurrent_writers() {
    model::sweep(SEEDS, || {
        let (vkg, likes) = tiny_vkg();
        let vkg = Arc::new(vkg);
        let u1 = vkg.graph().entity_id("u1").expect("u1");
        let m4 = vkg.graph().entity_id("m4").expect("m4");
        let m1 = vkg.graph().entity_id("m1").expect("m1");

        let w1 = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                let (added, _) = vkg
                    .add_fact_dynamic(u1, likes, m4, 2, 0.01)
                    .expect("valid ids");
                assert!(added, "fresh edge");
            })
        };
        let w2 = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || vkg.set_attribute_dynamic("year", m1, 1999.0))
        };
        let reader = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                let mut last = vkg.epoch();
                for _ in 0..3 {
                    let e = vkg.epoch();
                    assert!(e >= last, "epoch went backwards: {last} -> {e}");
                    last = e;
                }
            })
        };
        w1.join().expect("writer 1");
        w2.join().expect("writer 2");
        reader.join().expect("reader");
        assert_eq!(vkg.epoch(), 2, "one publication per write");
    })
    .unwrap_or_else(|v| panic!("epoch-monotonicity model failed: {v}"));
}

/// A reader taking the `(epoch, snapshot)` pair must see either all of
/// an update or none of it — the epoch alone decides which.
#[test]
fn no_torn_snapshot_visibility() {
    model::sweep(SEEDS, || {
        let (vkg, _likes) = tiny_vkg();
        let vkg = Arc::new(vkg);
        let u0 = vkg.graph().entity_id("u0").expect("u0");
        let base = vkg.epoch();

        let writer = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || vkg.set_attribute_dynamic("year", u0, 1987.0))
        };
        let reader = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                let (epoch, snap) = vkg.published();
                let year = snap.attributes().get("year", u0).expect("year column");
                if epoch > base {
                    assert_eq!(year, Some(1987.0), "bumped epoch ⇒ whole update");
                } else {
                    assert_eq!(year, None, "old epoch ⇒ none of the update");
                }
            })
        };
        writer.join().expect("writer");
        reader.join().expect("reader");
        let (epoch, snap) = vkg.published();
        assert_eq!(epoch, base + 1);
        assert_eq!(
            snap.attributes().get("year", u0).expect("year column"),
            Some(1987.0)
        );
    })
    .unwrap_or_else(|v| panic!("torn-snapshot model failed: {v}"));
}

/// `with_published_engine` pins one epoch for its whole closure: while
/// it runs, a concurrent writer cannot publish (writers serialize on
/// the engine lock), so the epoch handed in stays exact. Queries and
/// writes also contend on the engine lock here, which lets the checker
/// watch the engine→published acquisition order from both sides.
#[test]
fn with_published_engine_pins_epoch_against_writer() {
    model::sweep(SEEDS, || {
        let (vkg, likes) = tiny_vkg();
        let vkg = Arc::new(vkg);
        let u0 = vkg.graph().entity_id("u0").expect("u0");
        let m5 = vkg.graph().entity_id("m5").expect("m5");

        let writer = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || vkg.set_attribute_dynamic("year", m5, 2024.0))
        };
        let querier = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                let r = vkg
                    .top_k(u0, likes, Direction::Tails, 2)
                    .expect("valid query");
                assert!(!r.predictions.is_empty());
                assert!(r.predictions.iter().all(|p| p.id != u0.0), "skip self");
            })
        };
        let (pin, epoch_reread, shard_epochs_reread) =
            vkg.with_published_engine(|pin, snap, _shards| {
                assert!(snap.graph().num_entities() >= 10);
                (pin.clone(), vkg.epoch(), vkg.shard_epochs())
            });
        assert_eq!(
            pin.epoch, epoch_reread,
            "no publication can land while the shard locks are held"
        );
        assert_eq!(
            pin.shard_epochs, shard_epochs_reread,
            "shard epochs are pinned with the global epoch"
        );
        writer.join().expect("writer");
        querier.join().expect("querier");
        assert_eq!(vkg.epoch(), 1);
    })
    .unwrap_or_else(|v| panic!("epoch-pinning model failed: {v}"));
}

/// Readers that cloned a snapshot `Arc` before a write keep a frozen,
/// internally consistent view while the writer publishes — the engine's
/// copy-on-write contract, checked against explored schedules.
#[test]
fn pinned_snapshot_stays_frozen_during_publication() {
    model::sweep(SEEDS, || {
        let (vkg, likes) = tiny_vkg();
        let vkg = Arc::new(vkg);
        let u2 = vkg.graph().entity_id("u2").expect("u2");
        let snap = vkg.snapshot();
        let entities_before = snap.graph().num_entities();
        let dim = snap.embeddings().dim();

        let writer = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                vkg.add_entity_dynamic("m_fresh", &vec![30.0; dim])
                    .expect("well-shaped embedding");
            })
        };
        let reader = thread::spawn(move || {
            assert_eq!(snap.graph().num_entities(), entities_before);
            let q = snap
                .query_point_s1(u2, likes, Direction::Tails)
                .expect("pinned view answers");
            assert_eq!(q.len(), snap.embeddings().dim());
        });
        writer.join().expect("writer");
        reader.join().expect("reader");
        assert_eq!(vkg.graph().num_entities(), entities_before + 1);
    })
    .unwrap_or_else(|v| panic!("frozen-snapshot model failed: {v}"));
}

/// Per-shard epochs are monotone under concurrent writers, and a
/// publication bumps the global epoch and shard epochs together —
/// every explored schedule sees the composite epoch vector only move
/// forward, component by component.
#[test]
fn shard_epochs_monotonic_across_concurrent_writers() {
    model::sweep(SEEDS, || {
        let (vkg, likes) = tiny_vkg_sharded(2);
        let also = vkg.graph().relation_id("also").expect("also");
        let vkg = Arc::new(vkg);
        let u2 = vkg.graph().entity_id("u2").expect("u2");
        let m4 = vkg.graph().entity_id("m4").expect("m4");
        let m5 = vkg.graph().entity_id("m5").expect("m5");
        assert_eq!(vkg.shard_epochs().len(), 2, "one epoch per shard");

        let w1 = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                vkg.add_fact_dynamic(u2, likes, m4, 2, 0.01)
                    .expect("valid ids");
            })
        };
        let w2 = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                vkg.add_fact_dynamic(u2, also, m5, 2, 0.01)
                    .expect("valid ids");
            })
        };
        let reader = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                let mut last = vkg.shard_epochs();
                for _ in 0..3 {
                    let now = vkg.shard_epochs();
                    for (s, (&before, &after)) in last.iter().zip(&now).enumerate() {
                        assert!(
                            after >= before,
                            "shard {s} epoch went backwards: {before} -> {after}"
                        );
                    }
                    last = now;
                }
            })
        };
        w1.join().expect("writer 1");
        w2.join().expect("writer 2");
        reader.join().expect("reader");
        assert_eq!(vkg.epoch(), 2, "one publication per write");
    })
    .unwrap_or_else(|v| panic!("shard-epoch monotonicity model failed: {v}"));
}

/// Queries on different relations take different shard locks, a
/// full-engine quiesce takes all of them in ascending order, and the
/// crack log is a leaf lock — the checker verifies every explored
/// interleaving is free of deadlocks and lock-order inversions.
#[test]
fn cross_shard_queries_and_quiesce_are_deadlock_free() {
    model::sweep(SEEDS, || {
        let (vkg, likes) = tiny_vkg_sharded(2);
        let also = vkg.graph().relation_id("also").expect("also");
        let vkg = Arc::new(vkg);
        let u0 = vkg.graph().entity_id("u0").expect("u0");
        let u1 = vkg.graph().entity_id("u1").expect("u1");

        let q_likes = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                let r = vkg
                    .top_k(u0, likes, Direction::Tails, 2)
                    .expect("valid query");
                assert!(!r.predictions.is_empty());
            })
        };
        let q_also = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                let r = vkg
                    .top_k(u1, also, Direction::Tails, 2)
                    .expect("valid query");
                assert!(!r.predictions.is_empty());
            })
        };
        let drainer = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || vkg.quiesce())
        };
        q_likes.join().expect("likes querier");
        q_also.join().expect("also querier");
        drainer.join().expect("drainer");
        vkg.index().check_invariants();
    })
    .unwrap_or_else(|v| panic!("cross-shard deadlock-freedom model failed: {v}"));
}

/// The result cache's epoch validation raced against a writer: when no
/// publication lands between two identical reads, the second (cached)
/// answer must be the first one's exact bits; once the writer lands and
/// the world quiesces, the cached engine's answer must equal a
/// cache-disabled twin that applied the same write — a stale entry is
/// invalidated, never served. The checker also watches the cache
/// stripe lock (acquired under the shard lock) for order inversions,
/// lost updates, and data races on every explored schedule.
#[test]
fn cached_reads_race_writer_without_stale_answers() {
    model::sweep(SEEDS, || {
        let (vkg, likes) = tiny_vkg_config(2, 64);
        let vkg = Arc::new(vkg);
        let u0 = vkg.graph().entity_id("u0").expect("u0");
        let u1 = vkg.graph().entity_id("u1").expect("u1");
        let m4 = vkg.graph().entity_id("m4").expect("m4");

        let writer = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                let (added, _) = vkg
                    .add_fact_dynamic(u1, likes, m4, 2, 0.01)
                    .expect("valid ids");
                assert!(added, "fresh edge");
            })
        };
        let reader = {
            let vkg = Arc::clone(&vkg);
            thread::spawn(move || {
                let before = vkg.epoch();
                let r1 = vkg
                    .top_k(u0, likes, Direction::Tails, 2)
                    .expect("valid query");
                let r2 = vkg
                    .top_k(u0, likes, Direction::Tails, 2)
                    .expect("valid query");
                if vkg.epoch() == before {
                    // No publication interleaved the pair, so whether the
                    // second read hit the cache or recomputed, the answer
                    // is the same bits.
                    assert_eq!(
                        r1.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
                        r2.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
                    );
                    for (a, b) in r1.predictions.iter().zip(&r2.predictions) {
                        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                        assert_eq!(a.probability.to_bits(), b.probability.to_bits());
                    }
                }
            })
        };
        writer.join().expect("writer");
        reader.join().expect("reader");

        // Quiescent cross-check: the hand-built world is deterministic,
        // so a cache-off twin given the same write is the ground truth.
        let (plain, likes_p) = tiny_vkg_sharded(2);
        plain
            .add_fact_dynamic(u1, likes_p, m4, 2, 0.01)
            .expect("valid ids");
        let want = plain
            .top_k(u0, likes_p, Direction::Tails, 2)
            .expect("valid query");
        let got = vkg
            .top_k(u0, likes, Direction::Tails, 2)
            .expect("valid query");
        assert_eq!(
            got.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            want.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            "post-write cached answer matches the cache-off ground truth"
        );
        for (g, w) in got.predictions.iter().zip(&want.predictions) {
            assert_eq!(g.distance.to_bits(), w.distance.to_bits());
        }
        vkg.index().check_invariants();
    })
    .unwrap_or_else(|v| panic!("cache-race model failed: {v}"));
}
