//! Synchronization facade for the vkg workspace.
//!
//! Every crate in the workspace takes its concurrency primitives —
//! [`Mutex`], [`RwLock`], [`Condvar`], [`AtomicU64`], [`AtomicBool`],
//! [`thread::spawn`] — from this crate instead of `std::sync` or
//! `parking_lot` (the `xtask` lint enforces that). The crate has two
//! personalities selected by the `model` cargo feature:
//!
//! * **Passthrough (default).** Thin `#[inline]` newtypes over
//!   `std::sync` that erase poisoning (a panic while holding a lock is
//!   already a bug the panic reports; subsequent threads continue with
//!   the poisoned value like `parking_lot` would). No bookkeeping, no
//!   atomics beyond the wrapped ones — this is what production and the
//!   tier-1 test suite run.
//!
//! * **Model (`--features model`).** The same API routed through an
//!   instrumented runtime ([`model`]): real OS threads are serialized
//!   onto one logical processor, every primitive operation is a *yield
//!   point* where a seed-deterministic randomized scheduler (PCT-style
//!   bounded preemption) may switch threads, and vector-clock
//!   happens-before tracking flags data races ([`RaceCell`]), lock-order
//!   inversions, deadlocks and lost wakeups at the first conflicting
//!   pair. A failing schedule is replayed exactly by re-running its
//!   seed.
//!
//! Instrumentation is *scoped*: only threads spawned inside
//! [`model::check`] (via [`thread::spawn`]) are managed. On any other
//! thread the model-mode primitives silently degrade to plain
//! `std::sync` behavior, so an entire test binary can be compiled with
//! `--features model` and only the model tests pay the cost.
//!
//! ```
//! use vkg_sync::{Mutex, Ordering};
//!
//! let m = Mutex::new(0_u64);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Memory orderings are the std ones in both modes; the model runtime
/// interprets them (Acquire/Release edges join vector clocks, Relaxed
/// transfers nothing).
pub use std::sync::atomic::Ordering;

/// `Arc` is re-exported untouched: reference counting is not a
/// scheduling-visible operation, so the model leaves it alone.
pub use std::sync::Arc;

pub mod pool;
pub mod thread;

#[cfg(not(feature = "model"))]
mod passthrough;
#[cfg(not(feature = "model"))]
pub use passthrough::{
    AtomicBool, AtomicU64, Condvar, Mutex, MutexGuard, RaceCell, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

#[cfg(feature = "model")]
mod instrumented;
#[cfg(feature = "model")]
pub mod model;
#[cfg(feature = "model")]
pub use instrumented::{
    AtomicBool, AtomicU64, Condvar, Mutex, MutexGuard, RaceCell, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};
