// pretend: crates/core/src/geometry/kernels.rs
// Fixture for the no-alloc-in-kernel rule: hot kernel files must not
// allocate per call; sanctioned setup costs carry an explicit allow.

fn hidden_alloc(ids: &[u32]) -> Vec<u32> {
    let mut out = Vec::new(); // expect: no-alloc-in-kernel
    out.extend_from_slice(ids);
    out
}

fn collect_alloc(ids: &[u32]) -> Vec<u64> {
    ids.iter().map(|&i| u64::from(i)).collect() // expect: no-alloc-in-kernel
}

fn clone_alloc(ids: &[u32]) -> Vec<u32> {
    ids.to_vec() // expect: no-alloc-in-kernel
}

fn sanctioned_setup(ids: &[u32]) -> Vec<u32> {
    // lint: allow(no-alloc-in-kernel, one slot vec per pooled call is the sanctioned setup cost)
    ids.to_vec()
}

fn alloc_free(ids: &[u32], out: &mut [u64]) {
    for (o, &i) in out.iter_mut().zip(ids) {
        *o = u64::from(i);
    }
}
