//! Knowledge-graph substrate for virtual knowledge graphs.
//!
//! This crate provides everything the index and query layers need from a
//! knowledge graph *as data*:
//!
//! * interned entities and relationship types ([`ids`]),
//! * a triple store with adjacency lists ([`graph::KnowledgeGraph`]) used to
//!   implement the paper's "skip edges already in `E`" query semantics,
//! * per-entity numeric attributes ([`attributes::AttributeStore`]) that the
//!   aggregate queries (SUM/AVG/MAX/MIN over `age`, `year`, `quality`,
//!   `popularity`, ...) read,
//! * synthetic dataset generators ([`datasets`]) standing in for the paper's
//!   Freebase, MovieLens and Amazon datasets, with power-law degree
//!   distributions ([`zipf`]),
//! * TSV import/export ([`io`]) so externally prepared graphs can be loaded.
//!
//! The paper: Li, Ge, Chen. *Online Indices for Predictive Top-k Entity and
//! Aggregate Queries on Knowledge Graphs*, ICDE 2020.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod datasets;
pub mod error;
pub mod graph;
pub mod ids;
pub mod io;
pub mod stats;
pub mod zipf;

pub use attributes::AttributeStore;
pub use error::{KgError, Result};
pub use graph::KnowledgeGraph;
pub use ids::{EntityId, Interner, RelationId};
pub use stats::GraphStats;
