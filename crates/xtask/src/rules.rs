//! The lint rules and the engine that runs them over scrubbed sources.
//!
//! Every rule reports findings as `file:line:col: rule: message`. A
//! finding is suppressed by an annotation comment
//!
//! ```text
//! // lint: allow(rule-name, free-text reason)
//! ```
//!
//! on the same line as the finding or on a comment line directly above
//! it. The reason is mandatory — an allow without one is itself
//! reported (`malformed-allow`), so suppressions stay auditable.
//! `#[cfg(test)]` regions (the attribute plus the brace-matched item
//! that follows) are exempt from every rule.

use crate::lexer::{scrub, Scrubbed};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// 1-indexed column (byte offset within the line).
    pub col: usize,
    /// Rule identifier, e.g. `no-unwrap`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// `file:line:col: rule: message` — editor-clickable.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    /// GitHub Actions annotation format (`::error file=…`).
    pub fn render_github(&self) -> String {
        format!(
            "::error file={},line={},col={}::{}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Names of all rules, for `allow(..)` validation.
pub const RULES: &[&str] = &[
    "no-unwrap",
    "no-raw-sync",
    "relaxed-justify",
    "no-truncating-cast",
    "no-instant-now",
    "no-raw-timing",
    "no-alloc-in-kernel",
    "no-global-engine-lock",
];

/// A parsed `// lint: allow(rule, reason)` annotation.
struct Allow {
    /// Line the annotation comment sits on.
    line: usize,
    rule: String,
    has_reason: bool,
}

fn parse_allows(scrubbed: &Scrubbed) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &scrubbed.comments {
        // The annotation must *start* the comment — prose or docs that
        // merely mention the syntax (like this crate's own) don't count.
        let Some(rest) = c.text.strip_prefix("lint: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            allows.push(Allow {
                line: c.line,
                rule: String::new(),
                has_reason: false,
            });
            continue;
        };
        let inner = &rest[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), !why.trim().is_empty()),
            None => (inner.trim().to_string(), false),
        };
        allows.push(Allow {
            line: c.line,
            rule,
            has_reason: reason,
        });
    }
    allows
}

/// Lines covered by `#[cfg(test)]` regions: the attribute line through
/// the end of the brace-matched block that follows it.
fn test_region_lines(code: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut offset = 0usize;
    let bytes = code.as_bytes();
    while let Some(found) = code[offset..].find("#[cfg(test)]") {
        let start = offset + found;
        let start_line = line_of(code, start);
        // Find the opening brace of the item the attribute decorates.
        let mut i = start;
        while i < bytes.len() && bytes[i] != b'{' {
            i += 1;
        }
        let mut depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let end_line = line_of(code, i.min(bytes.len().saturating_sub(1)));
        regions.push((start_line, end_line));
        offset = i.min(bytes.len());
        if offset <= start {
            break;
        }
    }
    regions
}

fn line_of(code: &str, byte: usize) -> usize {
    code.as_bytes()[..byte.min(code.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Byte offset → (line, col), both 1-indexed.
fn position(code: &str, byte: usize) -> (usize, usize) {
    let prefix = &code.as_bytes()[..byte.min(code.len())];
    let line = prefix.iter().filter(|&&b| b == b'\n').count() + 1;
    let col = byte
        - prefix
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1)
        + 1;
    (line, col)
}

/// Whether `path` (repo-relative, `/`-separated) is in scope for a rule.
struct Scope;

impl Scope {
    /// The panic-free zones: the serving layer, the core's facade,
    /// snapshot, query, and index modules, the data-ingest crates
    /// (`vkg-kg`, `vkg-embed`) whose IO/parse paths feed everything
    /// else, and the bench harness (a crashed load generator or
    /// experiment sweep loses the whole run's results).
    fn no_unwrap(path: &str) -> bool {
        path.starts_with("crates/server/src/")
            || path == "crates/core/src/vkg.rs"
            || path == "crates/core/src/snapshot.rs"
            || path.starts_with("crates/core/src/query/")
            || path.starts_with("crates/core/src/index/")
            || path.starts_with("crates/kg/src/")
            || path.starts_with("crates/embed/src/")
            || path.starts_with("crates/bench/src/")
    }

    /// Everything except `vkg-sync` itself (and vendored shims) must go
    /// through the facade for lock/atomic primitives. Only shipped code
    /// (`src/` trees) is in scope — integration tests may use std
    /// helpers like `Barrier` that the facade deliberately omits.
    fn no_raw_sync(path: &str) -> bool {
        path.starts_with("crates/") && !path.starts_with("crates/sync/") && path.contains("/src/")
    }

    /// Same scope as `no_raw_sync`: every `Ordering::Relaxed` in the
    /// product crates needs a written justification.
    fn relaxed_justify(path: &str) -> bool {
        Self::no_raw_sync(path)
    }

    /// The fail-closed decode paths.
    fn wire_decode(path: &str) -> bool {
        path == "crates/server/src/wire.rs" || path == "crates/server/src/protocol.rs"
    }

    /// The per-call hot paths that must not allocate: the blocked
    /// distance kernels and the pool's chunk-claim loop (DESIGN.md
    /// §3.4). Setup-time allocations are waived explicitly with
    /// `// lint: allow(no-alloc-in-kernel, …)`.
    fn alloc_free_kernel(path: &str) -> bool {
        path == "crates/core/src/geometry/kernels.rs" || path == "crates/sync/src/pool.rs"
    }

    /// All shipped code takes time through the `vkg_obs::Clock` seam
    /// (`Clock`/`Stopwatch`) so tests can mock it — except `vkg-obs`
    /// itself (the seam's implementation sits on `Instant`) and the
    /// bench binaries, whose open-loop pacing wants raw monotonic time.
    /// Decode files are additionally covered by `no-instant-now`.
    fn no_raw_timing(path: &str) -> bool {
        path.starts_with("crates/")
            && path.contains("/src/")
            && !path.starts_with("crates/obs/src/")
            && !path.starts_with("crates/bench/src/bin/")
    }

    /// Every engine lock must live inside the shard router: a
    /// `RwLock<IndexState>` constructed anywhere else reintroduces the
    /// single global lock the sharded engine exists to remove.
    fn no_global_engine_lock(path: &str) -> bool {
        path.starts_with("crates/")
            && path.contains("/src/")
            && path != "crates/core/src/engine/shard.rs"
    }
}

/// Runs every rule over one file. `rel_path` must be repo-relative with
/// `/` separators.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let scrubbed = scrub(src);
    let allows = parse_allows(&scrubbed);
    let test_regions = test_region_lines(&scrubbed.code);
    let mut findings = Vec::new();

    // Malformed allows are findings themselves, never suppressions.
    for a in &allows {
        if a.rule.is_empty() || !a.has_reason {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: a.line,
                col: 1,
                rule: "malformed-allow",
                message: "lint: allow(rule, reason) requires both a rule and a reason".to_string(),
            });
        } else if !RULES.contains(&a.rule.as_str()) {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: a.line,
                col: 1,
                rule: "malformed-allow",
                message: format!("unknown rule `{}` in lint: allow(..)", a.rule),
            });
        }
    }

    let mut push = |byte: usize, rule: &'static str, message: String| {
        let (line, col) = position(&scrubbed.code, byte);
        if test_regions.iter().any(|&(s, e)| s <= line && line <= e) {
            return;
        }
        // Suppressed by a valid allow on this line or the line above.
        let suppressed = allows.iter().any(|a| {
            a.has_reason
                && a.rule == rule
                && (a.line == line || a.line + 1 == line || a.line + 2 == line)
        });
        if suppressed {
            return;
        }
        findings.push(Finding {
            file: rel_path.to_string(),
            line,
            col,
            rule,
            message,
        });
    };

    let code = &scrubbed.code;

    if Scope::no_unwrap(rel_path) {
        for (needle, what) in [
            (".unwrap()", "unwrap() can panic"),
            (".expect(", "expect() can panic"),
            ("panic!", "panic! aborts the worker"),
            ("unreachable!", "unreachable! aborts the worker"),
            ("todo!", "todo! aborts the worker"),
        ] {
            for at in find_all(code, needle) {
                push(
                    at,
                    "no-unwrap",
                    format!(
                        "{what}; return a typed error instead, or annotate with \
                         `// lint: allow(no-unwrap, why it cannot fire)`"
                    ),
                );
            }
        }
    }

    if Scope::no_raw_sync(rel_path) {
        for primitive in [
            "std::sync::Mutex",
            "std::sync::RwLock",
            "std::sync::Condvar",
            "std::sync::Barrier",
            "std::sync::atomic",
            "parking_lot",
        ] {
            for at in find_all(code, primitive) {
                push(
                    at,
                    "no-raw-sync",
                    format!(
                        "direct use of `{primitive}`; go through `vkg_sync` so model \
                         checking sees this synchronization"
                    ),
                );
            }
        }
        // Grouped imports: `use std::sync::{…, Mutex, …}`.
        for at in find_all(code, "use std::sync::{") {
            let rest = &code[at..code.len().min(at + 200)];
            let inner_end = rest.find('}').unwrap_or(rest.len());
            let inner = &rest[..inner_end];
            for primitive in ["Mutex", "RwLock", "Condvar", "Barrier"] {
                if contains_word(inner, primitive) {
                    push(
                        at,
                        "no-raw-sync",
                        format!(
                            "`{primitive}` imported from `std::sync`; go through \
                             `vkg_sync` so model checking sees this synchronization"
                        ),
                    );
                }
            }
        }
    }

    if Scope::relaxed_justify(rel_path) {
        for at in find_all(code, "Ordering::Relaxed") {
            let (line, _) = position(code, at);
            // The justification may sit up to three lines above the
            // `Relaxed` token: rustfmt wraps long statements, and the
            // justification itself may wrap across comment lines.
            let justified = scrubbed.comments.iter().any(|c| {
                c.text.contains("relaxed:") && line.saturating_sub(3) <= c.line && c.line <= line
            });
            if !justified {
                push(
                    at,
                    "relaxed-justify",
                    "Ordering::Relaxed without a `// relaxed: <why no ordering is needed>` \
                     comment on this or the preceding line"
                        .to_string(),
                );
            }
        }
    }

    if Scope::no_global_engine_lock(rel_path) {
        for needle in [
            "RwLock<IndexState",
            "RwLock::new(IndexState",
            "RwLock::with_name(IndexState",
        ] {
            for at in find_all(code, needle) {
                push(
                    at,
                    "no-global-engine-lock",
                    "engine state must be locked per shard; construct IndexState locks \
                     only inside the shard router (crates/core/src/engine/shard.rs)"
                        .to_string(),
                );
            }
        }
    }

    if Scope::wire_decode(rel_path) {
        for narrow in [
            " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
        ] {
            for at in find_all(code, narrow) {
                // Make sure the match is the whole cast target (` as u8`
                // must not fire inside ` as u864`-like idents — none
                // exist, but stay principled).
                let end = at + narrow.len();
                if code.as_bytes().get(end).copied().is_some_and(is_ident_byte) {
                    continue;
                }
                push(
                    at + 1,
                    "no-truncating-cast",
                    format!(
                        "truncating `{}` cast in a decode path; use `try_from` with a \
                         typed error, or annotate with the bound that makes it safe",
                        narrow.trim()
                    ),
                );
            }
        }
        for at in find_all(code, "Instant::now()") {
            push(
                at,
                "no-instant-now",
                "decode paths must be deterministic; take time at the call site, \
                 not inside the codec"
                    .to_string(),
            );
        }
    }

    if Scope::no_raw_timing(rel_path) {
        for needle in ["Instant::now(", "SystemTime::now("] {
            for at in find_all(code, needle) {
                push(
                    at,
                    "no-raw-timing",
                    format!(
                        "`{needle}..)` bypasses the clock seam; take time via \
                         `vkg_obs::Clock`/`Stopwatch` so tests can mock it, or annotate \
                         with `// lint: allow(no-raw-timing, why raw time is required)`"
                    ),
                );
            }
        }
    }

    if Scope::alloc_free_kernel(rel_path) {
        for needle in ["Vec::new", ".collect(", ".to_vec("] {
            for at in find_all(code, needle) {
                push(
                    at,
                    "no-alloc-in-kernel",
                    format!(
                        "`{needle}` allocates inside a hot kernel/steal-loop file; hoist \
                         the allocation to the caller, or annotate a sanctioned setup \
                         cost with `// lint: allow(no-alloc-in-kernel, why)`"
                    ),
                );
            }
        }
    }

    findings
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut offset = 0;
    while let Some(at) = haystack[offset..].find(needle) {
        out.push(offset + at);
        offset += at + needle.len();
    }
    out
}

fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut offset = 0;
    while let Some(at) = text[offset..].find(word) {
        let start = offset + at;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        offset = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_flagged_in_scope_only() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_source("crates/server/src/server.rs", src).len(), 1);
        assert_eq!(lint_source("crates/core/src/engine.rs", src).len(), 0);
        assert_eq!(lint_source("crates/core/src/query/topk.rs", src).len(), 1);
        assert_eq!(lint_source("crates/bench/src/workload.rs", src).len(), 1);
        assert_eq!(
            lint_source("crates/bench/src/bin/serve_load.rs", src).len(),
            1
        );
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f() {\n    // lint: allow(no-unwrap, infallible: len checked above)\n    x.unwrap();\n}\n";
        assert_eq!(lint_source("crates/server/src/server.rs", src), vec![]);
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "fn f() {\n    // lint: allow(no-unwrap)\n    x.unwrap();\n}\n";
        let f = lint_source("crates/server/src/server.rs", src);
        assert!(f.iter().any(|f| f.rule == "malformed-allow"));
        assert!(f.iter().any(|f| f.rule == "no-unwrap"), "not suppressed");
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let src = "// lint: allow(no-such-rule, because)\nfn f() {}\n";
        let f = lint_source("crates/server/src/server.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "malformed-allow");
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); panic!(\"t\"); }\n}\n";
        assert_eq!(lint_source("crates/server/src/server.rs", src), vec![]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { let s = \"x.unwrap()\"; } // panic! here\n";
        assert_eq!(lint_source("crates/server/src/server.rs", src), vec![]);
    }

    #[test]
    fn raw_sync_imports_flagged() {
        let grouped = "use std::sync::{Arc, Mutex};\n";
        let f = lint_source("crates/core/src/vkg.rs", grouped);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-raw-sync");
        let arc_only = "use std::sync::{Arc, PoisonError};\nuse std::sync::mpsc;\n";
        assert_eq!(lint_source("crates/core/src/vkg.rs", arc_only), vec![]);
        let pl = "use parking_lot::RwLock;\n";
        assert_eq!(lint_source("crates/core/src/vkg.rs", pl).len(), 1);
        assert_eq!(lint_source("crates/sync/src/passthrough.rs", pl), vec![]);
    }

    #[test]
    fn relaxed_needs_justification() {
        let bare = "fn f(a: &A) { a.x.load(Ordering::Relaxed); }\n";
        let f = lint_source("crates/server/src/queue.rs", bare);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "relaxed-justify");
        let justified =
            "fn f(a: &A) {\n    // relaxed: pure statistic\n    a.x.load(Ordering::Relaxed);\n}\n";
        assert_eq!(lint_source("crates/server/src/queue.rs", justified), vec![]);
        let same_line = "fn f(a: &A) { a.x.load(Ordering::Relaxed); // relaxed: stat\n}\n";
        assert_eq!(lint_source("crates/server/src/queue.rs", same_line), vec![]);
    }

    #[test]
    fn truncating_casts_only_in_decode_files() {
        let src = "fn f(x: usize) -> u32 { x as u32 }\n";
        let f = lint_source("crates/server/src/wire.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-truncating-cast");
        assert_eq!(lint_source("crates/server/src/server.rs", src), vec![]);
        // Widening casts are fine even in decode files.
        let widen = "fn f(x: u32) -> u64 { x as u64 }\n";
        assert_eq!(lint_source("crates/server/src/wire.rs", widen), vec![]);
    }

    #[test]
    fn instant_now_flagged_in_decode_files() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let f = lint_source("crates/server/src/protocol.rs", src);
        // Decode files get both the determinism rule and the clock-seam
        // rule — they police different properties of the same call.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.rule == "no-instant-now"));
        assert!(f.iter().any(|f| f.rule == "no-raw-timing"));
    }

    #[test]
    fn raw_timing_flagged_outside_clock_seam() {
        let src = "fn f() { let t = Instant::now(); let w = SystemTime::now(); }\n";
        let f = lint_source("crates/core/src/engine/shard.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "no-raw-timing"));
        // The seam's own implementation and the bench binaries are out
        // of scope; integration tests under `tests/` are too.
        assert_eq!(lint_source("crates/obs/src/clock.rs", src), vec![]);
        assert_eq!(
            lint_source("crates/bench/src/bin/serve_load.rs", src),
            vec![]
        );
        assert_eq!(lint_source("tests/end_to_end.rs", src), vec![]);
        let allowed =
            "fn f() {\n    // lint: allow(no-raw-timing, pacing needs raw monotonic time)\n    \
                       let t = Instant::now();\n}\n";
        assert_eq!(
            lint_source("crates/core/src/engine/shard.rs", allowed),
            vec![]
        );
    }

    #[test]
    fn alloc_flagged_in_kernel_files_only() {
        let src = "fn f() { let v: Vec<u32> = it.collect(); let w = s.to_vec(); }\n";
        let f = lint_source("crates/core/src/geometry/kernels.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "no-alloc-in-kernel"));
        assert_eq!(lint_source("crates/sync/src/pool.rs", src).len(), 2);
        assert_eq!(
            lint_source("crates/core/src/geometry/points.rs", src),
            vec![]
        );
        let allowed = "fn f() {\n    // lint: allow(no-alloc-in-kernel, slot setup)\n    \
                       let v = Vec::new();\n}\n";
        assert_eq!(
            lint_source("crates/core/src/geometry/kernels.rs", allowed),
            vec![]
        );
    }

    #[test]
    fn finding_renders_clickable_and_github() {
        let f = Finding {
            file: "crates/server/src/wire.rs".into(),
            line: 7,
            col: 3,
            rule: "no-unwrap",
            message: "boom".into(),
        };
        assert_eq!(f.render(), "crates/server/src/wire.rs:7:3: no-unwrap: boom");
        assert!(f
            .render_github()
            .starts_with("::error file=crates/server/src/wire.rs,line=7"));
    }
}
