//! Cache parity: the epoch-keyed result cache is a performance layer,
//! never an answer change.
//!
//! A cache hit is only legal if it is **provably identical** to
//! recomputation: entries are validated against the exact pinned
//! `(global epoch, shard epoch)` pair, hits replay the filling query's
//! crack regions so the tree (and the crack log feeding sibling shards)
//! evolves as if every query had executed, and prefix cuts recompute
//! probabilities and the Theorem 2 guarantee from the cached distances
//! — pure functions of the prefix. Proptest drives seeded workloads
//! that interleave `add_fact_dynamic` writers (epoch bumps → lazy
//! invalidation) with repetition-heavy reads (exact hits, prefix hits,
//! warm starts) over shard counts {1, 2, 7}, asserting the cached
//! engine's outcome stream is bit-identical to a cache-disabled twin's.

use std::sync::OnceLock;

use proptest::prelude::*;
use vkg::prelude::*;

/// Shard counts under test — same spread as `shard_parity.rs`.
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn trained() -> &'static (Dataset, EmbeddingStore) {
    static TRAINED: OnceLock<(Dataset, EmbeddingStore)> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let ds = movie_like(&MovieConfig::tiny());
        let (embeddings, _) = TransE::new(TransEConfig {
            dim: 16,
            epochs: 6,
            ..TransEConfig::default()
        })
        .train(&ds.graph);
        (ds, embeddings)
    })
}

fn engine(shards: usize, cache_capacity: usize) -> VirtualKnowledgeGraph {
    let (ds, embeddings) = trained();
    VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        embeddings.clone(),
        VkgConfig {
            shards,
            cache_capacity,
            epsilon: 0.5,
            ..VkgConfig::default()
        },
    )
}

/// One step of a replayable workload. Domains are kept deliberately
/// small so sampled workloads repeat queries — the cache's hot path.
#[derive(Debug, Clone)]
enum Op {
    TopK {
        entity: u32,
        relation: u32,
        direction: Direction,
        k: usize,
    },
    Aggregate {
        entity: u32,
        relation: u32,
        direction: Direction,
    },
    /// A dynamic write: bumps every epoch, so cached entries filled
    /// before it must be invalidated, not served.
    AddFact { h: u32, r: u32, t: u32 },
}

/// The semantic outcome of one op: everything a client can observe,
/// down to the float bits. Cost counters (`s1_evals`,
/// `candidates_examined`, `accessed`) are deliberately excluded — a
/// cache hit reports the filling query's costs, which is the point.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    TopK {
        ids: Vec<u32>,
        distance_bits: Vec<u64>,
        probability_bits: Vec<u64>,
        success_bits: u64,
        misses_bits: u64,
    },
    Aggregate {
        estimate_bits: u64,
        mu_bits: u64,
        mass_bits: u64,
        ball_size: usize,
    },
    Fact {
        added: bool,
        epoch: u64,
    },
    Err(String),
}

fn apply(vkg: &VirtualKnowledgeGraph, op: &Op, relations: u32, entities: u32) -> Outcome {
    match *op {
        Op::TopK {
            entity,
            relation,
            direction,
            k,
        } => match vkg.top_k(
            EntityId(entity),
            RelationId(relation % relations),
            direction,
            k,
        ) {
            Ok(r) => Outcome::TopK {
                ids: r.predictions.iter().map(|p| p.id).collect(),
                distance_bits: r.predictions.iter().map(|p| p.distance.to_bits()).collect(),
                probability_bits: r
                    .predictions
                    .iter()
                    .map(|p| p.probability.to_bits())
                    .collect(),
                success_bits: r.guarantee.success_probability.to_bits(),
                misses_bits: r.guarantee.expected_misses.to_bits(),
            },
            Err(e) => Outcome::Err(e.to_string()),
        },
        Op::Aggregate {
            entity,
            relation,
            direction,
        } => {
            let spec = AggregateSpec::count(0.05);
            match vkg.aggregate(
                EntityId(entity),
                RelationId(relation % relations),
                direction,
                &spec,
            ) {
                Ok(r) => Outcome::Aggregate {
                    estimate_bits: r.estimate.to_bits(),
                    mu_bits: r.bound.mu.to_bits(),
                    mass_bits: r.bound.increment_mass.to_bits(),
                    ball_size: r.ball_size,
                },
                Err(e) => Outcome::Err(e.to_string()),
            }
        }
        Op::AddFact { h, r, t } => {
            match vkg.add_fact_dynamic(
                EntityId(h % entities),
                RelationId(r % relations),
                EntityId(t % entities),
                2,
                0.05,
            ) {
                Ok((added, epoch)) => Outcome::Fact { added, epoch },
                Err(e) => Outcome::Err(e.to_string()),
            }
        }
    }
}

fn direction_strategy() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::Tails), Just(Direction::Heads)]
}

/// Entities are drawn from a small window so workloads revisit queries;
/// `k` spans 1..8 so repeats at different k exercise prefix cuts (k
/// shrinks) and warm starts (k grows) on top of exact hits.
fn op_strategy(entities: u32) -> impl Strategy<Value = Op> {
    let hot = entities.clamp(1, 6);
    prop_oneof![
        6 => (0..hot, 0u32..4, direction_strategy(), 1usize..8).prop_map(
            |(entity, relation, direction, k)| Op::TopK { entity, relation, direction, k }
        ),
        2 => (0..hot, 0u32..4, direction_strategy()).prop_map(
            |(entity, relation, direction)| Op::Aggregate { entity, relation, direction }
        ),
        1 => (0..entities, 0u32..8, 0..entities).prop_map(
            |(h, r, t)| Op::AddFact { h, r, t }
        ),
    ]
}

/// Reads a counter from the facade's metrics registry by name.
fn counter(vkg: &VirtualKnowledgeGraph, name: &str) -> u64 {
    vkg.metrics_snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// At every shard count, the cached engine replays the interleaved
    /// read/write workload to the exact same outcome sequence as a
    /// cache-disabled engine.
    #[test]
    fn cached_answers_are_bit_identical_under_writes(
        ops in prop::collection::vec(
            op_strategy(trained().0.graph.num_entities() as u32),
            1..32,
        )
    ) {
        let relations = trained().0.graph.num_relations() as u32;
        let entities = trained().0.graph.num_entities() as u32;
        for &shards in &SHARD_COUNTS {
            let plain = engine(shards, 0);
            let cached = engine(shards, 1024);
            for (i, op) in ops.iter().enumerate() {
                let want = apply(&plain, op, relations, entities);
                let got = apply(&cached, op, relations, entities);
                prop_assert_eq!(
                    &got,
                    &want,
                    "op {} ({:?}) diverged with cache on at {} shards",
                    i,
                    op,
                    shards
                );
            }
            cached.index().check_invariants();
        }
    }
}

/// A deterministic repeat-heavy workload actually hits: ten identical
/// queries cost one computation and nine whole-result hits, and the
/// hits return the exact bits of the first answer.
#[test]
fn repeats_hit_and_match_first_answer() {
    let vkg = engine(2, 1024);
    let relations = trained().0.graph.num_relations() as u32;
    let op = Op::TopK {
        entity: 0,
        relation: 1,
        direction: Direction::Tails,
        k: 5,
    };
    let first = apply(&vkg, &op, relations, 1);
    for _ in 0..9 {
        assert_eq!(apply(&vkg, &op, relations, 1), first);
    }
    assert_eq!(counter(&vkg, "core.cache.hit"), 9);
    assert_eq!(counter(&vkg, "core.cache.miss"), 1);
}

/// Shrinking k after a larger fill answers by prefix cut; growing k
/// warm-starts rather than hitting; a write invalidates lazily.
#[test]
fn prefix_hits_warm_starts_and_invalidation_are_counted() {
    let plain = engine(2, 0);
    let cached = engine(2, 1024);
    let relations = trained().0.graph.num_relations() as u32;
    let entities = trained().0.graph.num_entities() as u32;
    let at = |k: usize| Op::TopK {
        entity: 1,
        relation: 0,
        direction: Direction::Tails,
        k,
    };
    // Fill at k=6, cut to k=3, grow to k=8, then write and re-query.
    let script = [at(6), at(3), at(8), Op::AddFact { h: 0, r: 0, t: 3 }, at(8)];
    for op in &script {
        assert_eq!(
            apply(&cached, op, relations, entities),
            apply(&plain, op, relations, entities),
            "diverged on {op:?}"
        );
    }
    assert_eq!(
        counter(&cached, "core.cache.prefix_hit"),
        1,
        "k=3 after k=6"
    );
    assert!(
        counter(&cached, "core.cache.invalidate") >= 1,
        "the post-write re-query must remove the stale k=8 entry"
    );
}
