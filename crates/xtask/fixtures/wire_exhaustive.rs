// pretend: crates/server/src/protocol.rs
// Fixture for the wire-exhaustive rule: every opcode const in an `op`
// module must be matched somewhere in a `decode` function. (The
// DESIGN.md half of the rule only runs on the real workspace tree,
// where the doc text is available to check against.)

mod op {
    pub const PING: u8 = 0x01;
    pub const PONG: u8 = 0x02;
    pub const QUERY: u8 = 0x03; // expect: wire-exhaustive
}

pub enum Frame {
    Ping,
    Pong,
}

pub fn decode(opcode: u8) -> Option<Frame> {
    match opcode {
        op::PING => Some(Frame::Ping),
        op::PONG => Some(Frame::Pong),
        _ => None,
    }
}
