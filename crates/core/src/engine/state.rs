//! The mutable index half of the split facade.
//!
//! [`IndexState`] owns the cracking (or bulk-loaded) [`CrackingIndex`]
//! and all query pipelines that reshape it. The immutable inputs —
//! graph, embeddings, transform — arrive per call as a
//! [`VkgSnapshot`], so a facade can guard *only* this state with a lock
//! while readers use the snapshot lock-free.

use vkg_kg::{EntityId, RelationId};
use vkg_sync::pool::Pool;

use crate::error::{VkgError, VkgResult};
use crate::geometry::Mbr;
use crate::index::CrackingIndex;
use crate::query::aggregate::{
    self, AggregateKind, AggregateResult, AggregateSpec, DeviationBound,
};
use crate::query::probability::{inverse_distance_probabilities, radius_for_threshold};
use crate::query::topk::{find_top_k, find_top_k_warm, TopKResult};
use crate::snapshot::{Direction, VkgSnapshot};

use super::{Accuracy, EngineStats, Neighbor, QueryEngine};

/// The cracking/bulk-loaded index plus its query pipelines, behind the
/// [`QueryEngine`] trait.
#[derive(Debug)]
pub struct IndexState {
    index: CrackingIndex,
    name: &'static str,
    accuracy: Accuracy,
}

impl IndexState {
    /// An **online cracking** index over the snapshot's projected points
    /// (starts as a root-only tree; queries shape it). The configured
    /// `threads` width drives the JL projection, the root sort orders
    /// and every later crack/search through one shared [`Pool`].
    pub fn cracking(snap: &VkgSnapshot) -> Self {
        let cfg = snap.config();
        let pool = Pool::new(cfg.threads);
        let mut index = CrackingIndex::with_pool(
            snap.project_points_pooled(&pool),
            cfg.leaf_capacity,
            cfg.fanout,
            cfg.beta,
            cfg.split_strategy,
            pool,
        );
        index.set_query_aware_cost(cfg.query_aware_cost);
        Self {
            index,
            name: "cracking",
            accuracy: Accuracy::Approximate { min_overlap: 0.5 },
        }
    }

    /// A fully **bulk-loaded** offline index (the BULKLOADCHUNK baseline
    /// of §VI). Like [`IndexState::cracking`], the configured `threads`
    /// width parallelizes the projection and the offline build.
    pub fn bulk_loaded(snap: &VkgSnapshot) -> Self {
        let cfg = snap.config();
        let pool = Pool::new(cfg.threads);
        let index = CrackingIndex::bulk_load_with_pool(
            snap.project_points_pooled(&pool),
            cfg.leaf_capacity,
            cfg.fanout,
            cfg.beta,
            pool,
        );
        Self {
            index,
            name: "bulk-load R-tree",
            accuracy: Accuracy::Approximate { min_overlap: 0.5 },
        }
    }

    /// Wraps an already-built index (ablations that tweak the build).
    pub fn from_index(index: CrackingIndex, name: &'static str) -> Self {
        Self {
            index,
            name,
            accuracy: Accuracy::Approximate { min_overlap: 0.5 },
        }
    }

    /// [`QueryEngine::top_k_filtered`] warm-started from trusted
    /// `(id, s1_distance)` pairs — the result cache's partial-hit path
    /// (a cached top-k′ answer for the *same* query at the *same*
    /// epochs seeds Algorithm 3's shrinking ball). With `warm` empty
    /// this is exactly `top_k_filtered`.
    #[allow(clippy::too_many_arguments)]
    pub fn top_k_warm(
        &mut self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        warm: &[(u32, f64)],
        filter: &dyn Fn(EntityId) -> bool,
    ) -> VkgResult<TopKResult> {
        let q_s1 = snap.query_point_s1(entity, relation, direction)?;
        let q_s2 = snap.project(&q_s1);
        let known = snap.known_neighbors(entity, relation, direction);
        let cfg = snap.config();
        let embeddings = snap.embeddings();
        find_top_k_warm(
            &mut self.index,
            &q_s2,
            k,
            cfg.epsilon,
            cfg.alpha,
            warm,
            |_, id| embeddings.distance_to_entity(&q_s1, EntityId(id)),
            |id| id == entity.0 || known.contains(&id) || !filter(EntityId(id)),
        )
    }

    /// The underlying index (benchmarks, invariant checks).
    pub fn index(&self) -> &CrackingIndex {
        &self.index
    }

    /// Mutable access to the underlying index (dynamic updates).
    pub fn index_mut(&mut self) -> &mut CrackingIndex {
        &mut self.index
    }
}

impl QueryEngine for IndexState {
    fn name(&self) -> &str {
        self.name
    }

    fn accuracy(&self) -> Accuracy {
        self.accuracy
    }

    fn top_k_filtered(
        &mut self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        filter: &dyn Fn(EntityId) -> bool,
    ) -> VkgResult<TopKResult> {
        let q_s1 = snap.query_point_s1(entity, relation, direction)?;
        let q_s2 = snap.project(&q_s1);
        let known = snap.known_neighbors(entity, relation, direction);
        let cfg = snap.config();
        let embeddings = snap.embeddings();
        find_top_k(
            &mut self.index,
            &q_s2,
            k,
            cfg.epsilon,
            cfg.alpha,
            |_, id| embeddings.distance_to_entity(&q_s1, EntityId(id)),
            |id| id == entity.0 || known.contains(&id) || !filter(EntityId(id)),
        )
    }

    /// Exact S₂ kNN through the index: the S₁ oracle of Algorithm 3 is
    /// replaced by the S₂ distance itself, so the (1+ε) ball certifies
    /// the exact answer.
    fn knn_in_s2(
        &mut self,
        snap: &VkgSnapshot,
        q_s1: &[f64],
        k: usize,
    ) -> VkgResult<Vec<Neighbor>> {
        let q_s2 = snap.project(q_s1);
        let cfg = snap.config();
        let result = find_top_k(
            &mut self.index,
            &q_s2,
            k,
            cfg.epsilon,
            cfg.alpha,
            // The oracle reads the index's own stored S₂ points (handed
            // through by the search), so no per-candidate re-projection.
            |points, id| points.distance_sq(id, &q_s2).sqrt(),
            |_| false,
        )?;
        Ok(result
            .predictions
            .into_iter()
            .map(|p| Neighbor {
                id: p.id,
                distance: p.distance,
            })
            .collect())
    }

    /// Answers an aggregate query over the probability ball around the
    /// query center (§V-B).
    fn aggregate(
        &mut self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        spec: &AggregateSpec,
    ) -> VkgResult<AggregateResult> {
        // Validate the attribute and threshold before any work.
        let attr = match spec.kind {
            AggregateKind::Count => None,
            _ => {
                let name = spec
                    .attribute
                    .as_deref()
                    .ok_or(VkgError::MissingAttribute)?;
                if !snap.attributes().has_attribute(name) {
                    return Err(VkgError::UnknownAttribute(name.to_owned()));
                }
                Some(name.to_owned())
            }
        };
        if !spec.p_tau.is_finite() || spec.p_tau <= 0.0 || spec.p_tau > 1.0 {
            return Err(VkgError::InvalidParameter(format!(
                "probability threshold p_τ = {} outside (0, 1]",
                spec.p_tau
            )));
        }

        // Step 1: nearest predicted entity fixes d_min (probability 1).
        let top1 = self.top_k(snap, entity, relation, direction, 1)?;
        let Some(nearest) = top1.predictions.first().cloned() else {
            return Ok(AggregateResult {
                estimate: 0.0,
                accessed: 0,
                ball_size: 0,
                bound: DeviationBound {
                    mu: 0.0,
                    increment_mass: 0.0,
                },
                crack_regions: top1.crack_region.into_iter().collect(),
            });
        };
        let d_min = nearest.distance;
        let r_tau = radius_for_threshold(d_min, spec.p_tau);

        // Step 2: gather the ball members through the index.
        let q_s1 = snap.query_point_s1(entity, relation, direction)?;
        let q_s2 = snap.project(&q_s1);
        let cfg = snap.config();
        let region = Mbr::of_ball(&q_s2, r_tau * (1.0 + cfg.epsilon));
        let known = snap.known_neighbors(entity, relation, direction);
        // Candidates arrive with their contour element's member summary
        // (MBR plus centroid and spread of the in-region members). The
        // summary yields a cheap proxy for each member's S₁ distance: it
        // ranks which points to *access* and feeds the probability
        // estimate for the ones we never access (§V-B: the index knows
        // per-element counts and average distances; only accessed points
        // get exact distances).
        let mut filtered: Vec<(u32, f64)> = Vec::new();
        // The summary population is filtered the same way as the
        // candidates: the query entity itself, its already-known
        // neighbors (E′ semantics) and — for attribute aggregates —
        // entities without the attribute are excluded *before* the
        // element statistics are taken. Attribute presence is catalog
        // metadata, not a record access.
        let attributes = snap.attributes();
        let keep = |id: u32| {
            if id == entity.0 || known.contains(&id) {
                return false;
            }
            match &attr {
                None => true,
                Some(name) => matches!(attributes.get(name, EntityId(id)), Ok(Some(_))),
            }
        };
        let s2_bias = vkg_transform::bounds::inverse_projected_distance_bias(cfg.alpha);
        self.index.search_region_elements(
            &region,
            |_| true,
            |id, summary| {
                if !keep(id) {
                    return;
                }
                // Two element-level proxies for the S₁ distance of a member.
                // The element-center distance works when the element is small
                // relative to its distance from the query; when the query
                // sits *inside* a coarse element it collapses towards zero,
                // so it is floored by the member cloud's RMS distance
                // √(‖q − centroid‖² + spread²), de-biased by E[√α/χ_α] for
                // the S₂ → S₁ inverse-distance projection bias.
                let center = summary.mbr.center();
                // lint: allow(no-panic-on-request-path, MBR centers have the index dimensionality, which q_s2 never exceeds)
                let d_center: f64 = center[..q_s2.len()]
                    .iter()
                    .zip(&q_s2)
                    .map(|(c, q)| (c - q) * (c - q))
                    .sum::<f64>()
                    .sqrt();
                let delta_sq: f64 = summary
                    .centroid
                    .iter()
                    .zip(&q_s2)
                    .map(|(c, q)| (c - q) * (c - q))
                    .sum();
                let d_moment = (delta_sq + summary.spread_sq).sqrt() * s2_bias;
                let d_proxy = d_center.max(d_moment);
                // The anchoring nearest entity is always accessed first.
                let key = if id == nearest.id { 0.0 } else { d_proxy };
                filtered.push((id, key));
            },
        );
        filtered.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        // Step 3: access the `a` most-promising points exactly; estimate
        // the rest from their element geometry.
        let budget = spec.sample_size.unwrap_or(usize::MAX);
        let mut accessed: Vec<(f64, f64)> = Vec::new(); // (distance, value)
        let mut unaccessed_dists: Vec<f64> = Vec::new();
        let mut s1_evals = 0u64;
        let embeddings = snap.embeddings();
        for (id, approx) in filtered {
            if accessed.len() < budget {
                let d = embeddings.distance_to_entity(&q_s1, EntityId(id));
                s1_evals += 1;
                if d > r_tau {
                    continue;
                }
                let value = match &attr {
                    None => 1.0,
                    Some(name) => attributes
                        .get(name, EntityId(id))
                        .map_err(VkgError::from)?
                        .ok_or_else(|| VkgError::UnknownAttribute(name.clone()))?,
                };
                accessed.push((d, value));
            } else if approx <= r_tau {
                unaccessed_dists.push(approx);
            }
        }
        self.index.stats_mut().s1_distance_evals += s1_evals;
        accessed.sort_by(|x, y| x.0.total_cmp(&y.0));

        let distances: Vec<f64> = accessed.iter().map(|m| m.0).collect();
        let values: Vec<f64> = accessed.iter().map(|m| m.1).collect();
        // Probabilities are relative to the closest member of the result
        // population (for attribute aggregates the closest *attribute
        // holder*, which may differ from the global anchor).
        let ref_d = distances.first().copied().unwrap_or(d_min).max(1e-12);
        let mut probs = inverse_distance_probabilities(&distances);
        probs.extend(
            unaccessed_dists
                .into_iter()
                .map(|d| (ref_d / d.max(ref_d)).min(1.0)),
        );
        let a = accessed.len();
        let b = probs.len();

        // Step 4: estimate + Theorem 4 bound, then crack for the region.
        let estimate = match spec.kind {
            AggregateKind::Count => aggregate::estimate_count(&probs),
            AggregateKind::Sum => aggregate::estimate_sum(&values, &probs),
            AggregateKind::Avg => aggregate::estimate_avg(&values, &probs),
            // lint: allow(no-panic-on-request-path, a = accessed.len() <= probs.len(): probs holds accessed then unaccessed)
            AggregateKind::Max => aggregate::estimate_max(&values, &probs[..a]),
            AggregateKind::Min => aggregate::estimate_min(&values, &probs[..a]),
        };
        // v_m for the unaccessed points, estimated from the sample (the
        // paper's no-domain-knowledge alternative). For AVG the paper
        // divides both μ and the martingale increments by the count, so
        // the increment values are v_i / E[count].
        let v_max = values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let bound = if spec.kind == AggregateKind::Avg {
            let count = aggregate::estimate_count(&probs).max(1.0);
            let scaled: Vec<f64> = values.iter().map(|v| v / count).collect();
            // lint: allow(no-panic-on-request-path, a = accessed.len() <= probs.len(): probs holds accessed then unaccessed)
            aggregate::deviation_bound(estimate, &scaled, &probs[a..], v_max / count)
        } else {
            // lint: allow(no-panic-on-request-path, a = accessed.len() <= probs.len(): probs holds accessed then unaccessed)
            aggregate::deviation_bound(estimate, &values, &probs[a..], v_max)
        };

        self.index.crack(&region);

        // Both cracks this query performed, in execution order, so a
        // cache hit can replay them (inner top-1 first, then the ball).
        let mut crack_regions: Vec<Mbr> = top1.crack_region.into_iter().collect();
        crack_regions.push(region);

        Ok(AggregateResult {
            estimate,
            accessed: a,
            ball_size: b,
            bound,
            crack_regions,
        })
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            nodes: self.index.node_count(),
            bytes: self.index.index_bytes(),
            counters: *self.index.stats(),
        }
    }

    fn reset_access_counters(&mut self) {
        self.index.stats_mut().reset_access_counters();
    }
}
