//! Interned identifiers for entities and relationship types.
//!
//! Knowledge graphs name entities and relations with strings ("Amy",
//! `/people/person/profession`). All internal processing uses dense `u32`
//! ids so they double as indices into flat vectors (embedding matrices,
//! attribute columns, adjacency offsets).

use std::collections::HashMap;

/// Dense identifier of an entity (vertex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Dense identifier of a relationship type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

impl EntityId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A string interner assigning dense `u32` ids in insertion order.
///
/// Used for both entity names and relation names.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        // lint: allow(no-unwrap, 2^32 interned names would exhaust memory long before the id space)
        let id = u32::try_from(self.names.len()).expect("more than u32::MAX interned names");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up the id of `name` without interning it.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Returns the name for `id`, if assigned.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Amy");
        let b = i.intern("Bob");
        assert_ne!(a, b);
        assert_eq!(i.intern("Amy"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut i = Interner::new();
        let id = i.intern("restaurant_2");
        assert_eq!(i.get("restaurant_2"), Some(id));
        assert_eq!(i.name(id), Some("restaurant_2"));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.name(999), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        for n in 0..100 {
            assert_eq!(i.intern(&format!("n{n}")), n);
        }
        let collected: Vec<u32> = i.iter().map(|(id, _)| id).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn display_formats() {
        assert_eq!(EntityId(4).to_string(), "e4");
        assert_eq!(RelationId(2).to_string(), "r2");
        assert_eq!(EntityId(4).index(), 4);
        assert_eq!(RelationId(2).index(), 2);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
