//! The [`Strategy`] trait and the built-in value generators.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of an output type.
///
/// Unlike the real crate there is no value tree and no shrinking:
/// `generate` draws one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// A strategy that always yields a clone of one value (mirrors
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boxes a strategy for use in heterogeneous unions ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// A weighted choice over strategies with a common value type; the
/// expansion of [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    /// Panics if `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u32 = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u32 = self.options.iter().map(|(w, _)| *w).sum();
        let mut draw = rng.gen_range(0..total);
        for (weight, strategy) in &self.options {
            if draw < *weight {
                return strategy.generate(rng);
            }
            draw -= *weight;
        }
        // lint: allow(no-unwrap, the draw is < the sum of weights, so the loop above always returns)
        unreachable!("weighted draw exceeded total weight")
    }
}

/// String literals act as regex strategies (subset; see
/// [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
