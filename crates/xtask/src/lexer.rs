//! A small Rust lexer for linting purposes: it separates *code* from
//! *comments and string contents* without parsing. The output is a
//! scrubbed copy of the source — byte-for-byte the same length, with
//! every comment and every string/char literal body replaced by spaces
//! — plus the list of comments with their line numbers. Rules match
//! against the scrubbed text (so `"panic!"` inside a string never
//! fires) and consult the comment list for `// lint: allow(..)` and
//! `// relaxed:` annotations.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings `r#"…"#` (any hash depth), byte/raw-byte
//! strings, char literals, and the char-vs-lifetime ambiguity (`'a'`
//! is a literal, `'a` in `<'a>` is not).

/// One comment in the original source.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed line the comment starts on.
    pub line: usize,
    /// Text of the comment without delimiters, trimmed.
    pub text: String,
}

/// The lexer's output: scrubbed code plus extracted comments.
#[derive(Debug)]
pub struct Scrubbed {
    /// Source with comments and literal bodies blanked to spaces.
    /// Newlines are preserved, so line/column arithmetic carries over.
    pub code: String,
    /// All comments, in order of appearance.
    pub comments: Vec<Comment>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment { depth: usize },
    Str,
    RawStr { hashes: usize },
    Char,
}

/// Lexes `src`, blanking comments and literal bodies.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut state = State::Code;
    let mut comment_start_line = 0usize;
    let mut comment_buf = String::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes a byte to the scrubbed output, keeping newlines so the
    // scrubbed text lines up with the original line-by-line.
    fn blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    comment_start_line = line;
                    comment_buf.clear();
                    blank(&mut out, b);
                    blank(&mut out, b'/');
                    i += 2;
                    continue;
                }
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment { depth: 1 };
                    comment_start_line = line;
                    comment_buf.clear();
                    blank(&mut out, b);
                    blank(&mut out, b'*');
                    i += 2;
                    continue;
                }
                // Raw (byte) strings: r"…", r#"…"#, br#"…"#.
                if b == b'r' || (b == b'b' && bytes.get(i + 1) == Some(&b'r')) {
                    let r_at = if b == b'r' { i } else { i + 1 };
                    // `r` must start the token: previous byte must not be
                    // an identifier character.
                    let prev_ident = i > 0 && is_ident_byte(bytes[i - 1]);
                    if !prev_ident && bytes.get(r_at) == Some(&b'r') {
                        let mut j = r_at + 1;
                        let mut hashes = 0usize;
                        while bytes.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&b'"') {
                            for &kept in &bytes[i..=j] {
                                out.push(kept);
                            }
                            i = j + 1;
                            state = State::RawStr { hashes };
                            continue;
                        }
                    }
                    out.push(b);
                    i += 1;
                    continue;
                }
                if b == b'"' {
                    out.push(b);
                    i += 1;
                    state = State::Str;
                    continue;
                }
                if b == b'\'' {
                    // Char literal vs lifetime. A literal is 'x' or an
                    // escape '\…'; a lifetime is 'ident not followed by
                    // a closing quote.
                    let next = bytes.get(i + 1).copied();
                    let is_escape = next == Some(b'\\');
                    let closes_after_one = bytes.get(i + 2) == Some(&b'\'');
                    let is_literal =
                        is_escape || (next.is_some() && next != Some(b'\'') && closes_after_one);
                    if is_literal {
                        out.push(b);
                        i += 1;
                        state = State::Char;
                        continue;
                    }
                    out.push(b);
                    i += 1;
                    continue;
                }
                if b == b'\n' {
                    line += 1;
                }
                out.push(b);
                i += 1;
            }
            State::LineComment => {
                if b == b'\n' {
                    comments.push(Comment {
                        line: comment_start_line,
                        text: comment_buf.trim().to_string(),
                    });
                    line += 1;
                    out.push(b'\n');
                    i += 1;
                    state = State::Code;
                } else {
                    comment_buf.push(b as char);
                    blank(&mut out, b);
                    i += 1;
                }
            }
            State::BlockComment { depth } => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment { depth: depth + 1 };
                    blank(&mut out, b);
                    blank(&mut out, b'*');
                    i += 2;
                } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    if depth == 1 {
                        comments.push(Comment {
                            line: comment_start_line,
                            text: comment_buf.trim().to_string(),
                        });
                        state = State::Code;
                    } else {
                        state = State::BlockComment { depth: depth - 1 };
                    }
                    blank(&mut out, b);
                    blank(&mut out, b'/');
                    i += 2;
                } else {
                    if b == b'\n' {
                        line += 1;
                    }
                    comment_buf.push(b as char);
                    blank(&mut out, b);
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    blank(&mut out, b);
                    blank(&mut out, bytes[i + 1]);
                    if bytes[i + 1] == b'\n' {
                        line += 1;
                    }
                    i += 2;
                } else if b == b'"' {
                    out.push(b);
                    i += 1;
                    state = State::Code;
                } else {
                    if b == b'\n' {
                        line += 1;
                    }
                    blank(&mut out, b);
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        out.extend_from_slice(&bytes[i..j]);
                        i = j;
                        state = State::Code;
                        continue;
                    }
                }
                if b == b'\n' {
                    line += 1;
                }
                blank(&mut out, b);
                i += 1;
            }
            State::Char => {
                if b == b'\\' && i + 1 < bytes.len() {
                    blank(&mut out, b);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else if b == b'\'' {
                    out.push(b);
                    i += 1;
                    state = State::Code;
                } else {
                    blank(&mut out, b);
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment {
        comments.push(Comment {
            line: comment_start_line,
            text: comment_buf.trim().to_string(),
        });
    }
    Scrubbed {
        code: String::from_utf8_lossy(&out).into_owned(),
        comments,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = scrub("let a = 1; // panic!(\"x\")\n/* unwrap() */ let b = 2;\n");
        assert!(!s.code.contains("panic!"));
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let a = 1;"));
        assert!(s.code.contains("let b = 2;"));
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[0].line, 1);
        assert!(s.comments[0].text.contains("panic!"));
        assert_eq!(s.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let s = scrub("a /* outer /* inner */ still */ b");
        assert!(s.code.contains('a'));
        assert!(s.code.contains('b'));
        assert!(!s.code.contains("outer"));
        assert!(!s.code.contains("still"));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn strings_are_blanked_not_parsed() {
        let s = scrub(r#"let x = "panic!(\"deep\") // not a comment"; y();"#);
        assert!(!s.code.contains("panic!"));
        assert!(s.code.contains("y();"));
        assert!(s.comments.is_empty());
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let s = scrub(r###"let x = r#"unwrap() " quote"#; z();"###);
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("z();"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = scrub("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'y'; g(); }");
        // The lifetime must not open a char literal that swallows code.
        assert!(s.code.contains("g();"));
        assert!(!s.code.contains('y'));
    }

    #[test]
    fn newlines_survive_scrubbing() {
        let src = "a\n\"multi\nline\"\nb // c\nd";
        let s = scrub(src);
        assert_eq!(
            s.code.matches('\n').count(),
            src.matches('\n').count(),
            "line structure preserved"
        );
    }
}
