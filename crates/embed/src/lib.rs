//! Knowledge-graph embedding substrate.
//!
//! The paper's virtual knowledge graph is induced by an embedding
//! algorithm 𝒜 (§III-A): every entity and every relationship type gets a
//! `d`-dimensional vector such that `h + r ≈ t` for true triples
//! (TransE [6]); the plausibility of an *unseen* triple is a decreasing
//! function of `‖h + r − t‖`.
//!
//! This crate provides:
//!
//! * [`store::EmbeddingStore`] — the dense entity/relation matrices and the
//!   query-point arithmetic (`h + r` for tail queries, `t − r` for head
//!   queries),
//! * [`transe`] and [`transa`] — from-scratch trainers with margin-based
//!   ranking loss, negative sampling and norm projection,
//! * [`io`] — TSV and compact binary import/export, so embeddings trained
//!   by external code (the paper imports precomputed embeddings) can be
//!   loaded into the store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod least_squares;
pub mod store;
pub mod transa;
pub mod transe;
pub mod vector;

pub use least_squares::{least_squares_embedding, LsConfig};
pub use store::EmbeddingStore;
pub use transa::{TransA, TransAConfig};
pub use transe::{TransE, TransEConfig};
