//! Offline stand-in for the slice of the `rand` 0.8 API used in this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of primitives it needs: a seedable xoshiro256++
//! generator behind [`rngs::StdRng`], uniform range sampling via
//! [`Rng::gen_range`], Bernoulli draws via [`Rng::gen_bool`], and
//! unit-interval / full-width draws via [`Rng::gen`]. Streams are
//! deterministic for a given seed but are **not** bit-compatible with the
//! real `rand` crate — all in-repo expectations are derived from this
//! implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Converts a 64-bit word to a uniform `f64` in `[0, 1)` (53 random bits).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A source of 64-bit random words; the minimal core every generator
/// implements.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, mirroring the `rand::Rng` extension
/// trait.
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value from the type's standard distribution (unit
    /// interval for floats, full width for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128) - (start as i128) + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((start as i128) + off) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Guard the half-open bound against floating-point
                // round-up at the top of wide ranges.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Standard distribution for [`Rng::gen`]: unit interval for floats,
/// full width for integers.
pub trait Standard: Sized {
    /// Draws one sample from the standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// Chosen for speed and statistical quality; the stream differs from
    /// upstream `rand`'s ChaCha-based `StdRng`, which is fine because all
    /// seeds in this repository only promise reproducibility, not a
    /// particular stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-50.0f64..50.0);
            assert!((-50.0..50.0).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(2i64..=5);
            assert!((2..=5).contains(&m));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
