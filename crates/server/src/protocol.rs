//! The request/response messages of the serving protocol.
//!
//! Every message encodes to one frame payload: `[version][opcode][body]`.
//! Request opcodes occupy `0x01..=0x7F`; responses set the high bit.
//! Encoding is hand-rolled over [`crate::wire`]'s primitives and every
//! variant round-trips bit-exactly (`encode` → `decode` is the
//! identity), which the property tests in `tests/wire_roundtrip.rs`
//! enforce per variant.

use vkg_core::engine::{Accuracy, EngineStats};
use vkg_core::query::aggregate::{AggregateKind, AggregateResult, AggregateSpec};
use vkg_core::query::topk::TopKResult;
use vkg_core::{Direction, VkgError};
use vkg_obs::{HistSnapshot, MetricsSnapshot, Span, SpanOutcome};

use crate::wire::{Dec, Enc, WireError, MIN_WIRE_VERSION, WIRE_VERSION};

/// Request opcodes (`0x01..=0x7F`).
mod op {
    pub const TOP_K: u8 = 0x01;
    pub const TOP_K_FILTERED: u8 = 0x02;
    pub const AGGREGATE: u8 = 0x03;
    pub const ADD_FACT: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    pub const SHUTDOWN: u8 = 0x06;
    pub const METRICS: u8 = 0x07;

    pub const R_TOP_K: u8 = 0x81;
    pub const R_AGGREGATE: u8 = 0x82;
    pub const R_FACT_ADDED: u8 = 0x83;
    pub const R_STATS: u8 = 0x84;
    pub const R_SHUTTING_DOWN: u8 = 0x85;
    pub const R_METRICS: u8 = 0x86;
    pub const R_ERROR: u8 = 0xE0;
}

/// A server-side filter a client can attach to a top-k query. Closures
/// do not cross the wire, so the protocol offers the two declarative
/// shapes the examples use: a name prefix and a dense-id range.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFilter {
    /// Keep entities whose interned name starts with the prefix.
    NamePrefix(String),
    /// Keep entities with `lo <= id < hi`.
    IdRange {
        /// Inclusive lower bound.
        lo: u32,
        /// Exclusive upper bound.
        hi: u32,
    },
}

impl WireFilter {
    fn encode(&self, e: &mut Enc) {
        match self {
            WireFilter::NamePrefix(p) => {
                e.u8(0);
                e.str(p);
            }
            WireFilter::IdRange { lo, hi } => {
                e.u8(1);
                e.u32(*lo);
                e.u32(*hi);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        match d.u8()? {
            0 => Ok(WireFilter::NamePrefix(d.str()?)),
            1 => Ok(WireFilter::IdRange {
                lo: d.u32()?,
                hi: d.u32()?,
            }),
            _ => Err(WireError::Malformed("filter tag")),
        }
    }

    /// A canonical byte encoding of the filter — the wire encoding
    /// itself, which is deterministic and injective per variant. Equal
    /// fingerprints therefore imply equal predicates, which is exactly
    /// the contract the result cache's filtered-top-k key requires.
    pub fn fingerprint(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode(&mut e);
        e.finish()
    }
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOp {
    /// Predictive top-k entities (Algorithm 3).
    TopK {
        /// Dense entity id.
        entity: u32,
        /// Dense relation id.
        relation: u32,
        /// Query direction.
        direction: Direction,
        /// Number of entities requested.
        k: u32,
    },
    /// Top-k restricted by a declarative filter.
    TopKFiltered {
        /// Dense entity id.
        entity: u32,
        /// Dense relation id.
        relation: u32,
        /// Query direction.
        direction: Direction,
        /// Number of entities requested.
        k: u32,
        /// Candidate filter.
        filter: WireFilter,
    },
    /// Aggregate over the probability ball (§V-B).
    Aggregate {
        /// Dense entity id.
        entity: u32,
        /// Dense relation id.
        relation: u32,
        /// Query direction.
        direction: Direction,
        /// Which aggregate to compute.
        kind: AggregateKind,
        /// Attribute name (required for all but COUNT).
        attribute: Option<String>,
        /// Probability threshold `p_τ`.
        p_tau: f64,
        /// Access budget `a` (`None` = all ball members).
        sample_size: Option<u32>,
    },
    /// Appends a fact and locally refines embeddings (single-writer).
    AddFactDynamic {
        /// Head entity id.
        h: u32,
        /// Relation id.
        r: u32,
        /// Tail entity id.
        t: u32,
        /// Local gradient refinement steps.
        refine_steps: u32,
        /// Refinement learning rate.
        learning_rate: f64,
        /// Client idempotency token (wire v2; 0 = untokened). A retry
        /// after an ambiguous failure reuses the token, and the server
        /// applies the write at most once, echoing the token in
        /// [`Response::FactAdded`]. v1 frames decode with token 0.
        token: u64,
    },
    /// Engine + server statistics at the current epoch.
    Stats,
    /// Full observability export: the merged facade + server metrics
    /// registry and the most recent spans from the server's span ring.
    Metrics {
        /// Keep at most this many of the newest spans (the server also
        /// clamps to its ring capacity).
        last_spans: u32,
    },
    /// Begin a graceful drain: stop admitting, finish in-flight work.
    Shutdown,
}

impl RequestOp {
    /// The wire opcode this operation encodes as. Also stamped into the
    /// [`vkg_obs::Span`] traced for the request, so exported spans name
    /// their operation in the protocol's own vocabulary.
    pub fn opcode(&self) -> u8 {
        match self {
            RequestOp::TopK { .. } => op::TOP_K,
            RequestOp::TopKFiltered { .. } => op::TOP_K_FILTERED,
            RequestOp::Aggregate { .. } => op::AGGREGATE,
            RequestOp::AddFactDynamic { .. } => op::ADD_FACT,
            RequestOp::Stats => op::STATS,
            RequestOp::Metrics { .. } => op::METRICS,
            RequestOp::Shutdown => op::SHUTDOWN,
        }
    }
}

/// One request frame: a deadline plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Per-request deadline in milliseconds, measured from admission;
    /// `0` means "use the server's default deadline".
    pub deadline_ms: u32,
    /// The operation.
    pub op: RequestOp,
}

fn dir_byte(d: Direction) -> u8 {
    match d {
        Direction::Tails => 0,
        Direction::Heads => 1,
    }
}

fn dir_from(b: u8) -> Result<Direction, WireError> {
    match b {
        0 => Ok(Direction::Tails),
        1 => Ok(Direction::Heads),
        _ => Err(WireError::Malformed("direction byte")),
    }
}

fn kind_byte(k: AggregateKind) -> u8 {
    match k {
        AggregateKind::Count => 0,
        AggregateKind::Sum => 1,
        AggregateKind::Avg => 2,
        AggregateKind::Max => 3,
        AggregateKind::Min => 4,
    }
}

fn kind_from(b: u8) -> Result<AggregateKind, WireError> {
    Ok(match b {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum,
        2 => AggregateKind::Avg,
        3 => AggregateKind::Max,
        4 => AggregateKind::Min,
        _ => return Err(WireError::Malformed("aggregate kind byte")),
    })
}

impl Request {
    /// Encodes to one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(WIRE_VERSION);
        e.u8(self.op.opcode());
        e.u32(self.deadline_ms);
        match &self.op {
            RequestOp::TopK {
                entity,
                relation,
                direction,
                k,
            } => {
                e.u32(*entity);
                e.u32(*relation);
                e.u8(dir_byte(*direction));
                e.u32(*k);
            }
            RequestOp::TopKFiltered {
                entity,
                relation,
                direction,
                k,
                filter,
            } => {
                e.u32(*entity);
                e.u32(*relation);
                e.u8(dir_byte(*direction));
                e.u32(*k);
                filter.encode(&mut e);
            }
            RequestOp::Aggregate {
                entity,
                relation,
                direction,
                kind,
                attribute,
                p_tau,
                sample_size,
            } => {
                e.u32(*entity);
                e.u32(*relation);
                e.u8(dir_byte(*direction));
                e.u8(kind_byte(*kind));
                match attribute {
                    None => e.u8(0),
                    Some(a) => {
                        e.u8(1);
                        e.str(a);
                    }
                }
                e.f64(*p_tau);
                match sample_size {
                    None => e.u8(0),
                    Some(a) => {
                        e.u8(1);
                        e.u32(*a);
                    }
                }
            }
            RequestOp::AddFactDynamic {
                h,
                r,
                t,
                refine_steps,
                learning_rate,
                token,
            } => {
                e.u32(*h);
                e.u32(*r);
                e.u32(*t);
                e.u32(*refine_steps);
                e.f64(*learning_rate);
                e.u64(*token);
            }
            RequestOp::Metrics { last_spans } => {
                e.u32(*last_spans);
            }
            RequestOp::Stats | RequestOp::Shutdown => {}
        }
        e.finish()
    }

    /// Decodes one frame payload. Fails closed on any malformation.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        if payload.len() < crate::wire::MIN_PAYLOAD {
            return Err(WireError::FrameTooShort(payload.len()));
        }
        let mut d = Dec::new(payload);
        let version = d.u8()?;
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        let opcode = d.u8()?;
        let deadline_ms = d.u32()?;
        let op = match opcode {
            op::TOP_K => RequestOp::TopK {
                entity: d.u32()?,
                relation: d.u32()?,
                direction: dir_from(d.u8()?)?,
                k: d.u32()?,
            },
            op::TOP_K_FILTERED => RequestOp::TopKFiltered {
                entity: d.u32()?,
                relation: d.u32()?,
                direction: dir_from(d.u8()?)?,
                k: d.u32()?,
                filter: WireFilter::decode(&mut d)?,
            },
            op::AGGREGATE => RequestOp::Aggregate {
                entity: d.u32()?,
                relation: d.u32()?,
                direction: dir_from(d.u8()?)?,
                kind: kind_from(d.u8()?)?,
                attribute: match d.u8()? {
                    0 => None,
                    1 => Some(d.str()?),
                    _ => return Err(WireError::Malformed("attribute option tag")),
                },
                p_tau: d.f64()?,
                sample_size: match d.u8()? {
                    0 => None,
                    1 => Some(d.u32()?),
                    _ => return Err(WireError::Malformed("sample-size option tag")),
                },
            },
            op::ADD_FACT => RequestOp::AddFactDynamic {
                h: d.u32()?,
                r: d.u32()?,
                t: d.u32()?,
                refine_steps: d.u32()?,
                learning_rate: d.f64()?,
                // v1 predates idempotency tokens; those writes decode
                // as untokened.
                token: if version >= 2 { d.u64()? } else { 0 },
            },
            op::STATS => RequestOp::Stats,
            op::METRICS => RequestOp::Metrics {
                last_spans: d.u32()?,
            },
            op::SHUTDOWN => RequestOp::Shutdown,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        d.finish()?;
        Ok(Request { deadline_ms, op })
    }

    /// Builds the [`AggregateSpec`] an `Aggregate` request describes.
    /// Returns `None` for other operations.
    pub fn aggregate_spec(&self) -> Option<AggregateSpec> {
        match &self.op {
            RequestOp::Aggregate {
                kind,
                attribute,
                p_tau,
                sample_size,
                ..
            } => Some(AggregateSpec {
                kind: *kind,
                attribute: attribute.clone(),
                p_tau: *p_tau,
                sample_size: sample_size.map(|a| a as usize),
            }),
            _ => None,
        }
    }
}

/// One predicted edge endpoint on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionWire {
    /// Dense entity id.
    pub id: u32,
    /// S₁ distance (lower = more likely).
    pub distance: f64,
    /// Edge probability under the inverse-distance model.
    pub probability: f64,
}

/// A top-k answer with its epoch and Theorem 2 guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKWire {
    /// Snapshot epoch the answer was computed at.
    pub epoch: u64,
    /// Up to `k` predictions, ascending by S₁ distance.
    pub predictions: Vec<PredictionWire>,
    /// Probability no true top-k entity was missed (Theorem 2).
    pub success_probability: f64,
    /// Expected number of missed entities (Theorem 2).
    pub expected_misses: f64,
    /// S₁ distance evaluations this answer cost.
    pub s1_evals: u64,
    /// S₂ candidate points examined.
    pub candidates_examined: u64,
}

impl TopKWire {
    /// Projects an engine answer onto the wire.
    pub fn from_result(epoch: u64, r: &TopKResult) -> Self {
        TopKWire {
            epoch,
            predictions: r
                .predictions
                .iter()
                .map(|p| PredictionWire {
                    id: p.id,
                    distance: p.distance,
                    probability: p.probability,
                })
                .collect(),
            success_probability: r.guarantee.success_probability,
            expected_misses: r.guarantee.expected_misses,
            s1_evals: r.s1_evals,
            candidates_examined: r.candidates_examined,
        }
    }
}

/// An aggregate answer with its epoch and Theorem 4 bound.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateWire {
    /// Snapshot epoch the answer was computed at.
    pub epoch: u64,
    /// The expected aggregate value.
    pub estimate: f64,
    /// Entities accessed (`a`).
    pub accessed: u64,
    /// Ball size (`b`).
    pub ball_size: u64,
    /// Theorem 4 bound: the estimate μ.
    pub mu: f64,
    /// Theorem 4 bound: the martingale increment mass.
    pub increment_mass: f64,
}

impl AggregateWire {
    /// Projects an engine answer onto the wire.
    pub fn from_result(epoch: u64, r: &AggregateResult) -> Self {
        AggregateWire {
            epoch,
            estimate: r.estimate,
            accessed: r.accessed as u64,
            ball_size: r.ball_size as u64,
            mu: r.bound.mu,
            increment_mass: r.bound.increment_mass,
        }
    }
}

/// [`Accuracy`] on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyWire(pub Accuracy);

impl AccuracyWire {
    fn encode(&self, e: &mut Enc) {
        match self.0 {
            Accuracy::Exact => {
                e.u8(0);
                e.f64(0.0);
            }
            Accuracy::Approximate { min_overlap } => {
                e.u8(1);
                e.f64(min_overlap);
            }
            Accuracy::SelfOracle { min_recall } => {
                e.u8(2);
                e.f64(min_recall);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let tag = d.u8()?;
        let x = d.f64()?;
        Ok(AccuracyWire(match tag {
            0 => Accuracy::Exact,
            1 => Accuracy::Approximate { min_overlap: x },
            2 => Accuracy::SelfOracle { min_recall: x },
            _ => return Err(WireError::Malformed("accuracy tag")),
        }))
    }
}

/// Admission-control counters the server reports alongside engine stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Admitted requests answered (success, query error, or deadline).
    pub answered: u64,
    /// Requests shed with `Overloaded` (queue full).
    pub shed: u64,
    /// Admitted requests whose deadline expired before execution.
    pub deadline_expired: u64,
    /// Requests refused because the server was draining.
    pub drained: u64,
}

/// One engine shard's slice of a stats report: its epoch (publications
/// that mutated its index) and the admission traffic routed to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStatsWire {
    /// The shard's epoch at the time of the answer.
    pub epoch: u64,
    /// Requests admitted that routed to this shard.
    pub admitted: u64,
    /// Routed requests answered.
    pub answered: u64,
}

/// Engine + server statistics at one epoch — the remote view of
/// [`EngineStats`] (crack-depth, probe counters, summed across shards)
/// and [`Accuracy`], plus a per-shard breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsWire {
    /// Snapshot epoch at the time of the answer.
    pub epoch: u64,
    /// Index nodes currently allocated (all shards).
    pub nodes: u64,
    /// Approximate index size in bytes (all shards).
    pub bytes: u64,
    /// Binary splits performed (crack depth proxy).
    pub splits_performed: u64,
    /// Tree nodes created.
    pub nodes_created: u64,
    /// Contour elements touched by searches.
    pub elements_accessed: u64,
    /// Data points examined in S₂.
    pub points_examined: u64,
    /// Full S₁ distance evaluations.
    pub s1_distance_evals: u64,
    /// The engine's accuracy contract.
    pub accuracy: AccuracyWire,
    /// Admission-control counters.
    pub server: ServerCounters,
    /// Per-shard epochs and admission traffic, in shard order.
    pub shards: Vec<ShardStatsWire>,
}

impl StatsWire {
    /// Assembles from the engine's uniform stats report plus the
    /// per-shard breakdown.
    pub fn from_stats(
        epoch: u64,
        stats: &EngineStats,
        accuracy: Accuracy,
        server: ServerCounters,
        shards: Vec<ShardStatsWire>,
    ) -> Self {
        StatsWire {
            epoch,
            nodes: stats.nodes as u64,
            bytes: stats.bytes as u64,
            splits_performed: stats.counters.splits_performed,
            nodes_created: stats.counters.nodes_created,
            elements_accessed: stats.counters.elements_accessed,
            points_examined: stats.counters.points_examined,
            s1_distance_evals: stats.counters.s1_distance_evals,
            accuracy: AccuracyWire(accuracy),
            server,
            shards,
        }
    }
}

/// A full observability export: the server's merged metric registry
/// (facade `core.*` names plus server `server.*` names) and the newest
/// spans from the span ring, stamped with the epoch it was taken at.
///
/// Wire shape (after the epoch): counters, gauges, and histograms as
/// name-prefixed sequences; the span accounting pair; then the spans
/// themselves, each a fixed 62-byte record. Decoding fails closed like
/// every other message — declared lengths are bounded against the
/// remaining payload before allocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsWire {
    /// Snapshot epoch at the time of the export.
    pub epoch: u64,
    /// The merged registry dump plus last-N spans.
    pub snapshot: MetricsSnapshot,
}

/// Smallest wire footprint of a named counter/gauge row (empty name).
const NAMED_U64_MIN_BYTES: usize = 12;
/// Smallest wire footprint of a named histogram (empty name, no buckets).
const HIST_MIN_BYTES: usize = 24;
/// Wire footprint of one `(bucket, count)` pair.
const BUCKET_PAIR_BYTES: usize = 12;
/// Wire footprint of one span record.
const SPAN_WIRE_BYTES: usize = 62;

fn encode_named_u64s(e: &mut Enc, rows: &[(String, u64)]) {
    // lint: allow(no-truncating-cast, encode side; registries hold tens of metrics, nowhere near 2^32)
    e.u32(rows.len() as u32);
    for (name, value) in rows {
        e.str(name);
        e.u64(*value);
    }
}

fn decode_named_u64s(d: &mut Dec<'_>) -> Result<Vec<(String, u64)>, WireError> {
    let n = d.seq_len(NAMED_U64_MIN_BYTES)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        rows.push((name, d.u64()?));
    }
    Ok(rows)
}

impl MetricsWire {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.epoch);
        encode_named_u64s(e, &self.snapshot.counters);
        encode_named_u64s(e, &self.snapshot.gauges);
        // lint: allow(no-truncating-cast, encode side; registries hold tens of histograms, nowhere near 2^32)
        e.u32(self.snapshot.hists.len() as u32);
        for (name, h) in &self.snapshot.hists {
            e.str(name);
            e.u64(h.total);
            e.u64(h.max_us);
            // lint: allow(no-truncating-cast, encode side; bucket count is bounded by the histogram's fixed resolution)
            e.u32(h.buckets.len() as u32);
            for &(bucket, count) in &h.buckets {
                e.u32(bucket);
                e.u64(count);
            }
        }
        e.u64(self.snapshot.spans_recorded);
        e.u64(self.snapshot.spans_dropped);
        // lint: allow(no-truncating-cast, encode side; span count is bounded by the ring capacity)
        e.u32(self.snapshot.spans.len() as u32);
        for s in &self.snapshot.spans {
            e.u64(s.id);
            e.u8(s.op);
            e.u32(s.shard);
            // lint: allow(no-truncating-cast, encode side; SpanOutcome is a fieldless u8-ranged enum)
            e.u8(s.outcome as u8);
            e.u64(s.queue_ns);
            e.u64(s.lock_ns);
            e.u64(s.exec_ns);
            e.u64(s.encode_ns);
            e.u64(s.batch_ns);
            e.u64(s.refine_steps);
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let epoch = d.u64()?;
        let counters = decode_named_u64s(d)?;
        let gauges = decode_named_u64s(d)?;
        let n_hists = d.seq_len(HIST_MIN_BYTES)?;
        let mut hists = Vec::with_capacity(n_hists);
        for _ in 0..n_hists {
            let name = d.str()?;
            let total = d.u64()?;
            let max_us = d.u64()?;
            let n_buckets = d.seq_len(BUCKET_PAIR_BYTES)?;
            let mut buckets = Vec::with_capacity(n_buckets);
            for _ in 0..n_buckets {
                let bucket = d.u32()?;
                buckets.push((bucket, d.u64()?));
            }
            hists.push((
                name,
                HistSnapshot {
                    total,
                    max_us,
                    buckets,
                },
            ));
        }
        let spans_recorded = d.u64()?;
        let spans_dropped = d.u64()?;
        let n_spans = d.seq_len(SPAN_WIRE_BYTES)?;
        let mut spans = Vec::with_capacity(n_spans);
        for _ in 0..n_spans {
            spans.push(Span {
                id: d.u64()?,
                op: d.u8()?,
                shard: d.u32()?,
                outcome: SpanOutcome::from_u8(d.u8()?),
                queue_ns: d.u64()?,
                lock_ns: d.u64()?,
                exec_ns: d.u64()?,
                encode_ns: d.u64()?,
                batch_ns: d.u64()?,
                refine_steps: d.u64()?,
            });
        }
        Ok(MetricsWire {
            epoch,
            snapshot: MetricsSnapshot {
                counters,
                gauges,
                hists,
                spans,
                spans_recorded,
                spans_dropped,
            },
        })
    }
}

/// Why a request was refused or failed — the typed half of
/// [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The admission queue was full; retry with backoff.
    Overloaded,
    /// The request waited past its deadline and was not executed.
    DeadlineExceeded,
    /// The server is draining and admits no new work.
    Draining,
    /// The frame or message could not be decoded; the connection closes.
    MalformedRequest,
    /// The query itself failed (unknown ids, invalid parameters, …).
    Query,
    /// The server failed internally (e.g. a worker disappeared).
    Internal,
}

impl ErrorCode {
    fn byte(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::DeadlineExceeded => 2,
            ErrorCode::Draining => 3,
            ErrorCode::MalformedRequest => 4,
            ErrorCode::Query => 5,
            ErrorCode::Internal => 6,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::Draining,
            4 => ErrorCode::MalformedRequest,
            5 => ErrorCode::Query,
            6 => ErrorCode::Internal,
            _ => return Err(WireError::Malformed("error code byte")),
        })
    }
}

/// A typed refusal or failure sent in place of a result.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerError {
    /// Machine-readable cause.
    pub code: ErrorCode,
    /// Human-readable detail (e.g. the rendered [`VkgError`]).
    pub message: String,
}

impl ServerError {
    /// Wraps a query-layer error.
    pub fn query(e: &VkgError) -> Self {
        ServerError {
            code: ErrorCode::Query,
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServerError {}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Top-k answer.
    TopK(TopKWire),
    /// Aggregate answer.
    Aggregate(AggregateWire),
    /// Outcome of an `AddFactDynamic` (epoch after the write).
    FactAdded {
        /// Whether the edge was new.
        added: bool,
        /// The epoch after the write (unchanged for duplicates).
        epoch: u64,
        /// The request's idempotency token echoed back (wire v2; 0 when
        /// the write was untokened or arrived on a v1 frame).
        token: u64,
    },
    /// Statistics report.
    Stats(StatsWire),
    /// Observability export (merged registries + recent spans).
    Metrics(MetricsWire),
    /// Acknowledges a `Shutdown`: the server drains and exits.
    ShuttingDown,
    /// Typed refusal or failure.
    Error(ServerError),
}

impl Response {
    /// Encodes to one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(WIRE_VERSION);
        match self {
            Response::TopK(t) => {
                e.u8(op::R_TOP_K);
                e.u64(t.epoch);
                // lint: allow(no-truncating-cast, encode side; k is capped at MAX_K well below 2^32)
                e.u32(t.predictions.len() as u32);
                for p in &t.predictions {
                    e.u32(p.id);
                    e.f64(p.distance);
                    e.f64(p.probability);
                }
                e.f64(t.success_probability);
                e.f64(t.expected_misses);
                e.u64(t.s1_evals);
                e.u64(t.candidates_examined);
            }
            Response::Aggregate(a) => {
                e.u8(op::R_AGGREGATE);
                e.u64(a.epoch);
                e.f64(a.estimate);
                e.u64(a.accessed);
                e.u64(a.ball_size);
                e.f64(a.mu);
                e.f64(a.increment_mass);
            }
            Response::FactAdded {
                added,
                epoch,
                token,
            } => {
                e.u8(op::R_FACT_ADDED);
                e.u8(u8::from(*added));
                e.u64(*epoch);
                e.u64(*token);
            }
            Response::Stats(s) => {
                e.u8(op::R_STATS);
                e.u64(s.epoch);
                e.u64(s.nodes);
                e.u64(s.bytes);
                e.u64(s.splits_performed);
                e.u64(s.nodes_created);
                e.u64(s.elements_accessed);
                e.u64(s.points_examined);
                e.u64(s.s1_distance_evals);
                s.accuracy.encode(&mut e);
                e.u64(s.server.admitted);
                e.u64(s.server.answered);
                e.u64(s.server.shed);
                e.u64(s.server.deadline_expired);
                e.u64(s.server.drained);
                // lint: allow(no-truncating-cast, encode side; shard counts are configuration-bounded, nowhere near 2^32)
                e.u32(s.shards.len() as u32);
                for sh in &s.shards {
                    e.u64(sh.epoch);
                    e.u64(sh.admitted);
                    e.u64(sh.answered);
                }
            }
            Response::Metrics(m) => {
                e.u8(op::R_METRICS);
                m.encode(&mut e);
            }
            Response::ShuttingDown => {
                e.u8(op::R_SHUTTING_DOWN);
            }
            Response::Error(err) => {
                e.u8(op::R_ERROR);
                e.u8(err.code.byte());
                e.str(&err.message);
            }
        }
        e.finish()
    }

    /// Decodes one frame payload. Fails closed on any malformation.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        if payload.len() < crate::wire::MIN_PAYLOAD {
            return Err(WireError::FrameTooShort(payload.len()));
        }
        let mut d = Dec::new(payload);
        let version = d.u8()?;
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        let opcode = d.u8()?;
        let resp = match opcode {
            op::R_TOP_K => {
                let epoch = d.u64()?;
                let n = d.seq_len(20)?;
                let mut predictions = Vec::with_capacity(n);
                for _ in 0..n {
                    predictions.push(PredictionWire {
                        id: d.u32()?,
                        distance: d.f64()?,
                        probability: d.f64()?,
                    });
                }
                Response::TopK(TopKWire {
                    epoch,
                    predictions,
                    success_probability: d.f64()?,
                    expected_misses: d.f64()?,
                    s1_evals: d.u64()?,
                    candidates_examined: d.u64()?,
                })
            }
            op::R_AGGREGATE => Response::Aggregate(AggregateWire {
                epoch: d.u64()?,
                estimate: d.f64()?,
                accessed: d.u64()?,
                ball_size: d.u64()?,
                mu: d.f64()?,
                increment_mass: d.f64()?,
            }),
            op::R_FACT_ADDED => Response::FactAdded {
                added: match d.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("bool byte")),
                },
                epoch: d.u64()?,
                token: if version >= 2 { d.u64()? } else { 0 },
            },
            op::R_STATS => Response::Stats(StatsWire {
                epoch: d.u64()?,
                nodes: d.u64()?,
                bytes: d.u64()?,
                splits_performed: d.u64()?,
                nodes_created: d.u64()?,
                elements_accessed: d.u64()?,
                points_examined: d.u64()?,
                s1_distance_evals: d.u64()?,
                accuracy: AccuracyWire::decode(&mut d)?,
                server: ServerCounters {
                    admitted: d.u64()?,
                    answered: d.u64()?,
                    shed: d.u64()?,
                    deadline_expired: d.u64()?,
                    drained: d.u64()?,
                },
                shards: {
                    let n = d.seq_len(24)?;
                    let mut shards = Vec::with_capacity(n);
                    for _ in 0..n {
                        shards.push(ShardStatsWire {
                            epoch: d.u64()?,
                            admitted: d.u64()?,
                            answered: d.u64()?,
                        });
                    }
                    shards
                },
            }),
            op::R_METRICS => Response::Metrics(MetricsWire::decode(&mut d)?),
            op::R_SHUTTING_DOWN => Response::ShuttingDown,
            op::R_ERROR => Response::Error(ServerError {
                code: ErrorCode::from_byte(d.u8()?)?,
                message: d.str()?,
            }),
            other => return Err(WireError::UnknownOpcode(other)),
        };
        d.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_smoke() {
        let reqs = vec![
            Request {
                deadline_ms: 0,
                op: RequestOp::TopK {
                    entity: 3,
                    relation: 1,
                    direction: Direction::Tails,
                    k: 5,
                },
            },
            Request {
                deadline_ms: 250,
                op: RequestOp::TopKFiltered {
                    entity: 9,
                    relation: 0,
                    direction: Direction::Heads,
                    k: 2,
                    filter: WireFilter::NamePrefix("movie_".into()),
                },
            },
            Request {
                deadline_ms: 1000,
                op: RequestOp::Aggregate {
                    entity: 7,
                    relation: 2,
                    direction: Direction::Tails,
                    kind: AggregateKind::Avg,
                    attribute: Some("year".into()),
                    p_tau: 0.05,
                    sample_size: Some(40),
                },
            },
            Request {
                deadline_ms: 0,
                op: RequestOp::AddFactDynamic {
                    h: 1,
                    r: 0,
                    t: 2,
                    refine_steps: 4,
                    learning_rate: 0.05,
                    token: 0xDEAD_BEEF,
                },
            },
            Request {
                deadline_ms: 0,
                op: RequestOp::Stats,
            },
            Request {
                deadline_ms: 0,
                op: RequestOp::Metrics { last_spans: 32 },
            },
            Request {
                deadline_ms: 0,
                op: RequestOp::Shutdown,
            },
        ];
        for req in reqs {
            let payload = req.encode();
            assert_eq!(payload[0], WIRE_VERSION);
            assert_eq!(Request::decode(&payload).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip_smoke() {
        let resps = vec![
            Response::TopK(TopKWire {
                epoch: 4,
                predictions: vec![PredictionWire {
                    id: 11,
                    distance: 0.5,
                    probability: 1.0,
                }],
                success_probability: 0.99,
                expected_misses: 0.01,
                s1_evals: 37,
                candidates_examined: 90,
            }),
            Response::Aggregate(AggregateWire {
                epoch: 0,
                estimate: 12.5,
                accessed: 10,
                ball_size: 20,
                mu: 12.5,
                increment_mass: 3.0,
            }),
            Response::FactAdded {
                added: true,
                epoch: 9,
                token: 41,
            },
            Response::Metrics(MetricsWire {
                epoch: 3,
                snapshot: MetricsSnapshot {
                    counters: vec![("core.queries".into(), 12), ("server.shed".into(), 0)],
                    gauges: vec![("server.queue_depth".into(), 2)],
                    hists: vec![(
                        "server.latency_us".into(),
                        HistSnapshot {
                            total: 3,
                            max_us: 900,
                            buckets: vec![(0, 1), (41, 2)],
                        },
                    )],
                    spans: vec![Span {
                        id: 7,
                        op: 0x01,
                        shard: 1,
                        outcome: SpanOutcome::DeadlineExpired,
                        queue_ns: 10,
                        lock_ns: 20,
                        exec_ns: 30,
                        encode_ns: 40,
                        batch_ns: 15,
                        refine_steps: 5,
                    }],
                    spans_recorded: 9,
                    spans_dropped: 2,
                },
            }),
            Response::Metrics(MetricsWire::default()),
            Response::ShuttingDown,
            Response::Error(ServerError {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            }),
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn foreign_version_rejected() {
        let mut payload = Request {
            deadline_ms: 0,
            op: RequestOp::Stats,
        }
        .encode();
        payload[0] = 99;
        assert_eq!(
            Request::decode(&payload).unwrap_err(),
            WireError::BadVersion(99)
        );
    }

    #[test]
    fn v1_add_fact_decodes_with_token_zero() {
        // A hand-assembled v1 ADD_FACT frame (no trailing token field)
        // must still decode, defaulting the token to 0.
        let mut e = Enc::new();
        e.u8(1); // wire v1
        e.u8(0x04); // ADD_FACT
        e.u32(0); // deadline
        e.u32(1); // h
        e.u32(0); // r
        e.u32(2); // t
        e.u32(4); // refine_steps
        e.f64(0.05); // learning_rate
        let req = Request::decode(&e.finish()).unwrap();
        assert_eq!(
            req.op,
            RequestOp::AddFactDynamic {
                h: 1,
                r: 0,
                t: 2,
                refine_steps: 4,
                learning_rate: 0.05,
                token: 0,
            }
        );

        let mut e = Enc::new();
        e.u8(1); // wire v1
        e.u8(0x83); // R_FACT_ADDED
        e.u8(1); // added
        e.u64(9); // epoch
        assert_eq!(
            Response::decode(&e.finish()).unwrap(),
            Response::FactAdded {
                added: true,
                epoch: 9,
                token: 0,
            }
        );
    }

    #[test]
    fn unknown_opcode_rejected() {
        let payload = vec![WIRE_VERSION, 0x7C, 0, 0, 0, 0];
        assert_eq!(
            Request::decode(&payload).unwrap_err(),
            WireError::UnknownOpcode(0x7C)
        );
    }

    #[test]
    fn metrics_with_absurd_span_count_rejected() {
        // An empty export ends with the span-count word; declaring
        // u32::MAX spans with no bytes behind it must fail closed
        // before allocation, not panic or allocate 200 GiB.
        let mut payload = Response::Metrics(MetricsWire::default()).encode();
        let n = payload.len();
        payload[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(&payload).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut payload = Request {
            deadline_ms: 0,
            op: RequestOp::Stats,
        }
        .encode();
        payload.push(0);
        assert_eq!(
            Request::decode(&payload).unwrap_err(),
            WireError::Trailing(1)
        );
    }
}
