//! Standard-normal sampling via the Box–Muller transform.
//!
//! Hand-rolled so the workspace does not need `rand_distr` for one
//! distribution (DESIGN.md §4).

use rand::Rng;

/// Draws one sample from `N(0, 1)`.
///
/// Uses the polar (Marsaglia) form of Box–Muller: rejection-samples a
/// point in the unit disk, then transforms. The second variate of each
/// pair is discarded for simplicity — construction of the projection
/// matrix is a one-time cost.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Fills `out` with i.i.d. `N(0, 1)` samples.
pub fn fill_standard_normal<R: Rng>(rng: &mut R, out: &mut [f64]) {
    for v in out {
        *v = standard_normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn tail_mass_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let beyond_2sigma = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count();
        let frac = beyond_2sigma as f64 / n as f64;
        // True mass beyond ±2σ is ≈ 4.55%.
        assert!((frac - 0.0455).abs() < 0.005, "2σ tail fraction {frac}");
    }

    #[test]
    fn fill_writes_every_slot() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![0.0; 64];
        fill_standard_normal(&mut rng, &mut buf);
        assert!(buf.iter().all(|&x| x != 0.0));
    }
}
