//! The instrumented runtime behind `--features model`.
//!
//! Real OS threads, one logical processor: every managed thread parks
//! on a condvar turnstile until the scheduler names it the active
//! thread, so at most one managed thread executes user code at any
//! instant. Every instrumented operation (lock, unlock, atomic access,
//! condvar wait/notify, spawn, join, `RaceCell` access) is a *yield
//! point*: the seeded RNG may preempt the active thread there (bounded
//! by [`super::Config::preemption_bound`]), and a thread that blocks
//! always forces a switch. Because every decision comes from the seed,
//! a schedule replays exactly.
//!
//! On top of the scheduler the runtime maintains vector clocks
//! ([`super::clock::VClock`]) for happens-before, a global lock-order
//! graph for inversion detection, and per-cell access histories for
//! race detection. The first violation wins: it is recorded, every
//! turnstile is notified, and managed threads unwind with a private
//! [`ModelAbort`] payload that the panic hook suppresses.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use super::clock::VClock;
use super::rng::SplitMix64;
use super::{Config, Violation, ViolationKind};

/// Panic payload used to unwind managed threads after a violation (or
/// when the run is torn down). Never surfaces to users: the spawn
/// wrapper catches it and the installed panic hook silences it.
pub(crate) struct ModelAbort;

/// What a managed thread is doing, as the scheduler sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedMutex(u64),
    BlockedRwRead(u64),
    BlockedRwWrite(u64),
    WaitingCondvar(u64),
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug)]
struct TState {
    status: Status,
    clock: VClock,
    /// Lock object ids currently held, in acquisition order.
    held: Vec<u64>,
    name: String,
}

#[derive(Debug, Default)]
struct MutexSt {
    owner: Option<usize>,
    /// Clock published by the last release.
    clock: VClock,
}

#[derive(Debug, Default)]
struct RwSt {
    writer: Option<usize>,
    /// Reader tid → reentrant hold count.
    readers: BTreeMap<usize, u32>,
    /// Clock published by the last write release.
    write_clock: VClock,
    /// Join of every read release (a later writer synchronizes with
    /// all of them).
    read_release: VClock,
}

#[derive(Debug, Default)]
struct CondvarSt {
    /// (tid, mutex object id) for each thread parked in `wait`.
    waiters: Vec<(usize, u64)>,
}

#[derive(Debug, Default)]
struct AtomicSt {
    /// Accumulated clock of Release-or-stronger writers; Acquire
    /// readers join it. Relaxed transfers nothing.
    clock: VClock,
}

#[derive(Debug, Default)]
struct CellSt {
    /// Full clock of the last writer at its write, plus who wrote.
    write_clock: VClock,
    writer: Option<usize>,
    /// Latest read clock per reader since the last write.
    reads: BTreeMap<usize, VClock>,
}

#[derive(Debug)]
struct Sched {
    threads: Vec<TState>,
    active: usize,
    rng: SplitMix64,
    preemptions_left: u32,
    steps: u64,
    max_steps: u64,
    seed: u64,
    failure: Option<Violation>,
    mutexes: BTreeMap<u64, MutexSt>,
    rwlocks: BTreeMap<u64, RwSt>,
    condvars: BTreeMap<u64, CondvarSt>,
    atomics: BTreeMap<u64, AtomicSt>,
    cells: BTreeMap<u64, CellSt>,
    /// Edge (a, b) = "some thread acquired b while holding a", with the
    /// first thread that established it. A cycle is a lock-order
    /// inversion — a schedule exists that deadlocks — reported at the
    /// first conflicting pair even if this schedule got lucky.
    lock_edges: BTreeMap<(u64, u64), usize>,
    /// Diagnostic names for sync objects, captured at first use.
    names: BTreeMap<u64, String>,
}

impl Sched {
    fn name_of(&self, id: u64) -> String {
        self.names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("sync#{id}"))
    }

    fn thread_name(&self, tid: usize) -> String {
        self.threads[tid].name.clone()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// The scheduling decision. Returns the next active thread, or
    /// `None` when nothing can run.
    fn pick_next(&mut self, me: usize) -> Option<usize> {
        let runnable = self.runnable();
        if runnable.is_empty() {
            return None;
        }
        if runnable.contains(&me) {
            // The active thread may keep running; a preemption here is
            // the PCT-style context switch the budget bounds.
            if runnable.len() > 1 && self.preemptions_left > 0 && self.rng.chance(1, 3) {
                self.preemptions_left -= 1;
                let others: Vec<usize> = runnable.into_iter().filter(|&t| t != me).collect();
                Some(others[self.rng.below(others.len())])
            } else {
                Some(me)
            }
        } else {
            // `me` blocked or finished: a switch is forced (free).
            let i = self.rng.below(runnable.len());
            Some(runnable[i])
        }
    }

    fn describe_stuck(&self) -> String {
        let mut lines = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            let what = match &t.status {
                Status::Runnable => "runnable".to_string(),
                Status::Finished => continue,
                Status::BlockedMutex(id) => {
                    let holder = self
                        .mutexes
                        .get(id)
                        .and_then(|m| m.owner)
                        .map(|o| self.thread_name(o))
                        .unwrap_or_else(|| "nobody".to_string());
                    format!(
                        "blocked locking '{}' (held by '{holder}')",
                        self.name_of(*id)
                    )
                }
                Status::BlockedRwRead(id) => {
                    format!("blocked acquiring read lock '{}'", self.name_of(*id))
                }
                Status::BlockedRwWrite(id) => {
                    format!("blocked acquiring write lock '{}'", self.name_of(*id))
                }
                Status::WaitingCondvar(id) => format!(
                    "waiting on condvar '{}' with no notifier left (lost wakeup?)",
                    self.name_of(*id)
                ),
                Status::BlockedJoin(t2) => format!("joining '{}'", self.thread_name(*t2)),
            };
            lines.push(format!("thread '{}' (t{i}) {what}", t.name));
        }
        lines.join("; ")
    }
}

/// The per-run model runtime. One exists per [`super::check`] call,
/// shared by the root thread and everything it spawns.
#[derive(Debug)]
pub(crate) struct Runtime {
    sched: Mutex<Sched>,
    turnstile: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(std::sync::Arc<Runtime>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The runtime managing the calling thread, if any. `None` means the
/// thread is outside any model run and primitives degrade to plain
/// `std::sync` behavior.
pub(crate) fn current() -> Option<(std::sync::Arc<Runtime>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(std::sync::Arc<Runtime>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

fn abort_run() -> ! {
    std::panic::panic_any(ModelAbort)
}

/// Lazily assigned global ids for sync objects (0 = unassigned, so
/// `const fn new` stays possible on every primitive).
pub(crate) struct LazyId(std::sync::atomic::AtomicU64);

static NEXT_OBJECT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl LazyId {
    pub const fn new() -> Self {
        Self(std::sync::atomic::AtomicU64::new(0))
    }

    pub fn get(&self) -> u64 {
        use std::sync::atomic::Ordering;
        let v = self.0.load(Ordering::Relaxed);
        if v != 0 {
            return v;
        }
        let fresh = NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed);
        match self
            .0
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }
}

impl Default for LazyId {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LazyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LazyId({})",
            self.0.load(std::sync::atomic::Ordering::Relaxed)
        )
    }
}

impl Runtime {
    pub fn new(seed: u64, cfg: &Config) -> Self {
        let mut root_clock = VClock::default();
        root_clock.tick(0);
        Self {
            sched: Mutex::new(Sched {
                threads: vec![TState {
                    status: Status::Runnable,
                    clock: root_clock,
                    held: Vec::new(),
                    name: "main".to_string(),
                }],
                active: 0,
                rng: SplitMix64::new(seed),
                preemptions_left: cfg.preemption_bound,
                steps: 0,
                max_steps: cfg.max_steps,
                seed,
                failure: None,
                mutexes: BTreeMap::new(),
                rwlocks: BTreeMap::new(),
                condvars: BTreeMap::new(),
                atomics: BTreeMap::new(),
                cells: BTreeMap::new(),
                lock_edges: BTreeMap::new(),
                names: BTreeMap::new(),
            }),
            turnstile: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a violation (first one wins), wakes every turnstile and
    /// unwinds the calling thread.
    fn fail(&self, mut s: MutexGuard<'_, Sched>, kind: ViolationKind, message: String) -> ! {
        if s.failure.is_none() {
            let seed = s.seed;
            s.failure = Some(Violation {
                seed,
                kind,
                message,
            });
        }
        self.turnstile.notify_all();
        drop(s);
        abort_run()
    }

    /// Entry bookkeeping shared by every instrumented operation: abort
    /// if the run already failed, count the step, enforce the bound.
    fn begin_op<'a>(&'a self, mut s: MutexGuard<'a, Sched>) -> MutexGuard<'a, Sched> {
        if s.failure.is_some() {
            drop(s);
            abort_run();
        }
        s.steps += 1;
        if s.steps > s.max_steps {
            let max = s.max_steps;
            self.fail(
                s,
                ViolationKind::ScheduleBound,
                format!("schedule exceeded {max} steps (livelock or runaway loop)"),
            );
        }
        s
    }

    /// Parks until the scheduler names `me` active and runnable.
    fn wait_until_active<'a>(
        &'a self,
        mut s: MutexGuard<'a, Sched>,
        me: usize,
    ) -> MutexGuard<'a, Sched> {
        loop {
            if s.failure.is_some() {
                drop(s);
                abort_run();
            }
            if s.active == me && s.threads[me].status == Status::Runnable {
                return s;
            }
            s = self
                .turnstile
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A scheduling decision while `me` is still runnable: maybe
    /// preempt; returns with `me` active again.
    fn decide<'a>(&'a self, mut s: MutexGuard<'a, Sched>, me: usize) -> MutexGuard<'a, Sched> {
        match s.pick_next(me) {
            Some(next) if next != me => {
                s.active = next;
                self.turnstile.notify_all();
                self.wait_until_active(s, me)
            }
            _ => {
                s.active = me;
                s
            }
        }
    }

    /// `me` just became non-runnable: hand the processor to someone
    /// else, or flag a deadlock if nobody can run.
    fn advance_from_blocked(&self, s: &mut Sched, me: usize) {
        match s.pick_next(me) {
            Some(next) => s.active = next,
            None => {
                if !s.all_finished() && s.failure.is_none() {
                    let seed = s.seed;
                    s.failure = Some(Violation {
                        seed,
                        kind: ViolationKind::Deadlock,
                        message: format!("no runnable thread: {}", s.describe_stuck()),
                    });
                }
            }
        }
        self.turnstile.notify_all();
    }

    fn note_name(s: &mut Sched, id: u64, name: Option<&'static str>) {
        if let Some(n) = name {
            s.names.entry(id).or_insert_with(|| n.to_string());
        }
    }

    /// Adds the lock-order edge `held → acquiring` and checks the graph
    /// for a cycle. Returns the violation message if this edge closes
    /// one.
    fn lock_order_check(s: &mut Sched, me: usize, held: u64, acquiring: u64) -> Option<String> {
        if held == acquiring || s.lock_edges.contains_key(&(held, acquiring)) {
            return None;
        }
        // A path acquiring ⇝ held means the opposite order was already
        // observed: adding held → acquiring closes a cycle.
        let mut stack = vec![acquiring];
        let mut seen = BTreeSet::new();
        let mut reaches = false;
        while let Some(n) = stack.pop() {
            if n == held {
                reaches = true;
                break;
            }
            if !seen.insert(n) {
                continue;
            }
            for (&(a, b), _) in s.lock_edges.range((n, 0)..=(n, u64::MAX)) {
                debug_assert_eq!(a, n);
                stack.push(b);
            }
        }
        if reaches {
            let direct = s.lock_edges.get(&(acquiring, held)).copied();
            let prior = match direct {
                Some(t) => format!(
                    "thread '{}' previously acquired '{}' before '{}'",
                    s.thread_name(t),
                    s.name_of(acquiring),
                    s.name_of(held)
                ),
                None => format!(
                    "the opposite order '{}' → '{}' was previously established through a chain",
                    s.name_of(acquiring),
                    s.name_of(held)
                ),
            };
            return Some(format!(
                "lock-order inversion: thread '{}' acquires '{}' while holding '{}', but {prior}",
                s.thread_name(me),
                s.name_of(acquiring),
                s.name_of(held)
            ));
        }
        s.lock_edges.insert((held, acquiring), me);
        None
    }

    /// A bare scheduling point (`yield_now`, model-mode `sleep`).
    pub fn yield_point(&self, me: usize) {
        let s = self.begin_op(self.lock());
        let s = self.decide(s, me);
        drop(s);
    }

    // ----- mutex -----

    pub fn acquire_mutex(&self, me: usize, id: u64, name: Option<&'static str>) {
        let mut s = self.begin_op(self.lock());
        Self::note_name(&mut s, id, name);
        s = self.decide(s, me);
        loop {
            let owner = s.mutexes.entry(id).or_default().owner;
            match owner {
                None => {
                    let lock_clock = s
                        .mutexes
                        .get(&id)
                        .map(|m| m.clock.clone())
                        .unwrap_or_default();
                    let held = s.threads[me].held.clone();
                    for h in held {
                        if let Some(msg) = Self::lock_order_check(&mut s, me, h, id) {
                            self.fail(s, ViolationKind::LockOrderInversion, msg);
                        }
                    }
                    let t = &mut s.threads[me];
                    t.clock.join(&lock_clock);
                    t.held.push(id);
                    if let Some(m) = s.mutexes.get_mut(&id) {
                        m.owner = Some(me);
                    }
                    return;
                }
                Some(o) if o == me => {
                    let msg = format!(
                        "thread '{}' locked '{}' recursively (self-deadlock)",
                        s.thread_name(me),
                        s.name_of(id)
                    );
                    self.fail(s, ViolationKind::Deadlock, msg);
                }
                Some(_) => {
                    s.threads[me].status = Status::BlockedMutex(id);
                    self.advance_from_blocked(&mut s, me);
                    s = self.wait_until_active(s, me);
                }
            }
        }
    }

    pub fn release_mutex(&self, me: usize, id: u64) {
        let quiet = std::thread::panicking();
        let mut s = self.lock();
        if let Some(m) = s.mutexes.get_mut(&id) {
            m.owner = None;
        }
        let clock = s.threads[me].clock.clone();
        if let Some(m) = s.mutexes.get_mut(&id) {
            m.clock = clock;
        }
        s.threads[me].clock.tick(me);
        s.threads[me].held.retain(|&x| x != id);
        for t in s.threads.iter_mut() {
            if t.status == Status::BlockedMutex(id) {
                t.status = Status::Runnable;
            }
        }
        if quiet || s.failure.is_some() {
            // Unwinding (or the run already failed): hand off state
            // without scheduling, and never panic from a Drop.
            self.turnstile.notify_all();
            return;
        }
        s = self.begin_op(s);
        s = self.decide(s, me);
        drop(s);
        self.turnstile.notify_all();
    }

    // ----- rwlock -----

    pub fn acquire_rw(&self, me: usize, id: u64, write: bool, name: Option<&'static str>) {
        let mut s = self.begin_op(self.lock());
        Self::note_name(&mut s, id, name);
        s = self.decide(s, me);
        loop {
            let (writer, i_read, any_readers, wc, rr) = {
                let st = s.rwlocks.entry(id).or_default();
                (
                    st.writer,
                    st.readers.contains_key(&me),
                    !st.readers.is_empty(),
                    st.write_clock.clone(),
                    st.read_release.clone(),
                )
            };
            if write {
                if writer.is_none() && !any_readers {
                    let held = s.threads[me].held.clone();
                    for h in held {
                        if let Some(msg) = Self::lock_order_check(&mut s, me, h, id) {
                            self.fail(s, ViolationKind::LockOrderInversion, msg);
                        }
                    }
                    let t = &mut s.threads[me];
                    t.clock.join(&wc);
                    t.clock.join(&rr);
                    t.held.push(id);
                    if let Some(st) = s.rwlocks.get_mut(&id) {
                        st.writer = Some(me);
                    }
                    return;
                }
                if writer == Some(me) || i_read {
                    let msg = format!(
                        "thread '{}' requested write lock '{}' while already holding it (self-deadlock)",
                        s.thread_name(me),
                        s.name_of(id)
                    );
                    self.fail(s, ViolationKind::Deadlock, msg);
                }
                s.threads[me].status = Status::BlockedRwWrite(id);
            } else {
                match writer {
                    None => {
                        if !i_read {
                            let held = s.threads[me].held.clone();
                            for h in held {
                                if let Some(msg) = Self::lock_order_check(&mut s, me, h, id) {
                                    self.fail(s, ViolationKind::LockOrderInversion, msg);
                                }
                            }
                            s.threads[me].held.push(id);
                        }
                        if let Some(st) = s.rwlocks.get_mut(&id) {
                            *st.readers.entry(me).or_insert(0) += 1;
                        }
                        s.threads[me].clock.join(&wc);
                        return;
                    }
                    Some(w) if w == me => {
                        let msg = format!(
                            "thread '{}' requested read lock '{}' while holding its write lock (self-deadlock)",
                            s.thread_name(me),
                            s.name_of(id)
                        );
                        self.fail(s, ViolationKind::Deadlock, msg);
                    }
                    Some(_) => {
                        s.threads[me].status = Status::BlockedRwRead(id);
                    }
                }
            }
            self.advance_from_blocked(&mut s, me);
            s = self.wait_until_active(s, me);
        }
    }

    pub fn release_rw(&self, me: usize, id: u64, write: bool) {
        let quiet = std::thread::panicking();
        let mut s = self.lock();
        let clock = s.threads[me].clock.clone();
        let mut fully_released = true;
        if let Some(st) = s.rwlocks.get_mut(&id) {
            if write {
                st.writer = None;
                st.write_clock = clock;
            } else {
                if let Some(c) = st.readers.get_mut(&me) {
                    *c -= 1;
                    if *c == 0 {
                        st.readers.remove(&me);
                    } else {
                        fully_released = false;
                    }
                }
                st.read_release.join(&clock);
            }
        }
        s.threads[me].clock.tick(me);
        if fully_released {
            s.threads[me].held.retain(|&x| x != id);
        }
        let readers_empty = s
            .rwlocks
            .get(&id)
            .map(|st| st.readers.is_empty() && st.writer.is_none())
            .unwrap_or(true);
        for t in s.threads.iter_mut() {
            let unblock = match t.status {
                Status::BlockedRwRead(b) => b == id && write,
                Status::BlockedRwWrite(b) => b == id && readers_empty,
                _ => false,
            };
            if unblock {
                t.status = Status::Runnable;
            }
        }
        if quiet || s.failure.is_some() {
            self.turnstile.notify_all();
            return;
        }
        s = self.begin_op(s);
        s = self.decide(s, me);
        drop(s);
        self.turnstile.notify_all();
    }

    // ----- condvar -----

    /// Atomically (under the scheduler lock) releases `mutex_id`, parks
    /// on the condvar, and returns once notified. The caller reacquires
    /// the mutex afterwards via [`Runtime::acquire_mutex`].
    pub fn condvar_wait(&self, me: usize, cv_id: u64, mutex_id: u64, name: Option<&'static str>) {
        let mut s = self.begin_op(self.lock());
        Self::note_name(&mut s, cv_id, name);
        // Release the mutex exactly like release_mutex, but without a
        // scheduling gap between the release and the park — a real
        // condvar's release-and-sleep is atomic, and modelling it any
        // other way would report phantom lost wakeups.
        if let Some(m) = s.mutexes.get_mut(&mutex_id) {
            m.owner = None;
        }
        let clock = s.threads[me].clock.clone();
        if let Some(m) = s.mutexes.get_mut(&mutex_id) {
            m.clock = clock;
        }
        s.threads[me].clock.tick(me);
        s.threads[me].held.retain(|&x| x != mutex_id);
        for t in s.threads.iter_mut() {
            if t.status == Status::BlockedMutex(mutex_id) {
                t.status = Status::Runnable;
            }
        }
        s.condvars
            .entry(cv_id)
            .or_default()
            .waiters
            .push((me, mutex_id));
        s.threads[me].status = Status::WaitingCondvar(cv_id);
        self.advance_from_blocked(&mut s, me);
        s = self.wait_until_active(s, me);
        drop(s);
    }

    pub fn condvar_notify(&self, me: usize, cv_id: u64, all: bool, name: Option<&'static str>) {
        let mut s = self.begin_op(self.lock());
        Self::note_name(&mut s, cv_id, name);
        let waiter_count = s.condvars.entry(cv_id).or_default().waiters.len();
        let woken: Vec<usize> = if waiter_count == 0 {
            Vec::new()
        } else if all {
            let cv = s.condvars.get_mut(&cv_id).expect("condvar state exists");
            cv.waiters.drain(..).map(|(t, _)| t).collect()
        } else {
            let i = s.rng.below(waiter_count);
            let cv = s.condvars.get_mut(&cv_id).expect("condvar state exists");
            vec![cv.waiters.remove(i).0]
        };
        for t in woken {
            s.threads[t].status = Status::Runnable;
        }
        s = self.decide(s, me);
        drop(s);
        self.turnstile.notify_all();
    }

    // ----- atomics -----

    pub fn atomic_access(
        &self,
        me: usize,
        id: u64,
        acquire: bool,
        release: bool,
        name: Option<&'static str>,
    ) {
        let mut s = self.begin_op(self.lock());
        Self::note_name(&mut s, id, name);
        s = self.decide(s, me);
        if acquire {
            let c = s.atomics.entry(id).or_default().clock.clone();
            s.threads[me].clock.join(&c);
        }
        if release {
            let tc = s.threads[me].clock.clone();
            s.atomics.entry(id).or_default().clock.join(&tc);
            s.threads[me].clock.tick(me);
        }
    }

    // ----- race-checked cells -----

    pub fn cell_read(&self, me: usize, id: u64, name: Option<&'static str>) {
        let mut s = self.begin_op(self.lock());
        Self::note_name(&mut s, id, name);
        s = self.decide(s, me);
        let my_clock = s.threads[me].clock.clone();
        let racy_writer = {
            let cell = s.cells.entry(id).or_default();
            cell.writer
                .filter(|&w| w != me && !cell.write_clock.le(&my_clock))
        };
        if let Some(w) = racy_writer {
            let msg = format!(
                "data race on '{}': read by thread '{}' is concurrent with write by thread '{}' (no happens-before edge)",
                s.name_of(id),
                s.thread_name(me),
                s.thread_name(w)
            );
            self.fail(s, ViolationKind::DataRace, msg);
        }
        s.cells.entry(id).or_default().reads.insert(me, my_clock);
    }

    pub fn cell_write(&self, me: usize, id: u64, name: Option<&'static str>) {
        let mut s = self.begin_op(self.lock());
        Self::note_name(&mut s, id, name);
        s = self.decide(s, me);
        let my_clock = s.threads[me].clock.clone();
        let racy_writer = {
            let cell = s.cells.entry(id).or_default();
            cell.writer
                .filter(|&w| w != me && !cell.write_clock.le(&my_clock))
        };
        if let Some(w) = racy_writer {
            let msg = format!(
                "data race on '{}': write by thread '{}' is concurrent with write by thread '{}' (no happens-before edge)",
                s.name_of(id),
                s.thread_name(me),
                s.thread_name(w)
            );
            self.fail(s, ViolationKind::DataRace, msg);
        }
        let racy_reader = s
            .cells
            .entry(id)
            .or_default()
            .reads
            .iter()
            .find(|(&t, rc)| t != me && !rc.le(&my_clock))
            .map(|(&t, _)| t);
        if let Some(r) = racy_reader {
            let msg = format!(
                "data race on '{}': write by thread '{}' is concurrent with read by thread '{}' (no happens-before edge)",
                s.name_of(id),
                s.thread_name(me),
                s.thread_name(r)
            );
            self.fail(s, ViolationKind::DataRace, msg);
        }
        let cell = s.cells.entry(id).or_default();
        cell.write_clock = my_clock;
        cell.writer = Some(me);
        cell.reads.clear();
        s.threads[me].clock.tick(me);
    }

    // ----- threads -----

    /// Registers a child thread (runnable, clock seeded from the
    /// parent) and returns its tid. No scheduling decision happens
    /// here: the caller has not created the OS thread yet, and parking
    /// the parent now would mean it never does. The spawn path yields
    /// *after* the OS thread exists.
    pub fn register_child(&self, me: usize, name: Option<String>) -> usize {
        let mut s = self.begin_op(self.lock());
        let tid = s.threads.len();
        let mut clock = s.threads[me].clock.clone();
        clock.tick(tid);
        s.threads[me].clock.tick(me);
        s.threads.push(TState {
            status: Status::Runnable,
            clock,
            held: Vec::new(),
            name: name.unwrap_or_else(|| format!("t{tid}")),
        });
        drop(s);
        tid
    }

    /// First thing a managed child does: park until scheduled.
    pub fn block_until_scheduled(&self, me: usize) {
        let s = self.lock();
        let s = self.wait_until_active(s, me);
        drop(s);
    }

    /// Marks `me` finished, wakes joiners, hands the processor on.
    /// Never panics: it runs on the way out of the spawn wrapper.
    pub fn thread_finished(&self, me: usize) {
        let mut s = self.lock();
        s.threads[me].status = Status::Finished;
        for t in s.threads.iter_mut() {
            if t.status == Status::BlockedJoin(me) {
                t.status = Status::Runnable;
            }
        }
        if !s.all_finished() {
            self.advance_from_blocked(&mut s, me);
        } else {
            self.turnstile.notify_all();
        }
    }

    /// A spawned thread's user closure panicked: that fails the model.
    pub fn flag_thread_panic(&self, tid: usize, message: String) {
        let mut s = self.lock();
        if s.failure.is_none() {
            let seed = s.seed;
            let name = s.thread_name(tid);
            s.failure = Some(Violation {
                seed,
                kind: ViolationKind::Panic,
                message: format!("thread '{name}' panicked: {message}"),
            });
        }
        self.turnstile.notify_all();
    }

    /// Blocks until `target` finishes, then joins its clock (the join
    /// happens-before edge).
    pub fn join_thread(&self, me: usize, target: usize) {
        let mut s = self.begin_op(self.lock());
        loop {
            if s.threads[target].status == Status::Finished {
                let c = s.threads[target].clock.clone();
                let t = &mut s.threads[me];
                t.clock.join(&c);
                t.clock.tick(me);
                return;
            }
            s.threads[me].status = Status::BlockedJoin(target);
            self.advance_from_blocked(&mut s, me);
            s = self.wait_until_active(s, me);
        }
    }

    pub fn is_thread_finished(&self, target: usize) -> bool {
        self.lock().threads[target].status == Status::Finished
    }

    /// Called by the root after its closure returns (or unwinds):
    /// drives every leftover spawned thread to completion so the run
    /// ends in a quiescent, deterministic state. Never panics.
    pub fn wind_down(&self) {
        let mut s = self.lock();
        s.threads[0].status = Status::Finished;
        loop {
            if s.all_finished() {
                self.turnstile.notify_all();
                return;
            }
            if s.failure.is_some() {
                // Threads parked in turnstiles observe the failure and
                // unwind themselves; just keep nudging them.
                self.turnstile.notify_all();
            } else {
                let runnable = s.runnable();
                if runnable.is_empty() {
                    let seed = s.seed;
                    let msg = format!("no runnable thread: {}", s.describe_stuck());
                    s.failure = Some(Violation {
                        seed,
                        kind: ViolationKind::Deadlock,
                        message: msg,
                    });
                    self.turnstile.notify_all();
                } else if !runnable.contains(&s.active) {
                    let i = s.rng.below(runnable.len());
                    s.active = runnable[i];
                    self.turnstile.notify_all();
                }
            }
            s = self
                .turnstile
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn take_failure(&self) -> Option<Violation> {
        self.lock().failure.take()
    }

    pub fn report(&self) -> super::Report {
        let s = self.lock();
        super::Report {
            steps: s.steps,
            threads: s.threads.len(),
        }
    }
}
