//! Open-loop load generator for the `vkg-server` serving layer.
//!
//! Starts an in-process server over the smoke-scale movie dataset, then
//! drives it at a target QPS: request *i* is launched at
//! `start + i/qps` regardless of how long earlier requests took (open
//! loop — the arrival process does not slow down when the server does,
//! so queueing delay shows up in the latencies instead of being hidden
//! by back-pressure). Reports hand-rolled p50/p95/p99/max latency
//! histograms, the shed rate, and the error count.
//!
//! ```text
//! cargo run --release -p vkg-bench --bin serve_load -- --qps 150 --seconds 2 --seed 7 --check
//! ```
//!
//! `--check` exits non-zero unless every completed request succeeded,
//! at least one completed, and the server's own telemetry (fetched over
//! the `Metrics` wire opcode before shutdown) reconciles with what the
//! clients observed: `admitted == answered` once the senders drained,
//! the server's shed count matches the client-observed overload
//! rejections, and the server-side p50 sits at or below the
//! client-side p50 (plus one histogram bucket of tolerance) — the CI
//! tier-2 gate. `--metrics-out PATH` writes the full server snapshot in
//! the `vkg-obs` text exposition format as a run artifact.
//!
//! The serve path's result cache and same-shard batching are load-tested
//! through three more knobs. `--cache on|off` forces the engine's
//! epoch-keyed result cache (default: the `VKG_CACHE` env override, else
//! off); `--batch N` lets each worker drain up to N queued requests per
//! round, executing same-shard groups under one lock acquisition;
//! `--zipf S` skews the workload so a hot head of queries repeats
//! (`S = 0`, the default, keeps the historical uniform stream). Under
//! `--check`, a quiescent sample of the workload is then asked once over
//! the wire — the cached, batched path — and recomputed cache-free
//! against the same pinned engine state: any bit of divergence fails the
//! run, and with the cache on a skewed workload must also show a
//! non-zero hit count.
//!
//! The crash → restart → parity loop is scriptable through three more
//! flags. `--wal PATH` (default: the `VKG_WAL` env override, else off)
//! attaches the write-ahead log: the server logs + flushes every
//! dynamic write before acking it, every connection self-heals with a
//! per-connection deterministically-seeded [`RetryPolicy`], and writes
//! carry idempotency tokens so a retry after an ambiguous failure
//! applies at most once. `--kill-after N` aborts the whole process the
//! moment the Nth write is acked — destructors do not run, exactly like
//! a SIGKILL — leaving the acked prefix on disk (exit code
//! [`KILLED_EXIT`] tells the harness the kill fired as planned).
//! `--recover` runs the other phase: rebuild the engine, replay the
//! WAL, and merge `"recovery": {...}` (attach wall time, replayed-record
//! count, truncated bytes; schema in EXPERIMENTS.md) into the JSON at
//! `--bench-out` (default `BENCH_core.json`). With `--wal`, `--check`
//! additionally reconciles the durability counters: exported
//! `server.wal.appended` must equal the client-observed applied writes,
//! every `server.wal.dedup_hits` must be explained by a recorded client
//! write retry, and the final epoch must equal replayed + appended.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use vkg::sync::{AtomicU64, Ordering};

use vkg::core::metrics::names as core_names;
use vkg::core::FaultPlane;
use vkg::obs::expo;
use vkg::prelude::*;
use vkg_bench::latency::Histogram;
use vkg_bench::setup::{self, Scale};
use vkg_bench::workload;
use vkg_server::server::names;
use vkg_server::{Client, ClientError, ErrorCode, RetryPolicy, RetryStats, Server, ServerConfig};

/// Process exit code of a `--kill-after` abort, so the crash-recovery
/// harness can tell a planned kill from an ordinary failure.
const KILLED_EXIT: i32 = 86;

struct Args {
    qps: f64,
    seconds: f64,
    connections: usize,
    seed: u64,
    write_ratio: f64,
    workers: usize,
    queue_capacity: usize,
    /// `Some(true)`/`Some(false)` from `--cache on|off`; `None` defers
    /// to the `VKG_CACHE` env override (default off).
    cache: Option<bool>,
    /// Max requests a worker drains per round (`--batch`); 1 is the
    /// unbatched serve loop.
    batch: usize,
    /// Zipf exponent of the workload (`--zipf`); 0 is uniform.
    zipf: f64,
    /// Write-ahead-log path (`--wal`, default the `VKG_WAL` env
    /// override); `None` keeps the in-memory write path bit-identical.
    wal: Option<PathBuf>,
    /// Abort the process (as a SIGKILL would) once this many writes
    /// have been acked (`--kill-after`); requires `--wal`.
    kill_after: Option<u64>,
    /// Run the recovery phase instead of the load phase (`--recover`):
    /// replay the WAL into a fresh engine and record `recovery{...}`.
    recover: bool,
    /// Where `--recover` merges its `recovery{...}` block
    /// (`--bench-out`, default `BENCH_core.json`).
    bench_out: String,
    check: bool,
    metrics_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            qps: 200.0,
            seconds: 5.0,
            connections: 4,
            seed: 7,
            write_ratio: 0.02,
            workers: 4,
            queue_capacity: 128,
            cache: None,
            batch: 1,
            zipf: 0.0,
            wal: vkg::core::config::wal_from_env(),
            kill_after: None,
            recover: false,
            bench_out: "BENCH_core.json".to_owned(),
            check: false,
            metrics_out: None,
        }
    }
}

fn usage() {
    eprintln!(
        "usage: serve_load [--qps N] [--seconds N] [--connections N] [--seed N]\n\
         \x20                 [--write-ratio F] [--workers N] [--queue N]\n\
         \x20                 [--cache on|off] [--batch N] [--zipf S] [--check]\n\
         \x20                 [--wal PATH] [--kill-after N] [--recover]\n\
         \x20                 [--bench-out PATH] [--metrics-out PATH]"
    );
}

fn parse_args() -> Option<Args> {
    let mut a = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> Option<f64> {
            match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => Some(v),
                _ => {
                    eprintln!("serve_load: {what} wants a positive number");
                    None
                }
            }
        };
        match arg.as_str() {
            "--qps" => a.qps = num("--qps")?,
            "--seconds" => a.seconds = num("--seconds")?,
            "--connections" => a.connections = num("--connections")? as usize,
            "--seed" => a.seed = num("--seed")? as u64,
            "--write-ratio" => a.write_ratio = num("--write-ratio")?.min(1.0),
            "--workers" => a.workers = num("--workers")? as usize,
            "--queue" => a.queue_capacity = num("--queue")? as usize,
            "--cache" => match args.next().as_deref() {
                Some("on") => a.cache = Some(true),
                Some("off") => a.cache = Some(false),
                _ => {
                    eprintln!("serve_load: --cache wants `on` or `off`");
                    return None;
                }
            },
            "--batch" => a.batch = num("--batch")? as usize,
            "--zipf" => a.zipf = num("--zipf")?,
            "--wal" => match args.next() {
                Some(path) => a.wal = Some(PathBuf::from(path)),
                None => {
                    eprintln!("serve_load: --wal wants a path");
                    return None;
                }
            },
            "--kill-after" => a.kill_after = Some(num("--kill-after")? as u64),
            "--recover" => a.recover = true,
            "--bench-out" => match args.next() {
                Some(path) => a.bench_out = path,
                None => {
                    eprintln!("serve_load: --bench-out wants a path");
                    return None;
                }
            },
            "--check" => a.check = true,
            "--metrics-out" => match args.next() {
                Some(path) => a.metrics_out = Some(path),
                None => {
                    eprintln!("serve_load: --metrics-out wants a path");
                    return None;
                }
            },
            _ => {
                usage();
                return None;
            }
        }
    }
    if a.kill_after.is_some() && a.wal.is_none() {
        eprintln!("serve_load: --kill-after only makes sense with --wal (the acked prefix must survive the kill)");
        return None;
    }
    if a.recover && a.wal.is_none() {
        eprintln!("serve_load: --recover wants --wal (which log should be replayed?)");
        return None;
    }
    if a.recover && a.kill_after.is_some() {
        eprintln!("serve_load: --recover and --kill-after are separate phases");
        return None;
    }
    Some(a)
}

/// Per-connection tally, merged after the run.
#[derive(Default)]
struct Tally {
    completed: u64,
    shed: u64,
    deadline_expired: u64,
    errors: u64,
    /// Writes acked with `added = true` — each one the WAL must hold.
    writes_applied: u64,
    /// The connection's self-healing counters (zero without `--wal`).
    retry: RetryStats,
    hist: Histogram,
}

/// `--check`'s cache-parity clause: at quiescence a sample of distinct
/// workload queries is asked once over the wire — the cached, batched
/// serve path — and recomputed cache-free against the same pinned
/// engine state. Returns the number of queries checked; any bit of
/// divergence is an error. Every fourth sample also cross-checks the
/// aggregate path.
fn check_cache_parity(
    vkg: &VirtualKnowledgeGraph,
    addr: std::net::SocketAddr,
    queries: &[workload::Query],
) -> Result<usize, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("parity client: {e}"))?;
    let mut seen = std::collections::HashSet::new();
    let mut checked = 0usize;
    for q in queries {
        if checked >= 32 {
            break;
        }
        if !seen.insert((q.entity.0, q.relation.0, q.direction == Direction::Tails)) {
            continue;
        }
        let remote = client
            .top_k(q.entity, q.relation, q.direction, 10)
            .map_err(|e| format!("remote top-k: {e}"))?;
        let local = vkg
            .with_published_shard(q.relation, |_pin, snap, state| {
                state.top_k(snap, q.entity, q.relation, q.direction, 10)
            })
            .map_err(|e| format!("local recompute: {e}"))?;
        if remote.predictions.len() != local.predictions.len()
            || remote
                .predictions
                .iter()
                .zip(&local.predictions)
                .any(|(r, l)| {
                    r.id != l.id
                        || r.distance.to_bits() != l.distance.to_bits()
                        || r.probability.to_bits() != l.probability.to_bits()
                })
            || remote.success_probability.to_bits() != local.guarantee.success_probability.to_bits()
            || remote.expected_misses.to_bits() != local.guarantee.expected_misses.to_bits()
        {
            return Err(format!(
                "top-k diverged from recomputation on entity {} relation {} ({:?})",
                q.entity.0, q.relation.0, q.direction
            ));
        }
        if checked % 4 == 0 {
            let remote_agg = client
                .aggregate(
                    q.entity,
                    q.relation,
                    q.direction,
                    AggregateKind::Count,
                    None,
                    0.05,
                    None,
                )
                .map_err(|e| format!("remote aggregate: {e}"))?;
            let spec = AggregateSpec::count(0.05);
            let local_agg = vkg
                .with_published_shard(q.relation, |_pin, snap, state| {
                    state.aggregate(snap, q.entity, q.relation, q.direction, &spec)
                })
                .map_err(|e| format!("local aggregate recompute: {e}"))?;
            if remote_agg.estimate.to_bits() != local_agg.estimate.to_bits()
                || remote_agg.mu.to_bits() != local_agg.bound.mu.to_bits()
                || remote_agg.increment_mass.to_bits() != local_agg.bound.increment_mass.to_bits()
                || remote_agg.ball_size as usize != local_agg.ball_size
            {
                return Err(format!(
                    "aggregate diverged from recomputation on entity {} relation {}",
                    q.entity.0, q.relation.0
                ));
            }
        }
        checked += 1;
    }
    if checked == 0 {
        return Err("no queries to sample".into());
    }
    Ok(checked)
}

/// Merges a `"recovery": {...}` block into the benchmark JSON at
/// `path`, preserving whatever `microbench` wrote there. Both writers
/// emit the stable hand-rolled layout, and `recovery` is always the
/// last key, so the merge is textual: drop any previous `recovery`
/// block, reopen the object, append, close.
fn merge_recovery_json(path: &str, block: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut doc = existing.trim_end().to_owned();
    if let Some(at) = doc.find("\"recovery\"") {
        let head = doc[..at].trim_end().trim_end_matches(',').trim_end();
        doc = head.to_owned();
        if doc == "{" {
            doc.push('\n');
        } else {
            doc.push_str(",\n");
        }
    } else if doc.ends_with('}') {
        doc.pop();
        let head = doc.trim_end().to_owned();
        doc = head;
        doc.push_str(",\n");
    } else {
        doc = "{\n".to_owned();
    }
    doc.push_str(block);
    doc.push_str("\n}\n");
    std::fs::write(path, doc)
}

/// The `--recover` phase: rebuild the engine the load phase served,
/// replay the WAL into it (timing the attach — replay runs every record
/// through the normal dynamic-write path), bring a server up on the
/// recovered state so the `server.wal.*` mirrors export, and merge the
/// measurements into the benchmark JSON. Under `--check` the phase also
/// gates parity: every replayed record must have published exactly one
/// epoch, and the wire-exported mirror must agree with the facade.
fn run_recover(args: &Args, wal_path: &std::path::Path) -> ExitCode {
    let shards = vkg::core::config::shards_from_env(1);
    let cache_capacity = match args.cache {
        Some(true) => vkg::core::config::DEFAULT_CACHE_CAPACITY,
        Some(false) => 0,
        None => vkg::core::config::cache_from_env(0),
    };
    eprintln!(
        "serve_load: recovery phase — rebuilding the smoke-scale engine \
         ({shards} shard(s), cache {cache_capacity} entries)..."
    );
    let prepared = setup::movie(Scale::Smoke, 16);
    let vkg = Arc::new(VirtualKnowledgeGraph::assemble(
        prepared.dataset.graph,
        prepared.dataset.attributes,
        prepared.embeddings,
        VkgConfig {
            shards,
            cache_capacity,
            ..setup::bench_config()
        },
    ));
    let wal_bytes = std::fs::metadata(wal_path).map(|m| m.len()).unwrap_or(0);
    let t = Instant::now();
    let report = match vkg.attach_wal(wal_path, FaultPlane::none()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve_load: WAL recovery failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let attach_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "serve_load recovery: replayed {} record(s) ({} byte(s), {} truncated) in {:.3} ms -> epoch {}",
        report.replayed, wal_bytes, report.truncated_bytes, attach_ms, report.epoch
    );

    // The WAL is already attached, so the server starts without one —
    // but its metrics export still mirrors the facade's counters, which
    // is the end-to-end surface the parity gate reads.
    let handle = match Server::start(
        Arc::clone(&vkg),
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue_capacity,
            ..ServerConfig::default()
        },
    ) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("serve_load: cannot bind loopback server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = Client::connect(handle.addr())
        .and_then(|mut c| c.metrics(0))
        .map_err(|e| eprintln!("serve_load: metrics fetch failed: {e}"))
        .ok();
    if let (Some(path), Some(m)) = (&args.metrics_out, &metrics) {
        if let Err(e) = std::fs::write(path, expo::render(&m.snapshot)) {
            eprintln!("serve_load: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  metrics snapshot written to {path}");
    }
    handle.shutdown();

    let block = format!(
        "  \"recovery\": {{\n    \"wal_bytes\": {wal_bytes},\n    \"replayed\": {},\n    \
         \"truncated_bytes\": {},\n    \"attach_ms\": {attach_ms:.3},\n    \
         \"epoch_after_replay\": {}\n  }}",
        report.replayed, report.truncated_bytes, report.epoch
    );
    if let Err(e) = merge_recovery_json(&args.bench_out, &block) {
        eprintln!("serve_load: cannot write {}: {e}", args.bench_out);
        return ExitCode::FAILURE;
    }
    println!("  recovery block merged into {}", args.bench_out);

    if args.check {
        // Replayed records were all fresh (`added = true`) when they
        // were logged, so replaying them into an identically-built
        // engine publishes exactly one epoch each — any drift means a
        // lost or duplicated write.
        if report.epoch != report.replayed {
            eprintln!(
                "serve_load: CHECK FAILED — epoch {} after replaying {} record(s)",
                report.epoch, report.replayed
            );
            return ExitCode::FAILURE;
        }
        let Some(m) = &metrics else {
            eprintln!("serve_load: CHECK FAILED — metrics opcode did not answer");
            return ExitCode::FAILURE;
        };
        let mirrored = m.snapshot.gauge(names::WAL_REPLAYED).unwrap_or(u64::MAX);
        if mirrored != report.replayed {
            eprintln!(
                "serve_load: CHECK FAILED — exported server.wal.replayed {} != facade report {}",
                mirrored, report.replayed
            );
            return ExitCode::FAILURE;
        }
        println!("serve_load: CHECK OK (recovery parity reconciled)");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return ExitCode::FAILURE;
    };
    if args.recover {
        let Some(wal_path) = args.wal.clone() else {
            // parse_args already refused this combination.
            return ExitCode::FAILURE;
        };
        return run_recover(&args, &wal_path);
    }

    let shards = vkg::core::config::shards_from_env(1);
    let cache_capacity = match args.cache {
        Some(true) => vkg::core::config::DEFAULT_CACHE_CAPACITY,
        Some(false) => 0,
        None => vkg::core::config::cache_from_env(0),
    };
    eprintln!(
        "serve_load: preparing smoke-scale movie dataset + embeddings \
         ({shards} shard(s), cache {} entries, batch {}, wal {})...",
        cache_capacity,
        args.batch,
        args.wal
            .as_deref()
            .map_or("off".into(), |p| p.display().to_string()),
    );
    let prepared = setup::movie(Scale::Smoke, 16);
    let graph = prepared.dataset.graph.clone();
    let vkg = Arc::new(VirtualKnowledgeGraph::assemble(
        prepared.dataset.graph,
        prepared.dataset.attributes,
        prepared.embeddings,
        VkgConfig {
            shards,
            cache_capacity,
            ..setup::bench_config()
        },
    ));
    let handle = match Server::start(
        Arc::clone(&vkg),
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue_capacity,
            batch_max: args.batch.max(1),
            wal: args.wal.clone(),
            ..ServerConfig::default()
        },
    ) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("serve_load: cannot bind loopback server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();

    let total = (args.qps * args.seconds).ceil() as u64;
    let queries = Arc::new(if args.zipf > 0.0 {
        workload::generate_zipf(&graph, total as usize, args.seed, args.zipf)
    } else {
        workload::generate(&graph, total as usize, args.seed)
    });
    let entities = graph.num_entities() as u32;
    eprintln!(
        "serve_load: {} requests at {} QPS over {} connections -> {}",
        total, args.qps, args.connections, addr
    );

    // Open loop: a shared ticket counter assigns each request its
    // absolute launch time; whichever connection is free next takes it.
    let tickets = Arc::new(AtomicU64::new(0));
    // Write acks across every connection, for `--kill-after`.
    let acked_writes = Arc::new(AtomicU64::new(0));
    let wal_mode = args.wal.is_some();
    let kill_after = args.kill_after;
    let start = Instant::now();
    let senders: Vec<_> = (0..args.connections)
        .map(|c| {
            let tickets = Arc::clone(&tickets);
            let acked_writes = Arc::clone(&acked_writes);
            let queries = Arc::clone(&queries);
            let write_ratio = args.write_ratio;
            let qps = args.qps;
            let seed = args.seed;
            thread::spawn(move || {
                let mut tally = Tally::default();
                let mut client = match Client::connect(addr) {
                    Ok(client) => client,
                    Err(e) => {
                        eprintln!("serve_load: connection {c} failed to connect: {e}");
                        tally.errors += 1;
                        return tally;
                    }
                };
                if wal_mode {
                    // Durability runs are the crash runs: every
                    // connection self-heals, seeded per-connection so
                    // the backoff jitter and write tokens are distinct
                    // across the fleet. The pid is mixed in because a
                    // token names a logical write *across* runs: a
                    // fresh process resuming an old WAL must not
                    // regenerate the previous run's token stream, or
                    // the replay-seeded idempotency map would answer
                    // its brand-new writes with the old outcomes.
                    client.set_retry_policy(Some(RetryPolicy {
                        max_attempts: 10,
                        base_backoff: Duration::from_millis(1),
                        max_backoff: Duration::from_millis(50),
                        seed: seed
                            ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            ^ u64::from(std::process::id()) << 32,
                    }));
                }
                loop {
                    // relaxed: a ticket dispenser; each thread only needs a unique value, not ordering.
                    let i = tickets.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let due = start + Duration::from_secs_f64(i as f64 / qps);
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        thread::sleep(wait);
                    }
                    // A deterministic slice of the stream becomes
                    // dynamic writes; everything else alternates top-k
                    // and aggregates.
                    let write_every = if write_ratio > 0.0 {
                        (1.0 / write_ratio) as u64
                    } else {
                        u64::MAX
                    };
                    let q = &queries[i as usize];
                    let sent = Instant::now();
                    let outcome = if i % write_every == write_every - 1 {
                        let h = q.entity;
                        let t = EntityId((h.0 * 31 + i as u32 * 7 + c as u32) % entities);
                        let written = if wal_mode {
                            // Tokened: a retry after a crash or a lost
                            // ack applies at most once.
                            client.add_fact_idempotent(h, q.relation, t, 2, 0.01)
                        } else {
                            client.add_fact(h, q.relation, t, 2, 0.01)
                        };
                        written.map(|(added, _epoch)| {
                            if added {
                                tally.writes_applied += 1;
                            }
                            if let Some(kill) = kill_after {
                                // relaxed: a monotone tally; the exit below is the only consumer.
                                let acked = acked_writes.fetch_add(1, Ordering::Relaxed) + 1;
                                if acked >= kill {
                                    // Die the way a SIGKILL would: no
                                    // destructors, no WAL cleanup — the
                                    // acked prefix stays on disk for
                                    // the --recover phase to replay.
                                    eprintln!(
                                        "serve_load: --kill-after {kill} reached; aborting the process"
                                    );
                                    std::process::exit(KILLED_EXIT);
                                }
                            }
                        })
                    } else if i % 10 == 9 {
                        client
                            .aggregate(
                                q.entity,
                                q.relation,
                                q.direction,
                                AggregateKind::Count,
                                None,
                                0.05,
                                None,
                            )
                            .map(|_| ())
                    } else {
                        client
                            .top_k(q.entity, q.relation, q.direction, 10)
                            .map(|_| ())
                    };
                    match outcome {
                        Ok(()) => {
                            tally.hist.record(sent.elapsed());
                            tally.completed += 1;
                        }
                        Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                            tally.shed += 1;
                        }
                        Err(ClientError::Server(e)) if e.code == ErrorCode::DeadlineExceeded => {
                            tally.deadline_expired += 1;
                        }
                        Err(e) => {
                            eprintln!("serve_load: request {i} failed: {e}");
                            tally.errors += 1;
                        }
                    }
                }
                tally.retry = client.retry_stats();
                tally
            })
        })
        .collect();

    let mut merged = Tally::default();
    for s in senders {
        match s.join() {
            Ok(t) => {
                merged.completed += t.completed;
                merged.shed += t.shed;
                merged.deadline_expired += t.deadline_expired;
                merged.errors += t.errors;
                merged.writes_applied += t.writes_applied;
                merged.retry.backoffs += t.retry.backoffs;
                merged.retry.reconnects += t.retry.reconnects;
                merged.retry.retried_frames += t.retry.retried_frames;
                merged.retry.write_retries += t.retry.write_retries;
                merged.hist.merge(&t.hist);
            }
            Err(_) => {
                eprintln!("serve_load: a sender thread panicked");
                merged.errors += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    // The cache-parity clause runs while the server is live but
    // quiescent, before the telemetry snapshot, so its traffic (and any
    // hits it produces) is part of the exported counters.
    let parity = args.check.then(|| check_cache_parity(&vkg, addr, &queries));

    // Every sender has its answer, so the queue is drained — fetch the
    // server's own telemetry over the wire before shutting it down.
    let metrics = Client::connect(addr)
        .and_then(|mut c| c.metrics(64))
        .map_err(|e| eprintln!("serve_load: metrics fetch failed: {e}"))
        .ok();
    let counters = handle.shutdown();

    let issued = merged.completed + merged.shed + merged.deadline_expired + merged.errors;
    let shed_rate = merged.shed as f64 / issued.max(1) as f64;
    println!("serve_load results");
    println!(
        "  issued={} completed={} shed={} ({:.2}%) deadline_expired={} errors={}",
        issued,
        merged.completed,
        merged.shed,
        shed_rate * 1e2,
        merged.deadline_expired,
        merged.errors
    );
    println!(
        "  offered={:.0} QPS achieved={:.0} QPS over {:.2}s",
        args.qps,
        merged.completed as f64 / elapsed.as_secs_f64(),
        elapsed.as_secs_f64()
    );
    println!("  latency {}", merged.hist.summary());
    println!(
        "  server counters: admitted={} answered={} shed={} deadline_expired={} drained={}",
        counters.admitted,
        counters.answered,
        counters.shed,
        counters.deadline_expired,
        counters.drained
    );
    if let Some(m) = &metrics {
        let server_p50_us = m
            .snapshot
            .hist(names::LATENCY_US)
            .map(|h| h.quantile_us(0.50))
            .unwrap_or(0);
        println!(
            "  server telemetry (epoch {}): spans recorded={} dropped={} p50={:.2}ms",
            m.epoch,
            m.snapshot.spans_recorded,
            m.snapshot.spans_dropped,
            server_p50_us as f64 / 1e3,
        );
        let hits = m.snapshot.counter(core_names::CACHE_HIT).unwrap_or(0);
        let misses = m.snapshot.counter(core_names::CACHE_MISS).unwrap_or(0);
        println!(
            "  cache: hits={} misses={} prefix_hits={} invalidations={} | lock rounds={}",
            hits,
            misses,
            m.snapshot
                .counter(core_names::CACHE_PREFIX_HIT)
                .unwrap_or(0),
            m.snapshot
                .counter(core_names::CACHE_INVALIDATE)
                .unwrap_or(0),
            m.snapshot.counter(names::LOCK_ROUNDS).unwrap_or(0),
        );
        if wal_mode {
            println!(
                "  wal: appended={} replayed={} dedup_hits={} | client retry: \
                 backoffs={} reconnects={} write_retries={}",
                m.snapshot.gauge(names::WAL_APPENDED).unwrap_or(0),
                m.snapshot.gauge(names::WAL_REPLAYED).unwrap_or(0),
                m.snapshot.gauge(names::WAL_DEDUP_HITS).unwrap_or(0),
                merged.retry.backoffs,
                merged.retry.reconnects,
                merged.retry.write_retries,
            );
        }
    }
    if let Some(path) = &args.metrics_out {
        match &metrics {
            Some(m) => {
                if let Err(e) = std::fs::write(path, expo::render(&m.snapshot)) {
                    eprintln!("serve_load: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("  metrics snapshot written to {path}");
            }
            None => {
                eprintln!("serve_load: --metrics-out set but the metrics fetch failed");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.check {
        if merged.errors > 0 {
            eprintln!(
                "serve_load: CHECK FAILED — {} request errors",
                merged.errors
            );
            return ExitCode::FAILURE;
        }
        if merged.completed == 0 {
            eprintln!("serve_load: CHECK FAILED — no request completed");
            return ExitCode::FAILURE;
        }
        if counters.admitted != counters.answered {
            eprintln!(
                "serve_load: CHECK FAILED — admitted {} != answered {}",
                counters.admitted, counters.answered
            );
            return ExitCode::FAILURE;
        }
        let Some(m) = &metrics else {
            eprintln!("serve_load: CHECK FAILED — metrics opcode did not answer");
            return ExitCode::FAILURE;
        };
        // The snapshot was taken after every sender had its answer, so
        // the exported gauges must already agree with each other and
        // with what the clients saw — not just the post-shutdown
        // counters.
        let g = |name: &str| m.snapshot.gauge(name).unwrap_or(u64::MAX);
        if g(names::ADMITTED) != g(names::ANSWERED) {
            eprintln!(
                "serve_load: CHECK FAILED — exported admitted {} != answered {} after drain",
                g(names::ADMITTED),
                g(names::ANSWERED)
            );
            return ExitCode::FAILURE;
        }
        if wal_mode {
            // A self-healing client retries Overloaded refusals, and
            // every such retry the server sheds again counts once more
            // server-side — so the server total sits between the
            // client's terminal rejections and terminal + backoffs.
            let shed = g(names::SHED);
            if shed < merged.shed || shed > merged.shed + merged.retry.backoffs {
                eprintln!(
                    "serve_load: CHECK FAILED — server shed {} outside [{}, {}] \
                     (client rejections + recorded backoffs)",
                    shed,
                    merged.shed,
                    merged.shed + merged.retry.backoffs
                );
                return ExitCode::FAILURE;
            }
        } else if g(names::SHED) != merged.shed {
            eprintln!(
                "serve_load: CHECK FAILED — server shed {} != client-observed rejections {}",
                g(names::SHED),
                merged.shed
            );
            return ExitCode::FAILURE;
        }
        // Server spans cover admission → encode, a strict sub-interval
        // of each client-measured request, so the server p50 may not
        // exceed the client p50 by more than one geometric bucket
        // (≈9%) plus a small absolute allowance for bucket rounding.
        let server_p50_us = m
            .snapshot
            .hist(names::LATENCY_US)
            .map(|h| h.quantile_us(0.50))
            .unwrap_or(u64::MAX);
        let client_p50_us = merged.hist.quantile(0.50).as_micros() as f64;
        let allowed_us = client_p50_us * 1.10 + 1_000.0;
        if server_p50_us as f64 > allowed_us {
            eprintln!(
                "serve_load: CHECK FAILED — server p50 {server_p50_us}µs exceeds \
                 client p50 {client_p50_us}µs beyond tolerance ({allowed_us:.0}µs)"
            );
            return ExitCode::FAILURE;
        }
        match parity {
            Some(Ok(n)) => println!("  cache parity OK over {n} sampled queries"),
            Some(Err(e)) => {
                eprintln!("serve_load: CHECK FAILED — cache parity: {e}");
                return ExitCode::FAILURE;
            }
            None => {}
        }
        let hits = m.snapshot.counter(core_names::CACHE_HIT).unwrap_or(0);
        if cache_capacity == 0 && hits > 0 {
            eprintln!(
                "serve_load: CHECK FAILED — {hits} cache hits reported with the cache disabled"
            );
            return ExitCode::FAILURE;
        }
        if cache_capacity > 0 && args.zipf > 0.0 && hits == 0 {
            eprintln!(
                "serve_load: CHECK FAILED — cache enabled on a skewed workload but never hit"
            );
            return ExitCode::FAILURE;
        }
        if wal_mode {
            // Durability counter parity: every applied write the
            // clients saw is a WAL append, every dedup hit is explained
            // by a recorded client write retry, and every record —
            // replayed at startup or appended since — published exactly
            // one epoch.
            let appended = g(names::WAL_APPENDED);
            let replayed = g(names::WAL_REPLAYED);
            let dedup_hits = g(names::WAL_DEDUP_HITS);
            if appended != merged.writes_applied {
                eprintln!(
                    "serve_load: CHECK FAILED — server.wal.appended {} != client-observed \
                     applied writes {}",
                    appended, merged.writes_applied
                );
                return ExitCode::FAILURE;
            }
            if dedup_hits > merged.retry.write_retries {
                eprintln!(
                    "serve_load: CHECK FAILED — {} dedup hits but only {} client write \
                     retries: a duplicate frame applied somewhere",
                    dedup_hits, merged.retry.write_retries
                );
                return ExitCode::FAILURE;
            }
            if m.epoch != replayed + appended {
                eprintln!(
                    "serve_load: CHECK FAILED — epoch {} != replayed {} + appended {}",
                    m.epoch, replayed, appended
                );
                return ExitCode::FAILURE;
            }
        }
        println!("serve_load: CHECK OK (telemetry reconciled)");
    }
    ExitCode::SUCCESS
}
