// pretend: crates/server/src/server.rs
// Fixture with zero findings: typed errors, facade primitives, and
// justified orderings only.

use vkg_sync::{AtomicU64, Mutex, Ordering};

fn typed_error(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_string())
}

fn facade_lock(m: &Mutex<u64>) -> u64 {
    *m.lock()
}

fn justified(c: &AtomicU64) -> u64 {
    // relaxed: monotonic statistic; snapshot freshness is best-effort
    c.load(Ordering::Relaxed)
}
