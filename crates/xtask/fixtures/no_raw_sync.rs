// pretend: crates/core/src/engine.rs
// Fixture for the no-raw-sync rule: lock/atomic primitives must come
// from vkg_sync; Arc, mpsc, and PoisonError stay allowed.

use std::sync::Mutex; // expect: no-raw-sync
use std::sync::RwLock; // expect: no-raw-sync
use std::sync::atomic::AtomicU64; // expect: no-raw-sync
use std::sync::{Arc, Condvar}; // expect: no-raw-sync
use parking_lot::RwLock as PlRwLock; // expect: no-raw-sync

use std::sync::Arc as SharedPtr;
use std::sync::mpsc;
use std::sync::{Arc as A, PoisonError};
use vkg_sync::{AtomicBool, Mutex as GoodMutex};

fn escape_hatch() {
    // lint: allow(no-raw-sync, interop with a std API that demands the std type)
    let _m = std::sync::Mutex::new(0);
}
