//! Open-loop load generator for the `vkg-server` serving layer.
//!
//! Starts an in-process server over the smoke-scale movie dataset, then
//! drives it at a target QPS: request *i* is launched at
//! `start + i/qps` regardless of how long earlier requests took (open
//! loop — the arrival process does not slow down when the server does,
//! so queueing delay shows up in the latencies instead of being hidden
//! by back-pressure). Reports hand-rolled p50/p95/p99/max latency
//! histograms, the shed rate, and the error count.
//!
//! ```text
//! cargo run --release -p vkg-bench --bin serve_load -- --qps 150 --seconds 2 --seed 7 --check
//! ```
//!
//! `--check` exits non-zero unless every completed request succeeded,
//! at least one completed, and the server's own telemetry (fetched over
//! the `Metrics` wire opcode before shutdown) reconciles with what the
//! clients observed: `admitted == answered` once the senders drained,
//! the server's shed count matches the client-observed overload
//! rejections, and the server-side p50 sits at or below the
//! client-side p50 (plus one histogram bucket of tolerance) — the CI
//! tier-2 gate. `--metrics-out PATH` writes the full server snapshot in
//! the `vkg-obs` text exposition format as a run artifact.

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use vkg::sync::{AtomicU64, Ordering};

use vkg::obs::expo;
use vkg::prelude::*;
use vkg_bench::latency::Histogram;
use vkg_bench::setup::{self, Scale};
use vkg_bench::workload;
use vkg_server::server::names;
use vkg_server::{Client, ClientError, ErrorCode, Server, ServerConfig};

struct Args {
    qps: f64,
    seconds: f64,
    connections: usize,
    seed: u64,
    write_ratio: f64,
    workers: usize,
    queue_capacity: usize,
    check: bool,
    metrics_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            qps: 200.0,
            seconds: 5.0,
            connections: 4,
            seed: 7,
            write_ratio: 0.02,
            workers: 4,
            queue_capacity: 128,
            check: false,
            metrics_out: None,
        }
    }
}

fn usage() {
    eprintln!(
        "usage: serve_load [--qps N] [--seconds N] [--connections N] [--seed N]\n\
         \x20                 [--write-ratio F] [--workers N] [--queue N] [--check]\n\
         \x20                 [--metrics-out PATH]"
    );
}

fn parse_args() -> Option<Args> {
    let mut a = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> Option<f64> {
            match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => Some(v),
                _ => {
                    eprintln!("serve_load: {what} wants a positive number");
                    None
                }
            }
        };
        match arg.as_str() {
            "--qps" => a.qps = num("--qps")?,
            "--seconds" => a.seconds = num("--seconds")?,
            "--connections" => a.connections = num("--connections")? as usize,
            "--seed" => a.seed = num("--seed")? as u64,
            "--write-ratio" => a.write_ratio = num("--write-ratio")?.min(1.0),
            "--workers" => a.workers = num("--workers")? as usize,
            "--queue" => a.queue_capacity = num("--queue")? as usize,
            "--check" => a.check = true,
            "--metrics-out" => match args.next() {
                Some(path) => a.metrics_out = Some(path),
                None => {
                    eprintln!("serve_load: --metrics-out wants a path");
                    return None;
                }
            },
            _ => {
                usage();
                return None;
            }
        }
    }
    Some(a)
}

/// Per-connection tally, merged after the run.
#[derive(Default)]
struct Tally {
    completed: u64,
    shed: u64,
    deadline_expired: u64,
    errors: u64,
    hist: Histogram,
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return ExitCode::FAILURE;
    };

    let shards = vkg::core::config::shards_from_env(1);
    eprintln!(
        "serve_load: preparing smoke-scale movie dataset + embeddings ({shards} shard(s))..."
    );
    let prepared = setup::movie(Scale::Smoke, 16);
    let graph = prepared.dataset.graph.clone();
    let vkg = Arc::new(VirtualKnowledgeGraph::assemble(
        prepared.dataset.graph,
        prepared.dataset.attributes,
        prepared.embeddings,
        VkgConfig {
            shards,
            ..setup::bench_config()
        },
    ));
    let handle = match Server::start(
        Arc::clone(&vkg),
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue_capacity,
            ..ServerConfig::default()
        },
    ) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("serve_load: cannot bind loopback server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();

    let total = (args.qps * args.seconds).ceil() as u64;
    let queries = Arc::new(workload::generate(&graph, total as usize, args.seed));
    let entities = graph.num_entities() as u32;
    eprintln!(
        "serve_load: {} requests at {} QPS over {} connections -> {}",
        total, args.qps, args.connections, addr
    );

    // Open loop: a shared ticket counter assigns each request its
    // absolute launch time; whichever connection is free next takes it.
    let tickets = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let senders: Vec<_> = (0..args.connections)
        .map(|c| {
            let tickets = Arc::clone(&tickets);
            let queries = Arc::clone(&queries);
            let write_ratio = args.write_ratio;
            let qps = args.qps;
            thread::spawn(move || {
                let mut tally = Tally::default();
                let mut client = match Client::connect(addr) {
                    Ok(client) => client,
                    Err(e) => {
                        eprintln!("serve_load: connection {c} failed to connect: {e}");
                        tally.errors += 1;
                        return tally;
                    }
                };
                loop {
                    // relaxed: a ticket dispenser; each thread only needs a unique value, not ordering.
                    let i = tickets.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let due = start + Duration::from_secs_f64(i as f64 / qps);
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        thread::sleep(wait);
                    }
                    // A deterministic slice of the stream becomes
                    // dynamic writes; everything else alternates top-k
                    // and aggregates.
                    let write_every = if write_ratio > 0.0 {
                        (1.0 / write_ratio) as u64
                    } else {
                        u64::MAX
                    };
                    let q = &queries[i as usize];
                    let sent = Instant::now();
                    let outcome = if i % write_every == write_every - 1 {
                        let h = q.entity;
                        let t = EntityId((h.0 * 31 + i as u32 * 7 + c as u32) % entities);
                        client.add_fact(h, q.relation, t, 2, 0.01).map(|_| ())
                    } else if i % 10 == 9 {
                        client
                            .aggregate(
                                q.entity,
                                q.relation,
                                q.direction,
                                AggregateKind::Count,
                                None,
                                0.05,
                                None,
                            )
                            .map(|_| ())
                    } else {
                        client
                            .top_k(q.entity, q.relation, q.direction, 10)
                            .map(|_| ())
                    };
                    match outcome {
                        Ok(()) => {
                            tally.hist.record(sent.elapsed());
                            tally.completed += 1;
                        }
                        Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                            tally.shed += 1;
                        }
                        Err(ClientError::Server(e)) if e.code == ErrorCode::DeadlineExceeded => {
                            tally.deadline_expired += 1;
                        }
                        Err(e) => {
                            eprintln!("serve_load: request {i} failed: {e}");
                            tally.errors += 1;
                        }
                    }
                }
                tally
            })
        })
        .collect();

    let mut merged = Tally::default();
    for s in senders {
        match s.join() {
            Ok(t) => {
                merged.completed += t.completed;
                merged.shed += t.shed;
                merged.deadline_expired += t.deadline_expired;
                merged.errors += t.errors;
                merged.hist.merge(&t.hist);
            }
            Err(_) => {
                eprintln!("serve_load: a sender thread panicked");
                merged.errors += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    // Every sender has its answer, so the queue is drained — fetch the
    // server's own telemetry over the wire before shutting it down.
    let metrics = Client::connect(addr)
        .and_then(|mut c| c.metrics(64))
        .map_err(|e| eprintln!("serve_load: metrics fetch failed: {e}"))
        .ok();
    let counters = handle.shutdown();

    let issued = merged.completed + merged.shed + merged.deadline_expired + merged.errors;
    let shed_rate = merged.shed as f64 / issued.max(1) as f64;
    println!("serve_load results");
    println!(
        "  issued={} completed={} shed={} ({:.2}%) deadline_expired={} errors={}",
        issued,
        merged.completed,
        merged.shed,
        shed_rate * 1e2,
        merged.deadline_expired,
        merged.errors
    );
    println!(
        "  offered={:.0} QPS achieved={:.0} QPS over {:.2}s",
        args.qps,
        merged.completed as f64 / elapsed.as_secs_f64(),
        elapsed.as_secs_f64()
    );
    println!("  latency {}", merged.hist.summary());
    println!(
        "  server counters: admitted={} answered={} shed={} deadline_expired={} drained={}",
        counters.admitted,
        counters.answered,
        counters.shed,
        counters.deadline_expired,
        counters.drained
    );
    if let Some(m) = &metrics {
        let server_p50_us = m
            .snapshot
            .hist(names::LATENCY_US)
            .map(|h| h.quantile_us(0.50))
            .unwrap_or(0);
        println!(
            "  server telemetry (epoch {}): spans recorded={} dropped={} p50={:.2}ms",
            m.epoch,
            m.snapshot.spans_recorded,
            m.snapshot.spans_dropped,
            server_p50_us as f64 / 1e3,
        );
    }
    if let Some(path) = &args.metrics_out {
        match &metrics {
            Some(m) => {
                if let Err(e) = std::fs::write(path, expo::render(&m.snapshot)) {
                    eprintln!("serve_load: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("  metrics snapshot written to {path}");
            }
            None => {
                eprintln!("serve_load: --metrics-out set but the metrics fetch failed");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.check {
        if merged.errors > 0 {
            eprintln!(
                "serve_load: CHECK FAILED — {} request errors",
                merged.errors
            );
            return ExitCode::FAILURE;
        }
        if merged.completed == 0 {
            eprintln!("serve_load: CHECK FAILED — no request completed");
            return ExitCode::FAILURE;
        }
        if counters.admitted != counters.answered {
            eprintln!(
                "serve_load: CHECK FAILED — admitted {} != answered {}",
                counters.admitted, counters.answered
            );
            return ExitCode::FAILURE;
        }
        let Some(m) = &metrics else {
            eprintln!("serve_load: CHECK FAILED — metrics opcode did not answer");
            return ExitCode::FAILURE;
        };
        // The snapshot was taken after every sender had its answer, so
        // the exported gauges must already agree with each other and
        // with what the clients saw — not just the post-shutdown
        // counters.
        let g = |name: &str| m.snapshot.gauge(name).unwrap_or(u64::MAX);
        if g(names::ADMITTED) != g(names::ANSWERED) {
            eprintln!(
                "serve_load: CHECK FAILED — exported admitted {} != answered {} after drain",
                g(names::ADMITTED),
                g(names::ANSWERED)
            );
            return ExitCode::FAILURE;
        }
        if g(names::SHED) != merged.shed {
            eprintln!(
                "serve_load: CHECK FAILED — server shed {} != client-observed rejections {}",
                g(names::SHED),
                merged.shed
            );
            return ExitCode::FAILURE;
        }
        // Server spans cover admission → encode, a strict sub-interval
        // of each client-measured request, so the server p50 may not
        // exceed the client p50 by more than one geometric bucket
        // (≈9%) plus a small absolute allowance for bucket rounding.
        let server_p50_us = m
            .snapshot
            .hist(names::LATENCY_US)
            .map(|h| h.quantile_us(0.50))
            .unwrap_or(u64::MAX);
        let client_p50_us = merged.hist.quantile(0.50).as_micros() as f64;
        let allowed_us = client_p50_us * 1.10 + 1_000.0;
        if server_p50_us as f64 > allowed_us {
            eprintln!(
                "serve_load: CHECK FAILED — server p50 {server_p50_us}µs exceeds \
                 client p50 {client_p50_us}µs beyond tolerance ({allowed_us:.0}µs)"
            );
            return ExitCode::FAILURE;
        }
        println!("serve_load: CHECK OK (telemetry reconciled)");
    }
    ExitCode::SUCCESS
}
