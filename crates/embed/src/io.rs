//! Import/export of embedding stores.
//!
//! Two formats:
//!
//! * **TSV** — `kind<TAB>id<TAB>v0 v1 v2 ...` per line, `kind` ∈
//!   `{entity, relation}`. This matches the output of the TransE-family
//!   reference implementations, so embeddings trained externally (the
//!   paper uses the original authors' code) import directly.
//! * **Binary** — a compact little-endian format (`VKGE` magic, version,
//!   shapes, raw `f64` rows) via the `bytes` crate, for fast reload of
//!   large stores.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::store::EmbeddingStore;

/// Magic bytes of the binary format.
const MAGIC: &[u8; 4] = b"VKGE";
/// Current binary format version.
const VERSION: u8 = 1;

/// Errors raised by embedding import.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed text input.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Malformed binary input.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Format(m) => write!(f, "bad binary format: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes `store` as TSV.
pub fn write_tsv<W: Write>(store: &EmbeddingStore, writer: W) -> Result<(), IoError> {
    let mut out = BufWriter::new(writer);
    let d = store.dim();
    for (kind, matrix) in [
        ("entity", store.entity_matrix()),
        ("relation", store.relation_matrix()),
    ] {
        for (i, row) in matrix.chunks_exact(d).enumerate() {
            write!(out, "{kind}\t{i}\t")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(out, " ")?;
                }
                write!(out, "{v}")?;
            }
            writeln!(out)?;
        }
    }
    out.flush()?;
    Ok(())
}

/// Reads a TSV embedding dump produced by [`write_tsv`] (or by external
/// TransE-style tooling using the same layout).
///
/// Rows may arrive in any order but ids must be dense (0..n).
pub fn read_tsv<R: Read>(reader: R) -> Result<EmbeddingStore, IoError> {
    let mut dim: Option<usize> = None;
    let mut entities: Vec<Option<Vec<f64>>> = Vec::new();
    let mut relations: Vec<Option<Vec<f64>>> = Vec::new();

    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let (kind, id, values) = match (fields.next(), fields.next(), fields.next(), fields.next())
        {
            (Some(k), Some(i), Some(v), None) => (k, i, v),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    message: "expected 3 tab-separated fields".into(),
                })
            }
        };
        let id: usize = id.parse().map_err(|_| IoError::Parse {
            line: lineno + 1,
            message: format!("bad id {id:?}"),
        })?;
        let row: Vec<f64> = values
            .split_whitespace()
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|e| IoError::Parse {
                line: lineno + 1,
                message: format!("bad float: {e}"),
            })?;
        match dim {
            None => dim = Some(row.len()),
            Some(d) if d != row.len() => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    message: format!("dimensionality mismatch: expected {d}, got {}", row.len()),
                })
            }
            _ => {}
        }
        let target = match kind {
            "entity" => &mut entities,
            "relation" => &mut relations,
            other => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    message: format!("unknown row kind {other:?}"),
                })
            }
        };
        if target.len() <= id {
            target.resize(id + 1, None);
        }
        target[id] = Some(row);
    }

    let dim = dim.ok_or(IoError::Format("empty embedding file".into()))?;
    let flatten = |rows: Vec<Option<Vec<f64>>>, what: &str| -> Result<Vec<f64>, IoError> {
        let mut flat = Vec::with_capacity(rows.len() * dim);
        for (i, row) in rows.into_iter().enumerate() {
            let row = row.ok_or_else(|| IoError::Format(format!("missing {what} row {i}")))?;
            flat.extend(row);
        }
        Ok(flat)
    };
    Ok(EmbeddingStore::from_raw(
        dim,
        flatten(entities, "entity")?,
        flatten(relations, "relation")?,
    ))
}

/// Serializes `store` into the compact binary format.
pub fn to_binary(store: &EmbeddingStore) -> Bytes {
    let d = store.dim();
    let ents = store.entity_matrix();
    let rels = store.relation_matrix();
    let mut buf = BytesMut::with_capacity(4 + 1 + 4 * 3 + (ents.len() + rels.len()) * 8);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(d as u32);
    buf.put_u32_le((ents.len() / d) as u32);
    buf.put_u32_le((rels.len() / d) as u32);
    for &v in ents.iter().chain(rels) {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Deserializes a store from the binary format.
pub fn from_binary(mut data: &[u8]) -> Result<EmbeddingStore, IoError> {
    if data.remaining() < 4 + 1 + 12 {
        return Err(IoError::Format("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Format(format!("bad magic {magic:?}")));
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let dim = data.get_u32_le() as usize;
    let n = data.get_u32_le() as usize;
    let m = data.get_u32_le() as usize;
    if dim == 0 {
        return Err(IoError::Format("zero dimensionality".into()));
    }
    let need = (n + m) * dim * 8;
    if data.remaining() != need {
        return Err(IoError::Format(format!(
            "payload size mismatch: expected {need} bytes, found {}",
            data.remaining()
        )));
    }
    let mut entities = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        entities.push(data.get_f64_le());
    }
    let mut relations = Vec::with_capacity(m * dim);
    for _ in 0..m * dim {
        relations.push(data.get_f64_le());
    }
    Ok(EmbeddingStore::from_raw(dim, entities, relations))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> EmbeddingStore {
        EmbeddingStore::from_raw(3, vec![1.0, 2.0, 3.0, -1.5, 0.25, 9.0], vec![0.1, 0.2, 0.3])
    }

    #[test]
    fn tsv_roundtrip() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_tsv(&store, &mut buf).unwrap();
        let back = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(back, store);
    }

    #[test]
    fn tsv_rows_in_any_order() {
        let text = "relation\t0\t0.1 0.2\nentity\t1\t3 4\nentity\t0\t1 2\n";
        let store = read_tsv(text.as_bytes()).unwrap();
        assert_eq!(store.dim(), 2);
        assert_eq!(store.entity_matrix(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn tsv_missing_row_is_error() {
        let text = "entity\t0\t1 2\nentity\t2\t5 6\n";
        assert!(read_tsv(text.as_bytes()).is_err());
    }

    #[test]
    fn tsv_dim_mismatch_is_error() {
        let text = "entity\t0\t1 2\nentity\t1\t1 2 3\n";
        let err = read_tsv(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("dimensionality mismatch"));
    }

    #[test]
    fn tsv_unknown_kind_is_error() {
        let text = "vector\t0\t1 2\n";
        assert!(read_tsv(text.as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let store = sample_store();
        let bytes = to_binary(&store);
        let back = from_binary(&bytes).unwrap();
        assert_eq!(back, store);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let store = sample_store();
        let mut bytes = to_binary(&store).to_vec();
        bytes[0] = b'X';
        assert!(from_binary(&bytes).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let store = sample_store();
        let bytes = to_binary(&store);
        assert!(from_binary(&bytes[..bytes.len() - 3]).is_err());
        assert!(from_binary(&bytes[..4]).is_err());
    }

    #[test]
    fn binary_rejects_wrong_version() {
        let store = sample_store();
        let mut bytes = to_binary(&store).to_vec();
        bytes[4] = 99;
        assert!(from_binary(&bytes).is_err());
    }
}
