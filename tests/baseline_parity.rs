//! Cross-checks between the baselines and the indexed engine: every
//! method must agree on the ground truth it is exact for, and approximate
//! methods must hit their advertised recall.

use vkg::prelude::*;

fn trained_movie() -> (Dataset, EmbeddingStore) {
    let ds = movie_like(&MovieConfig::tiny());
    let (store, _) = TransE::new(TransEConfig {
        dim: 24,
        epochs: 10,
        ..TransEConfig::default()
    })
    .train(&ds.graph);
    (ds, store)
}

#[test]
fn phtree_matches_linear_scan_on_embeddings() {
    let (ds, store) = trained_movie();
    let tree = PhTree::build(store.entity_matrix().to_vec(), store.dim());
    let scan = LinearScan::new(&store);
    let mut agree = 0usize;
    let mut total = 0usize;
    for (i, t) in ds.graph.triples().iter().step_by(97).take(10).enumerate() {
        let _ = i;
        let q = store.tail_query_point(t.head, t.relation);
        let tree_ids: Vec<u32> = tree.top_k(&q, 5, |_| false).iter().map(|r| r.0).collect();
        let scan_ids: Vec<u32> = scan
            .top_k_near(&q, 5, |_| false)
            .iter()
            .map(|r| r.0)
            .collect();
        // Quantization can flip exact ties; require the nearest to match
        // and ≥ 4/5 overlap.
        assert_eq!(tree_ids[0], scan_ids[0], "nearest neighbour must agree");
        agree += tree_ids.iter().filter(|x| scan_ids.contains(x)).count();
        total += 5;
    }
    assert!(agree as f64 / total as f64 >= 0.8);
}

#[test]
fn h2alsh_recall_on_single_relation() {
    // H2-ALSH's setting: ONE relation type, MIPS over user/item vectors.
    let (ds, store) = trained_movie();
    let movies: Vec<EntityId> = (0..ds.graph.num_entities() as u32)
        .map(EntityId)
        .filter(|&e| {
            ds.graph
                .entity_name(e)
                .is_some_and(|n| n.starts_with("movie_"))
        })
        .collect();
    let dim = store.dim();
    let mut data = Vec::with_capacity(movies.len() * dim);
    for &m in &movies {
        data.extend_from_slice(store.entity(m));
    }
    let idx = H2Alsh::build(data.clone(), dim, H2AlshConfig::default());

    let mut hits = 0usize;
    let mut total = 0usize;
    for u in 0..10 {
        let user = ds.graph.entity_id(&format!("user_{u}")).unwrap();
        let q = store.entity(user);
        let got: Vec<u32> = idx
            .top_k_mips(q, 5, |_| false)
            .iter()
            .map(|r| r.0)
            .collect();
        let want: Vec<u32> = vkg::baselines::linear_scan::exact_mips_top_k(&data, dim, q, 5)
            .iter()
            .map(|r| r.0)
            .collect();
        hits += got.iter().filter(|g| want.contains(g)).count();
        total += 5;
    }
    let recall = hits as f64 / total as f64;
    assert!(recall >= 0.8, "H2-ALSH recall {recall}");
}

#[test]
fn cracked_bulk_and_scan_agree_through_facade() {
    let (ds, store) = trained_movie();
    let scan_store = store.clone();
    let scan = LinearScan::new(&scan_store);
    let cracked = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        store.clone(),
        VkgConfig::default(),
    );
    let bulk = VirtualKnowledgeGraph::assemble_bulk_loaded(
        ds.graph.clone(),
        ds.attributes.clone(),
        store,
        VkgConfig::default(),
    );
    let likes = ds.graph.relation_id("likes").unwrap();
    for u in 0..8 {
        let user = ds.graph.entity_id(&format!("user_{u}")).unwrap();
        let a = cracked.top_k(user, likes, Direction::Tails, 5).unwrap();
        let b = bulk.top_k(user, likes, Direction::Tails, 5).unwrap();
        assert_eq!(
            a.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            b.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            "cracked and bulk answers diverged for user_{u}"
        );
        // Both must rank by true S₁ distance: compare the top-1 against
        // the exact scan under the same skip set.
        let known: std::collections::HashSet<u32> =
            ds.graph.tails(user, likes).map(|e| e.0).collect();
        let truth = scan.top_k_near(&store_q(&cracked, user, likes), 1, |id| {
            id == user.0 || known.contains(&id)
        });
        if let (Some(p), Some(t)) = (a.predictions.first(), truth.first()) {
            assert!(
                (p.distance - t.1).abs() < 1e-9 || p.id == t.0,
                "top-1 mismatch beyond transform noise"
            );
        }
    }
}

fn store_q(vkg: &VirtualKnowledgeGraph, e: EntityId, r: RelationId) -> Vec<f64> {
    vkg.query_point_s1(e, r, Direction::Tails).unwrap()
}

/// Satellite of the engine layer: every [`QueryEngine`] — baselines and
/// index states alike — goes through one `&mut dyn QueryEngine` loop and
/// is checked against the contract its [`Accuracy`] advertises, with the
/// exact linear scan as the shared ground truth.
#[test]
fn engines_satisfy_their_accuracy_contracts() {
    let (ds, store) = trained_movie();
    let snap = match VkgSnapshot::new(
        ds.graph.clone(),
        ds.attributes.clone(),
        store,
        VkgConfig::default(),
    ) {
        Ok(s) => s,
        Err(e) => panic!("trained store matches the graph: {e}"),
    };
    let movies: Vec<u32> = (0..ds.graph.num_entities() as u32)
        .filter(|&e| {
            ds.graph
                .entity_name(EntityId(e))
                .is_some_and(|n| n.starts_with("movie_"))
        })
        .collect();
    let mut engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(LinearScanEngine::new()),
        Box::new(PhTreeEngine::build(&snap)),
        Box::new(IndexState::cracking(&snap)),
        Box::new(IndexState::bulk_loaded(&snap)),
        Box::new(H2AlshEngine::build(&snap, movies, H2AlshConfig::default()).unwrap()),
    ];
    let mut truth_engine = LinearScanEngine::new();
    let likes = ds.graph.relation_id("likes").unwrap();
    let users: Vec<EntityId> = (0..8)
        .map(|u| ds.graph.entity_id(&format!("user_{u}")).unwrap())
        .collect();
    let k = 5;

    for engine in engines.iter_mut() {
        let name = engine.name().to_owned();
        let mut hits = 0usize;
        let mut total = 0usize;
        for &user in &users {
            let answer = engine
                .top_k(&snap, user, likes, Direction::Tails, k)
                .unwrap();
            let ids: Vec<u32> = answer.predictions.iter().map(|p| p.id).collect();
            match engine.accuracy() {
                Accuracy::Exact => {
                    let truth = truth_engine
                        .top_k(&snap, user, likes, Direction::Tails, k)
                        .unwrap();
                    let truth_ids: Vec<u32> = truth.predictions.iter().map(|p| p.id).collect();
                    assert_eq!(
                        ids, truth_ids,
                        "{name} claims Exact but diverged from the scan"
                    );
                }
                Accuracy::Approximate { .. } => {
                    let truth = truth_engine
                        .top_k(&snap, user, likes, Direction::Tails, k)
                        .unwrap();
                    hits += ids
                        .iter()
                        .filter(|id| truth.predictions.iter().any(|p| p.id == **id))
                        .count();
                    total += truth.predictions.len().min(k);
                }
                Accuracy::SelfOracle { .. } => {
                    let oracle = engine
                        .reference_top_k(&snap, user, likes, Direction::Tails, k)
                        .unwrap();
                    hits += ids.iter().filter(|id| oracle.contains(id)).count();
                    total += oracle.len().min(k);
                }
            }
        }
        match engine.accuracy() {
            Accuracy::Exact => {}
            Accuracy::Approximate { min_overlap } => {
                let overlap = hits as f64 / total.max(1) as f64;
                assert!(
                    overlap >= min_overlap,
                    "{name}: overlap {overlap:.3} below advertised {min_overlap}"
                );
            }
            Accuracy::SelfOracle { min_recall } => {
                let recall = hits as f64 / total.max(1) as f64;
                assert!(
                    recall >= min_recall,
                    "{name}: recall {recall:.3} below advertised {min_recall}"
                );
            }
        }
    }
}

#[test]
fn phtree_and_h2alsh_handle_skip_consistently() {
    let (ds, store) = trained_movie();
    let tree = PhTree::build(store.entity_matrix().to_vec(), store.dim());
    let t = ds.graph.triples()[0];
    let q = store.tail_query_point(t.head, t.relation);
    let banned = tree.top_k(&q, 1, |_| false)[0].0;
    let filtered = tree.top_k(&q, 5, |id| id == banned);
    assert!(filtered.iter().all(|r| r.0 != banned));
}
