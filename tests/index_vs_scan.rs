//! Accuracy of the indexed query path against the exact no-index scan —
//! the precision@K methodology of Figures 4, 6 and 8.
//!
//! The index answers through the lossy JL transform, so exact equality is
//! not required; the paper reports precision@K ≥ 0.945 across datasets,
//! and the same level must hold here.

use vkg::prelude::*;

fn precision_at_k(
    vkg: &mut VirtualKnowledgeGraph,
    scan: &LinearScan<'_>,
    queries: &[(EntityId, RelationId, Direction)],
    k: usize,
) -> f64 {
    let graph = vkg.graph().clone();
    let mut total = 0.0;
    for &(e, r, dir) in queries {
        let indexed = vkg.top_k(e, r, dir, k).unwrap();
        let known: std::collections::HashSet<u32> = match dir {
            Direction::Tails => graph.tails(e, r).map(|x| x.0).collect(),
            Direction::Heads => graph.heads(e, r).map(|x| x.0).collect(),
        };
        let skip = |id: u32| id == e.0 || known.contains(&id);
        let truth = match dir {
            Direction::Tails => scan.top_k_tails(e, r, k, skip),
            Direction::Heads => scan.top_k_heads(e, r, k, skip),
        };
        let truth_ids: std::collections::HashSet<u32> = truth.iter().map(|t| t.0).collect();
        let hits = indexed
            .predictions
            .iter()
            .filter(|p| truth_ids.contains(&p.id))
            .count();
        let denom = truth_ids.len().min(k).max(1);
        total += hits as f64 / denom as f64;
    }
    total / queries.len() as f64
}

fn queries_for(graph: &KnowledgeGraph, n: usize) -> Vec<(EntityId, RelationId, Direction)> {
    // Deterministic spread over triples: alternate directions.
    let triples = graph.triples();
    let step = (triples.len() / n).max(1);
    triples
        .iter()
        .step_by(step)
        .take(n)
        .enumerate()
        .map(|(i, t)| {
            if i % 2 == 0 {
                (t.head, t.relation, Direction::Tails)
            } else {
                (t.tail, t.relation, Direction::Heads)
            }
        })
        .collect()
}

fn embed(graph: &KnowledgeGraph) -> EmbeddingStore {
    let (store, _) = TransE::new(TransEConfig {
        dim: 24,
        epochs: 10,
        ..TransEConfig::default()
    })
    .train(graph);
    store
}

#[test]
fn movie_precision_alpha3() {
    let ds = movie_like(&MovieConfig::tiny());
    let store = embed(&ds.graph);
    let scan_store = store.clone();
    let scan = LinearScan::new(&scan_store);
    let mut vkg = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        store,
        VkgConfig {
            alpha: 3,
            epsilon: 3.0,
            ..VkgConfig::default()
        },
    );
    let qs = queries_for(&ds.graph, 12);
    let p = precision_at_k(&mut vkg, &scan, &qs, 10);
    assert!(p >= 0.9, "precision@10 = {p} below the paper's ballpark");
    vkg.index().check_invariants();
}

#[test]
fn movie_precision_alpha6_not_worse() {
    // Figure 6: α = 6 preserves distance better than α = 3 — on average.
    let ds = movie_like(&MovieConfig::tiny());
    let store = embed(&ds.graph);
    let scan_store = store.clone();
    let scan = LinearScan::new(&scan_store);
    let qs = queries_for(&ds.graph, 12);

    let mut p3_total = 0.0;
    let mut p6_total = 0.0;
    // Average over several transform seeds: a single draw is noisy.
    for seed in 0..3 {
        let mut v3 = VirtualKnowledgeGraph::assemble(
            ds.graph.clone(),
            ds.attributes.clone(),
            store.clone(),
            VkgConfig {
                alpha: 3,
                transform_seed: seed,
                ..VkgConfig::default()
            },
        );
        let mut v6 = VirtualKnowledgeGraph::assemble(
            ds.graph.clone(),
            ds.attributes.clone(),
            store.clone(),
            VkgConfig {
                alpha: 6,
                transform_seed: seed,
                ..VkgConfig::default()
            },
        );
        p3_total += precision_at_k(&mut v3, &scan, &qs, 10);
        p6_total += precision_at_k(&mut v6, &scan, &qs, 10);
    }
    assert!(
        p6_total >= p3_total - 0.05,
        "α=6 ({p6_total}) markedly worse than α=3 ({p3_total})"
    );
    assert!(p6_total / 3.0 >= 0.9);
}

#[test]
fn amazon_precision() {
    let ds = amazon_like(&AmazonConfig::tiny());
    let store = embed(&ds.graph);
    let scan_store = store.clone();
    let scan = LinearScan::new(&scan_store);
    let mut vkg = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        store,
        VkgConfig::default(),
    );
    let qs = queries_for(&ds.graph, 12);
    let p = precision_at_k(&mut vkg, &scan, &qs, 10);
    assert!(p >= 0.9, "precision@10 = {p}");
}

#[test]
fn freebase_precision_many_relations() {
    let ds = freebase_like(&FreebaseConfig::tiny());
    let store = embed(&ds.graph);
    let scan_store = store.clone();
    let scan = LinearScan::new(&scan_store);
    let mut vkg = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        store,
        VkgConfig::default(),
    );
    let qs = queries_for(&ds.graph, 16);
    let p = precision_at_k(&mut vkg, &scan, &qs, 10);
    assert!(p >= 0.85, "precision@10 = {p}");
}

#[test]
fn varying_k_keeps_precision() {
    // Figure 7's k = 2 vs k = 10 comparison: precision holds across k.
    let ds = amazon_like(&AmazonConfig::tiny());
    let store = embed(&ds.graph);
    let scan_store = store.clone();
    let scan = LinearScan::new(&scan_store);
    let qs = queries_for(&ds.graph, 8);
    for k in [2usize, 10] {
        let mut vkg = VirtualKnowledgeGraph::assemble(
            ds.graph.clone(),
            ds.attributes.clone(),
            store.clone(),
            VkgConfig::default(),
        );
        let p = precision_at_k(&mut vkg, &scan, &qs, k);
        assert!(p >= 0.85, "precision@{k} = {p}");
    }
}

#[test]
fn bulk_loaded_and_cracking_equally_accurate() {
    let ds = movie_like(&MovieConfig::tiny());
    let store = embed(&ds.graph);
    let scan_store = store.clone();
    let scan = LinearScan::new(&scan_store);
    let qs = queries_for(&ds.graph, 10);

    let mut cracking = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        store.clone(),
        VkgConfig::default(),
    );
    let mut bulk = VirtualKnowledgeGraph::assemble_bulk_loaded(
        ds.graph.clone(),
        ds.attributes.clone(),
        store,
        VkgConfig::default(),
    );
    let pc = precision_at_k(&mut cracking, &scan, &qs, 10);
    let pb = precision_at_k(&mut bulk, &scan, &qs, 10);
    // Same transform, same candidates — results must agree exactly.
    assert!(
        (pc - pb).abs() < 1e-9,
        "cracking precision {pc} != bulk precision {pb}"
    );
    // And the cracking index must be the smaller structure.
    assert!(cracking.index_node_count() < bulk.index_node_count());
}
