//! Runner configuration.

/// Controls how many random cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the offline test suite
        // fast while still exercising each property broadly.
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}
