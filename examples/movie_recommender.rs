//! Movie recommender over the MovieLens-like dataset (the paper's §VI
//! "Movie (Top-k)" scenario).
//!
//! Recommends unseen movies for several users with the cracking index,
//! compares each answer against the exact no-index scan (precision@K,
//! the metric of Figure 6), and shows how the index converges over the
//! query sequence.
//!
//! Run with: `cargo run --release --example movie_recommender`

use std::time::Instant;

use vkg::prelude::*;

fn main() {
    let cfg = MovieConfig {
        users: 800,
        movies: 1_500,
        ratings_per_user: 25,
        ..MovieConfig::default()
    };
    let ds = movie_like(&cfg);
    println!("dataset: {} — {}", ds.name, ds.graph.stats());

    // The harness-style embedding: alternating least squares converges to
    // the tight h + r ≈ t geometry of a production embedding in seconds
    // (swap in `TransE::new(...).train(...)` for the SGD trainer).
    let t = Instant::now();
    let embeddings = vkg::embed::least_squares_embedding(
        &ds.graph,
        &vkg::embed::LsConfig {
            dim: 32,
            ..Default::default()
        },
    );
    println!("embeddings trained in {:.1?}", t.elapsed());

    let scan_store = embeddings.clone();
    let scan = LinearScan::new(&scan_store);

    let vkg = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        embeddings,
        VkgConfig {
            alpha: 3,
            epsilon: 1.0,
            ..VkgConfig::default()
        },
    );

    let likes = vkg.graph().relation_id("likes").unwrap();
    let movie_filter = {
        let g = vkg.graph().clone();
        move |e: EntityId| g.entity_name(e).is_some_and(|n| n.starts_with("movie_"))
    };

    let k = 10;
    let mut total_precision = 0.0;
    let mut queries = 0usize;
    println!("\nper-query latency and precision@{k} vs the exact no-index scan:");
    for u in (0..cfg.users).step_by(cfg.users / 16) {
        let user = ds.graph.entity_id(&format!("user_{u}")).unwrap();

        let t = Instant::now();
        let rec = vkg
            .top_k_filtered(user, likes, Direction::Tails, k, &movie_filter)
            .expect("valid query");
        let indexed_time = t.elapsed();

        // Ground truth: exact scan with identical E′ semantics.
        let known: std::collections::HashSet<u32> =
            ds.graph.tails(user, likes).map(|e| e.0).collect();
        let mf = &movie_filter;
        let truth = scan.top_k_tails(user, likes, k, |id| {
            id == user.0 || known.contains(&id) || !mf(EntityId(id))
        });
        let truth_ids: std::collections::HashSet<u32> = truth.iter().map(|t| t.0).collect();
        let hits = rec
            .predictions
            .iter()
            .filter(|p| truth_ids.contains(&p.id))
            .count();
        let precision = hits as f64 / k as f64;
        total_precision += precision;
        queries += 1;

        println!(
            "  user_{u:<4} {:>9.1?}   precision@{k} {:.2}   index nodes {}",
            indexed_time,
            precision,
            vkg.index_node_count()
        );
        if queries == 1 {
            println!("    first recommendations:");
            for p in rec.predictions.iter().take(3) {
                println!(
                    "      {}  p={:.3}",
                    ds.graph.entity_name(EntityId(p.id)).unwrap(),
                    p.probability
                );
            }
        }
    }
    println!(
        "\nmean precision@{k}: {:.3}   (paper reports ≥ 0.945 for movie data)",
        total_precision / queries as f64
    );
    let s = vkg.index_stats();
    println!(
        "index: {} nodes, {} splits, {} KiB — no offline build was ever run",
        vkg.index_node_count(),
        s.splits_performed,
        vkg.index_bytes() / 1024
    );
}
