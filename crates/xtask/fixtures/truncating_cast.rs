// pretend: crates/server/src/wire.rs
// Fixture for the decode-path rules: truncating `as` casts and
// Instant::now() are forbidden in wire.rs / protocol.rs.

fn truncating(n: usize) -> u32 {
    n as u32 // expect: no-truncating-cast
}

fn truncating_small(n: u64) -> u16 {
    n as u16 // expect: no-truncating-cast
}

fn bounded(n: usize) -> u32 {
    // lint: allow(no-truncating-cast, n <= MAX_FRAME < 2^32 by construction)
    n as u32
}

fn widening(x: u32) -> u64 {
    x as u64
}

fn float_is_fine(x: u32) -> f64 {
    x as f64
}

fn clock_in_codec() -> std::time::Instant {
    std::time::Instant::now() // expect: no-instant-now no-raw-timing
}
