//! Criterion counterpart of Figure 5: movie-like dataset, α = 3 vs 6,
//! with H2-ALSH on the single "likes" relation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vkg::prelude::*;
use vkg_bench::setup::{self, Scale};
use vkg_bench::workload;

fn bench_fig5(c: &mut Criterion) {
    let p = setup::movie(Scale::Smoke, 24);
    let queries = workload::generate(&p.dataset.graph, 256, 0xBE05);

    let mut group = c.benchmark_group("fig05_movie_topk");

    for alpha in [3usize, 6] {
        let cfg = VkgConfig {
            alpha,
            ..vkg_bench::setup::bench_config()
        };
        let snap = p.snapshot(cfg.clone());
        let mut engine = IndexState::cracking(&snap);
        for q in queries.iter().take(20) {
            let _ = workload::run(&mut engine, &snap, q, 10);
        }
        let qs = queries.clone();
        group.bench_function(&format!("cracking_alpha{alpha}"), move |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                black_box(workload::run(&mut engine, &snap, q, 10))
            })
        });

        let snap = p.snapshot(cfg);
        let mut bulk = IndexState::bulk_loaded(&snap);
        let qs = queries.clone();
        group.bench_function(&format!("bulk_alpha{alpha}"), move |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                black_box(workload::run(&mut bulk, &snap, q, 10))
            })
        });
    }

    // H2-ALSH: single relation MIPS over the movie vectors.
    let d = p.embeddings.dim();
    let movies: Vec<EntityId> = (0..p.dataset.graph.num_entities() as u32)
        .map(EntityId)
        .filter(|&e| {
            p.dataset
                .graph
                .entity_name(e)
                .is_some_and(|n| n.starts_with("movie_"))
        })
        .collect();
    let mut data = Vec::with_capacity(movies.len() * d);
    for &m in &movies {
        data.extend_from_slice(p.embeddings.entity(m));
    }
    let idx = H2Alsh::build(data, d, H2AlshConfig::default());
    let users: Vec<EntityId> = (0..p.dataset.graph.num_entities() as u32)
        .map(EntityId)
        .filter(|&e| {
            p.dataset
                .graph
                .entity_name(e)
                .is_some_and(|n| n.starts_with("user_"))
        })
        .collect();
    group.bench_function("h2alsh_likes", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let u = users[i % users.len()];
            i += 1;
            black_box(idx.top_k_mips(p.embeddings.entity(u), 10, |_| false))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig5
}
criterion_main!(benches);
