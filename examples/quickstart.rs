//! Quickstart: build a virtual knowledge graph over a toy restaurant
//! scene (the paper's Figure 1) and ask the two headline queries:
//!
//! * Q1 — "top-k restaurants Amy would rate high but has not been to yet"
//! * Q2 — "expected average age of the people who would like Restaurant 2"
//!
//! Run with: `cargo run --example quickstart`

use vkg::prelude::*;

fn main() {
    // --- The knowledge graph of Figure 1 -------------------------------
    let mut graph = KnowledgeGraph::new();
    let people = ["amy", "bob", "carol", "dave", "erin", "frank"];
    let restaurants: Vec<String> = (1..=8).map(|i| format!("restaurant_{i}")).collect();
    let styles = ["italian", "mexican", "thai"];

    // Restaurants belong to styles.
    for (i, r) in restaurants.iter().enumerate() {
        graph
            .add_fact(r, "belongs_to", styles[i % styles.len()])
            .unwrap();
    }
    // People rate restaurants they've been to; tastes follow styles:
    // person j likes style j % 3.
    for (j, p) in people.iter().enumerate() {
        for (i, r) in restaurants.iter().enumerate() {
            if i % styles.len() == j % styles.len() && i / styles.len() == j % 2 {
                graph.add_fact(p, "rates_high", r).unwrap();
            }
        }
        graph
            .add_fact(p, "frequents", &format!("grocery_{}", j % 2 + 1))
            .unwrap();
    }

    // Ages for the aggregate query.
    let mut attributes = AttributeStore::new();
    for (j, p) in people.iter().enumerate() {
        let id = graph.entity_id(p).unwrap();
        attributes.set("age", id, 25.0 + 7.0 * j as f64);
    }

    println!("knowledge graph: {}", graph.stats());

    // --- Embedding: the algorithm 𝒜 inducing the virtual KG ------------
    let (embeddings, stats) = TransE::new(TransEConfig {
        dim: 24,
        epochs: 200,
        learning_rate: 0.02,
        ..TransEConfig::default()
    })
    .train(&graph);
    println!(
        "TransE trained: d={} final loss {:.4}",
        embeddings.dim(),
        stats.final_loss().unwrap_or(0.0)
    );

    // --- Assemble the virtual knowledge graph --------------------------
    let vkg = VirtualKnowledgeGraph::assemble(
        graph,
        attributes,
        embeddings,
        VkgConfig {
            alpha: 3,
            epsilon: 1.0,
            leaf_capacity: 4,
            fanout: 4,
            ..VkgConfig::default()
        },
    );

    // --- Q1: top-3 restaurants Amy would rate high ---------------------
    let amy = vkg.graph().entity_id("amy").unwrap();
    let rates_high = vkg.graph().relation_id("rates_high").unwrap();
    let graph_snapshot = vkg.graph().clone();
    let q1 = vkg
        .top_k_filtered(amy, rates_high, Direction::Tails, 3, |e| {
            graph_snapshot
                .entity_name(e)
                .is_some_and(|n| n.starts_with("restaurant_"))
        })
        .expect("valid query");

    println!("\nQ1: top-3 restaurants Amy would rate high (not yet visited):");
    for p in &q1.predictions {
        println!(
            "  {:14}  distance {:.3}  probability {:.3}",
            vkg.graph().entity_name(EntityId(p.id)).unwrap(),
            p.distance,
            p.probability,
        );
    }
    println!(
        "  Theorem 2 guarantee: no true top-k missed with prob ≥ {:.3}, expected misses ≤ {:.3}",
        q1.guarantee.success_probability, q1.guarantee.expected_misses
    );

    // --- Q2: average age of likely fans of restaurant_2 ----------------
    let r2 = vkg.graph().entity_id("restaurant_2").unwrap();
    let q2 = vkg
        .aggregate(
            r2,
            rates_high,
            Direction::Heads,
            &AggregateSpec::of(AggregateKind::Avg, "age", 0.05),
        )
        .expect("valid aggregate");
    println!(
        "\nQ2: expected average age of people who would like restaurant_2: {:.1}",
        q2.estimate
    );
    println!(
        "  ball size {}   accessed {}   90%-confidence relative error ±{:.1}%",
        q2.ball_size,
        q2.accessed,
        100.0 * q2.bound.delta_for_confidence(0.9)
    );

    // --- The index shaped itself around the two queries ----------------
    let s = vkg.index_stats();
    println!(
        "\nindex after 2 queries: {} nodes, {} splits, {} bytes",
        vkg.index_node_count(),
        s.splits_performed,
        vkg.index_bytes()
    );
}
