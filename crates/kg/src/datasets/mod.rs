//! Synthetic dataset generators standing in for the paper's real datasets.
//!
//! The paper evaluates on Freebase, MovieLens and Amazon review data
//! (Table I). Those dumps are not redistributable here, so each generator
//! produces a graph with the same *structure*: the same relationship-type
//! inventory, power-law (Zipf) degree distributions, latent-factor-driven
//! like/dislike edges (so that embeddings find real geometric structure),
//! and the attributes the aggregate-query experiments read (`age`, `year`,
//! `quality`, `popularity`). Entity counts are scaled to laptop size and
//! are configurable; DESIGN.md §2 records the substitution rationale.

mod amazon;
mod freebase;
mod movie;

pub use amazon::{amazon_like, AmazonConfig};
pub use freebase::{freebase_like, FreebaseConfig};
pub use movie::{movie_like, MovieConfig};

use crate::attributes::AttributeStore;
use crate::graph::KnowledgeGraph;
use crate::ids::EntityId;

/// A generated dataset: graph + attributes + bookkeeping for experiments.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name ("freebase-like", ...).
    pub name: String,
    /// The materialized knowledge graph `G = (V, E)`.
    pub graph: KnowledgeGraph,
    /// Per-entity numeric attributes for aggregate queries.
    pub attributes: AttributeStore,
}

impl Dataset {
    /// Computes and stores the `popularity` attribute (total degree) for
    /// every entity — the attribute the Freebase MAX-query experiment
    /// (Fig. 15) aggregates.
    pub fn compute_popularity(&mut self) {
        for i in 0..self.graph.num_entities() {
            let e = EntityId(i as u32);
            self.attributes
                .set("popularity", e, self.graph.degree(e) as f64);
        }
    }

    /// Entities whose name starts with `prefix` (e.g. all `user_` vertices).
    pub fn entities_with_prefix(&self, prefix: &str) -> Vec<EntityId> {
        (0..self.graph.num_entities() as u32)
            .map(EntityId)
            .filter(|&e| {
                self.graph
                    .entity_name(e)
                    .is_some_and(|n| n.starts_with(prefix))
            })
            .collect()
    }
}

/// Clamp-free helper: linearly rescales a dot product into a star rating
/// in `[0.5, 5.0]` with half-star steps, like MovieLens ratings.
pub(crate) fn to_star_rating(score: f64) -> f64 {
    let clamped = score.clamp(-1.0, 1.0);
    let stars = 0.5 + (clamped + 1.0) / 2.0 * 4.5;
    (stars * 2.0).round() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_rating_range_and_step() {
        for &s in &[-2.0, -1.0, -0.3, 0.0, 0.4, 1.0, 3.0] {
            let r = to_star_rating(s);
            assert!((0.5..=5.0).contains(&r), "rating {r} out of range");
            let doubled = r * 2.0;
            assert!(
                (doubled - doubled.round()).abs() < 1e-9,
                "not a half-star: {r}"
            );
        }
        assert_eq!(to_star_rating(1.0), 5.0);
        assert_eq!(to_star_rating(-1.0), 0.5);
    }

    #[test]
    fn popularity_matches_degree() {
        let mut ds = movie_like(&MovieConfig::tiny());
        ds.compute_popularity();
        for i in (0..ds.graph.num_entities()).step_by(7) {
            let e = EntityId(i as u32);
            assert_eq!(
                ds.attributes.get("popularity", e).unwrap(),
                Some(ds.graph.degree(e) as f64)
            );
        }
    }

    #[test]
    fn prefix_filter_finds_users() {
        let ds = movie_like(&MovieConfig::tiny());
        let users = ds.entities_with_prefix("user_");
        assert_eq!(users.len(), MovieConfig::tiny().users);
    }
}
