//! Dataset/embedding preparation shared by the harness and the benches.
//!
//! The experiments run at three scales ([`Scale`]) so CI can exercise the
//! full matrix quickly while a workstation regenerates the figures at a
//! size where the paper's effects are clearly visible.

use vkg::prelude::*;

/// Experiment scale (entity counts; see DESIGN.md §2 on why scaled-down
/// synthetic datasets preserve the figures' shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast; used by tests and smoke runs.
    Smoke,
    /// Default for `run_experiments`.
    Standard,
    /// Larger run for scaling comparisons (Fig. 5 vs Fig. 7).
    Large,
}

impl Scale {
    /// Parses `smoke`/`standard`/`large`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "standard" => Some(Scale::Standard),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    fn factor(self) -> f64 {
        match self {
            Scale::Smoke => 0.05,
            Scale::Standard => 0.4,
            Scale::Large => 1.0,
        }
    }
}

/// A prepared dataset: graph + attributes + trained embeddings.
pub struct Prepared {
    /// The dataset (graph + attributes).
    pub dataset: Dataset,
    /// Embeddings over the dataset's graph.
    pub embeddings: EmbeddingStore,
}

/// The harness embeds with the alternating-least-squares trainer rather
/// than quick TransE: it converges to the tight `h + r ≈ t` geometry of
/// the precomputed embeddings the paper imports, at a fraction of the
/// cost (DESIGN.md §2 records this substitution).
fn embed(graph: &vkg::kg::KnowledgeGraph, dim: usize) -> EmbeddingStore {
    vkg::embed::least_squares_embedding(
        graph,
        &vkg::embed::LsConfig {
            dim,
            ..vkg::embed::LsConfig::default()
        },
    )
}

/// Engine configuration used by all experiments: ε = 0.5 keeps the query
/// ball a small fraction of the point cloud at our synthetic scale (the
/// paper's 17M-entity datasets put the top-k radius much deeper into the
/// distance distribution's tail than a ~10⁴-entity stand-in can); the
/// `abl_eps` ablation sweeps the trade-off.
pub fn bench_config() -> VkgConfig {
    VkgConfig {
        epsilon: 0.5,
        ..VkgConfig::default()
    }
}

/// Freebase-like dataset with trained embeddings (Figs. 3, 4, 9, 12, 15).
pub fn freebase(scale: Scale, dim: usize) -> Prepared {
    let mut ds = freebase_like(&FreebaseConfig::scaled(scale.factor()));
    ds.compute_popularity();
    let embeddings = embed(&ds.graph, dim);
    Prepared {
        dataset: ds,
        embeddings,
    }
}

/// Movie-like dataset with trained embeddings (Figs. 5, 6, 10, 13, 16).
pub fn movie(scale: Scale, dim: usize) -> Prepared {
    let ds = movie_like(&MovieConfig::scaled(scale.factor()));
    let embeddings = embed(&ds.graph, dim);
    Prepared {
        dataset: ds,
        embeddings,
    }
}

/// Amazon-like dataset with trained embeddings (Figs. 7, 8, 11, 14).
pub fn amazon(scale: Scale, dim: usize) -> Prepared {
    let ds = amazon_like(&AmazonConfig::scaled(scale.factor()));
    let embeddings = embed(&ds.graph, dim);
    Prepared {
        dataset: ds,
        embeddings,
    }
}

impl Prepared {
    /// Builds the immutable read snapshot every [`QueryEngine`] in a run
    /// shares. Engines are built *per method*, the snapshot once per
    /// configuration.
    pub fn snapshot(&self, cfg: VkgConfig) -> VkgSnapshot {
        match VkgSnapshot::new(
            self.dataset.graph.clone(),
            self.dataset.attributes.clone(),
            self.embeddings.clone(),
            cfg,
        ) {
            Ok(s) => s,
            // lint: allow(no-unwrap, Prepared constructors validate the dataset/embedding pairing)
            Err(e) => panic!("prepared data is internally consistent: {e}"),
        }
    }

    /// Assembles a fresh online-cracking engine over this data.
    pub fn engine(&self, cfg: VkgConfig) -> VirtualKnowledgeGraph {
        VirtualKnowledgeGraph::assemble(
            self.dataset.graph.clone(),
            self.dataset.attributes.clone(),
            self.embeddings.clone(),
            cfg,
        )
    }

    /// Assembles a fresh bulk-loaded engine over this data.
    pub fn engine_bulk(&self, cfg: VkgConfig) -> VirtualKnowledgeGraph {
        VirtualKnowledgeGraph::assemble_bulk_loaded(
            self.dataset.graph.clone(),
            self.dataset.attributes.clone(),
            self.embeddings.clone(),
            cfg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("standard"), Some(Scale::Standard));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn smoke_preparation_works() {
        let p = movie(Scale::Smoke, 16);
        assert!(p.dataset.graph.num_edges() > 0);
        assert_eq!(p.embeddings.num_entities(), p.dataset.graph.num_entities());
        let engine = p.engine(VkgConfig::default());
        let likes = engine.graph().relation_id("likes").unwrap();
        let user = engine.graph().entity_id("user_0").unwrap();
        let r = engine.top_k(user, likes, Direction::Tails, 3).unwrap();
        assert!(r.predictions.len() <= 3);
    }
}
