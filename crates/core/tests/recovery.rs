//! Crash-recovery suite for the write-ahead log (DESIGN.md §3.9):
//!
//! * property tests — WAL records survive an encode/decode roundtrip
//!   bit-identically, and [`vkg_core::wal::decode_log`] never panics on
//!   arbitrarily truncated or corrupted images;
//! * the fault matrix — a seeded [`FaultPlane`] kills the durability
//!   path at every byte offset × {1, 4} engine shards × {cache off,
//!   on}; after each crash a fresh engine recovers the log and must
//!   hold exactly the acked prefix: no acked write lost, none applied
//!   twice, no panic on a torn tail;
//! * WAL-off equivalence — attaching a WAL changes nothing observable
//!   about the write path's results.

use std::path::PathBuf;

use proptest::prelude::*;

use vkg_core::vkg::VirtualKnowledgeGraph;
use vkg_core::wal::fault::FaultPlane;
use vkg_core::wal::{self, WalRecord, RECORD_BYTES, WAL_MAGIC};
use vkg_core::{Direction, SplitStrategy, VkgConfig};
use vkg_embed::EmbeddingStore;
use vkg_kg::{AttributeStore, EntityId, KnowledgeGraph, RelationId};

/// A WAL path in the temp dir, removed again on drop.
struct TempWal(PathBuf);

impl TempWal {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("vkg_recovery_{}_{tag}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        TempWal(p)
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// The model-test fixture: users u0..u3 at x = i, items m0..m5 at
/// x = 10 + i, "likes" translating by +10, so uᵢ + likes ≈ mᵢ. One
/// pre-existing edge (u0, likes, m0).
fn tiny_vkg(shards: usize, cache_capacity: usize) -> (VirtualKnowledgeGraph, RelationId) {
    let dim = 8;
    let mut g = KnowledgeGraph::new();
    let likes = g.add_relation("likes");
    let users: Vec<_> = (0..4).map(|i| g.add_entity(&format!("u{i}"))).collect();
    let items: Vec<_> = (0..6).map(|i| g.add_entity(&format!("m{i}"))).collect();
    g.add_triple(users[0], likes, items[0]).expect("fresh edge");

    let mut ent = vec![0.0; 10 * dim];
    for (i, _) in users.iter().enumerate() {
        ent[i * dim] = i as f64;
    }
    for (j, _) in items.iter().enumerate() {
        ent[(4 + j) * dim] = 10.0 + j as f64;
        ent[(4 + j) * dim + 1] = 0.5;
    }
    let mut rel = vec![0.0; dim];
    rel[0] = 10.0;
    rel[1] = 0.5;
    let store = EmbeddingStore::from_raw(dim, ent, rel);

    let mut attrs = AttributeStore::new();
    for (j, &m) in items.iter().enumerate() {
        attrs.set("year", m, 2000.0 + j as f64);
    }
    let cfg = VkgConfig {
        alpha: 3,
        epsilon: 3.0,
        leaf_capacity: 2,
        fanout: 2,
        beta: 2.0,
        split_strategy: SplitStrategy::Greedy,
        query_aware_cost: true,
        transform_seed: 7,
        threads: 1,
        shards,
        cache_capacity,
    };
    let vkg = VirtualKnowledgeGraph::try_assemble(g, attrs, store, cfg).expect("tiny world");
    (vkg, likes)
}

/// The 23 fresh (user, item) pairs of the fixture, in a fixed order.
fn write_plan(vkg: &VirtualKnowledgeGraph) -> Vec<(EntityId, EntityId)> {
    let mut plan = Vec::new();
    for u in 0..4 {
        for m in 0..6 {
            if (u, m) == (0, 0) {
                continue; // pre-existing edge
            }
            let h = vkg.graph().entity_id(&format!("u{u}")).expect("user");
            let t = vkg.graph().entity_id(&format!("m{m}")).expect("item");
            plan.push((h, t));
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode → decode is bit-identical for arbitrary records,
    /// including non-finite learning rates (PartialEq on `WalRecord`
    /// compares `f64::to_bits`, so NaN payloads count too).
    #[test]
    fn wal_record_roundtrip_is_bit_identical(
        epoch in any::<u64>(),
        token in any::<u64>(),
        h in any::<u32>(),
        r in any::<u32>(),
        t in any::<u32>(),
        refine_steps in any::<u32>(),
        lr_bits in any::<u64>(),
    ) {
        let record = WalRecord {
            epoch,
            token,
            h,
            r,
            t,
            refine_steps,
            learning_rate: f64::from_bits(lr_bits),
        };
        let mut image = WAL_MAGIC.to_vec();
        image.extend_from_slice(&record.encode());
        let (records, stats) = wal::decode_log(&image).expect("well-formed log");
        prop_assert_eq!(records.len(), 1);
        prop_assert_eq!(records[0], record);
        prop_assert_eq!(records[0].encode(), record.encode());
        prop_assert_eq!(stats.replayed, 1);
        prop_assert_eq!(stats.truncated_bytes, 0);
        prop_assert_eq!(stats.good_bytes, image.len() as u64);
    }

    /// Truncating a valid log at ANY byte offset never panics, yields a
    /// prefix of the original records, and accounts for every byte as
    /// either good or truncated.
    #[test]
    fn arbitrary_truncation_recovers_a_prefix(
        n in 0usize..6,
        cut_seed in any::<u64>(),
        lr_bits in any::<u64>(),
    ) {
        let mut image = WAL_MAGIC.to_vec();
        let originals: Vec<WalRecord> = (0..n as u64)
            .map(|i| WalRecord {
                epoch: i + 1,
                token: i * 7 + 1,
                h: i as u32,
                r: 0,
                t: i as u32 + 100,
                refine_steps: 2,
                learning_rate: f64::from_bits(lr_bits ^ i),
            })
            .collect();
        for rec in &originals {
            image.extend_from_slice(&rec.encode());
        }
        let cut = (cut_seed % (image.len() as u64 + 1)) as usize;
        let torn = &image[..cut];
        let (records, stats) = wal::decode_log(torn).expect("magic prefix stays valid");
        let whole = cut.saturating_sub(WAL_MAGIC.len()) / RECORD_BYTES;
        prop_assert_eq!(records.len(), whole.min(n));
        for (got, want) in records.iter().zip(&originals) {
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(
            stats.good_bytes + stats.truncated_bytes,
            torn.len() as u64
        );
    }

    /// Corrupting any single byte of a valid log never panics and never
    /// yields a record that was not written: decode stops at (or cleanly
    /// skips past nothing but) the corruption.
    #[test]
    fn single_byte_corruption_never_fabricates_records(
        flip_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut image = WAL_MAGIC.to_vec();
        let originals: Vec<WalRecord> = (0..4u64)
            .map(|i| WalRecord {
                epoch: i + 1,
                token: i + 1,
                h: i as u32,
                r: 0,
                t: i as u32 + 100,
                refine_steps: 2,
                learning_rate: 0.01,
            })
            .collect();
        for rec in &originals {
            image.extend_from_slice(&rec.encode());
        }
        let at = (flip_seed % image.len() as u64) as usize;
        image[at] ^= 1 << bit;
        match wal::decode_log(&image) {
            Err(wal::WalError::BadMagic) => prop_assert!(at < WAL_MAGIC.len()),
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
            Ok((records, _)) => {
                // Every decoded record is one of the originals, still in
                // order — the checksum catches anything else.
                prop_assert!(records.len() <= originals.len());
                for (i, got) in records.iter().enumerate() {
                    prop_assert_eq!(got, &originals[i]);
                }
            }
        }
    }
}

/// The fault matrix. Each cell: attach a WAL behind a seeded fault
/// plane, write until the injected fault "crashes" the process, then
/// recover into a fresh engine and check the crash-recovery invariant —
/// every acked write present, none applied twice, and an independent
/// replay of the log agrees with the recovered engine.
#[test]
fn fault_matrix_recovery_holds_acked_prefix() {
    for seed in 0..64u64 {
        for &shards in &[1usize, 4] {
            for &cache in &[0usize, 64] {
                fault_matrix_cell(seed, shards, cache);
            }
        }
    }
}

fn fault_matrix_cell(seed: u64, shards: usize, cache: usize) {
    let wal_file = TempWal::new(&format!("matrix_{seed}_{shards}_{cache}"));
    let ctx = format!("seed {seed}, {shards} shard(s), cache {cache}");

    // Phase 1: live process, faults armed. `acked` collects exactly the
    // writes whose Ok the "client" observed before the crash.
    let mut acked: Vec<(u64, EntityId, EntityId, bool)> = Vec::new();
    {
        let (vkg, likes) = tiny_vkg(shards, cache);
        let plan = write_plan(&vkg);
        let fault = FaultPlane::seeded(seed, plan.len() as u64 + 1);
        if vkg.attach_wal(&wal_file.0, fault).is_ok() {
            for (i, &(h, t)) in plan.iter().enumerate() {
                let token = 1000 + i as u64;
                match vkg.add_fact_durable(token, h, likes, t, 2, 0.01) {
                    Ok((added, _epoch)) => acked.push((token, h, t, added)),
                    // The injected fault surfaced: the process "dies"
                    // here, mid-write, ack never sent.
                    Err(_) => break,
                }
            }
        }
        // else: the fault fired while writing the magic header — the
        // crash happened before any write was acked.
    }

    // Phase 2: restart. Recovery over the torn file must never fail or
    // panic, and must reconstruct at least the acked prefix.
    let (recovered, likes) = tiny_vkg(shards, cache);
    let report = recovered
        .attach_wal(&wal_file.0, FaultPlane::none())
        .unwrap_or_else(|e| panic!("recovery failed ({ctx}): {e}"));
    let acked_adds = acked.iter().filter(|a| a.3).count() as u64;
    assert!(
        report.replayed >= acked_adds,
        "lost acked writes ({ctx}): replayed {} < acked {}",
        report.replayed,
        acked_adds
    );
    for &(_token, h, t, added) in &acked {
        if added {
            assert!(
                recovered.graph().tails(h, likes).any(|e| e == t),
                "acked edge missing after recovery ({ctx})"
            );
        }
    }

    // At-most-once: retrying every acked token is answered from the
    // recovered idempotency map without publishing anything new.
    let epoch_before = recovered.epoch();
    for &(token, h, t, _added) in &acked {
        recovered
            .add_fact_durable(token, h, likes, t, 2, 0.01)
            .unwrap_or_else(|e| panic!("retry after recovery failed ({ctx}): {e}"));
    }
    assert_eq!(
        recovered.epoch(),
        epoch_before,
        "a retried acked write re-applied ({ctx})"
    );

    // Parity: an independent in-process replay of the repaired log
    // reaches the same state (same epoch, identical predictions).
    let (records, _stats) = wal::replay(&wal_file.0).expect("repaired log readable");
    let (oracle, oracle_likes) = tiny_vkg(shards, cache);
    for rec in &records {
        oracle
            .add_fact_dynamic(
                EntityId(rec.h),
                RelationId(rec.r),
                EntityId(rec.t),
                rec.refine_steps as usize,
                rec.learning_rate,
            )
            .unwrap_or_else(|e| panic!("oracle replay failed ({ctx}): {e}"));
    }
    assert_eq!(oracle.epoch(), report.epoch, "epoch parity ({ctx})");
    let probe = recovered.graph().entity_id("u1").expect("u1");
    let a = recovered
        .top_k(probe, likes, Direction::Tails, 3)
        .expect("query recovered engine");
    let b = oracle
        .top_k(probe, oracle_likes, Direction::Tails, 3)
        .expect("query oracle engine");
    assert_eq!(
        a.predictions.len(),
        b.predictions.len(),
        "top-k parity ({ctx})"
    );
    for (x, y) in a.predictions.iter().zip(&b.predictions) {
        assert_eq!(x.id, y.id, "top-k id parity ({ctx})");
        assert_eq!(
            x.distance.to_bits(),
            y.distance.to_bits(),
            "top-k distance parity ({ctx})"
        );
    }
}

/// Attaching a WAL must not change anything observable about the write
/// path: same epochs, same outcomes, bit-identical predictions as the
/// plain in-memory engine.
#[test]
fn wal_on_is_bit_identical_to_in_memory() {
    let wal_file = TempWal::new("equivalence");
    let (durable, likes_d) = tiny_vkg(2, 16);
    durable
        .attach_wal(&wal_file.0, FaultPlane::none())
        .expect("fresh WAL");
    let (memory, likes_m) = tiny_vkg(2, 16);

    let plan = write_plan(&durable);
    for (i, &(h, t)) in plan.iter().enumerate() {
        let a = durable
            .add_fact_durable(1 + i as u64, h, likes_d, t, 2, 0.01)
            .expect("durable write");
        let b = memory
            .add_fact_dynamic(h, likes_m, t, 2, 0.01)
            .expect("in-memory write");
        assert_eq!(a, b, "write {i} outcome diverged");
    }
    assert_eq!(durable.epoch(), memory.epoch());
    for u in 0..4 {
        let pd = durable.graph().entity_id(&format!("u{u}")).expect("user");
        let a = durable
            .top_k(pd, likes_d, Direction::Tails, 4)
            .expect("durable query");
        let b = memory
            .top_k(pd, likes_m, Direction::Tails, 4)
            .expect("in-memory query");
        assert_eq!(a.predictions.len(), b.predictions.len());
        for (x, y) in a.predictions.iter().zip(&b.predictions) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            assert_eq!(x.probability.to_bits(), y.probability.to_bits());
        }
    }
}

/// A crash *between* append and ack (simulated by a flush failure, so
/// the record is on disk but the caller saw an error) replays the
/// unacked write on recovery, and the client's retry of that token is
/// answered from the map instead of applying twice.
#[test]
fn logged_but_unacked_write_replays_once() {
    use vkg_core::wal::fault::FaultSpec;

    let wal_file = TempWal::new("unacked");
    let (vkg, likes) = tiny_vkg(1, 0);
    // Flush 0 opens the log (magic); flush 2 is the second append.
    let fault = FaultPlane::with_spec(FaultSpec {
        kill_after_bytes: None,
        short_write_at: None,
        flush_fail_at: Some(2),
    });
    vkg.attach_wal(&wal_file.0, fault).expect("attach");
    let u1 = vkg.graph().entity_id("u1").expect("u1");
    let m1 = vkg.graph().entity_id("m1").expect("m1");
    let m2 = vkg.graph().entity_id("m2").expect("m2");
    vkg.add_fact_durable(7, u1, likes, m1, 2, 0.01)
        .expect("first write acked");
    // Second write: logged, flush fails, NOT acked, engine unchanged.
    let before = vkg.epoch();
    let err = vkg.add_fact_durable(8, u1, likes, m2, 2, 0.01);
    assert!(err.is_err(), "flush failure must surface");
    assert_eq!(vkg.epoch(), before, "failed write must not publish");
    assert!(
        !vkg.graph().tails(u1, likes).any(|e| e == m2),
        "failed write must not mutate the graph"
    );
    drop(vkg);

    // Restart: the logged-but-unacked record replays exactly once…
    let (recovered, likes) = tiny_vkg(1, 0);
    let report = recovered
        .attach_wal(&wal_file.0, FaultPlane::none())
        .expect("recover");
    assert_eq!(report.replayed, 2);
    assert!(recovered.graph().tails(u1, likes).any(|e| e == m2));
    // …and the client's retry of token 8 does not double-apply.
    let epoch = recovered.epoch();
    let (added, _) = recovered
        .add_fact_durable(8, u1, likes, m2, 2, 0.01)
        .expect("dedup answer");
    assert!(added, "replayed outcome echoed");
    assert_eq!(recovered.epoch(), epoch, "retry must not publish");
}
