//! A fixed-width, chunk-claiming data-parallel pool.
//!
//! [`Pool::run`] splits a job into `chunks` numbered work items and
//! lets `width` threads race to claim them off a shared atomic
//! counter — the classic "steal the next index" loop, which needs no
//! per-worker deques because every item costs roughly the same. The
//! pool is *scoped*: workers are spawned per call via
//! [`thread::scope`], may borrow the caller's stack (the closure and
//! its captures need only live as long as the call), and are all
//! joined before `run` returns, so the join is a real happens-before
//! barrier for everything the workers wrote.
//!
//! Width 1 (or a single chunk) takes an exact serial path on the
//! calling thread — no spawns, no atomics, no scheduling points — so
//! serial results are bit-identical to the pre-pool code and model
//! tests stay deterministic.
//!
//! A panic inside a worker aborts the remaining work (other workers
//! stop claiming) and is re-thrown on the calling thread after the
//! barrier, mirroring what a plain serial loop would have done.
//!
//! Built entirely on the `vkg-sync` facade, so `--features model`
//! schedule-checks the claim loop, the barrier, and the panic path
//! like any other workspace concurrency (see `tests/model.rs`).

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};

use crate::{thread, Arc, AtomicBool, AtomicU64, Mutex, Ordering};

/// Dispatch statistics for a [`Pool`], shared by `Arc` so observers
/// read while the pool runs. Counts are exact at quiescence (after any
/// `run` returns): each job increments exactly one of the run counters,
/// and `chunks_claimed` advances by the job's chunk count when it is
/// dispatched parallel (each chunk is claimed exactly once unless a
/// worker panic aborts the job early).
#[derive(Debug, Default)]
pub struct PoolStats {
    serial_runs: AtomicU64,
    parallel_runs: AtomicU64,
    chunks_claimed: AtomicU64,
}

impl PoolStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jobs that took the exact serial path (width 1, or ≤ 1 chunk).
    pub fn serial_runs(&self) -> u64 {
        // relaxed: pure statistic; no reader infers other state from it.
        self.serial_runs.load(Ordering::Relaxed)
    }

    /// Jobs dispatched across ≥ 2 worker threads.
    pub fn parallel_runs(&self) -> u64 {
        // relaxed: pure statistic; no reader infers other state from it.
        self.parallel_runs.load(Ordering::Relaxed)
    }

    /// Chunks handed to parallel claim loops across all jobs.
    pub fn chunks_claimed(&self) -> u64 {
        // relaxed: pure statistic; no reader infers other state from it.
        self.chunks_claimed.load(Ordering::Relaxed)
    }
}

/// A fixed-width scoped thread pool. Stateless between calls: the
/// width (and an optional stats sink) is the only configuration,
/// threads exist only inside [`Pool::run`].
#[derive(Debug, Clone)]
pub struct Pool {
    width: usize,
    stats: Option<Arc<PoolStats>>,
}

impl Pool {
    /// Creates a pool that runs jobs on up to `width` threads
    /// (including the caller). Width 0 is clamped to 1.
    pub const fn new(width: usize) -> Self {
        Self {
            width: if width == 0 { 1 } else { width },
            // `None` keeps the constructor const (statics build serial
            // pools); attach a sink with [`Pool::with_stats`].
            stats: None,
        }
    }

    /// Attaches a dispatch-statistics sink: every subsequent job
    /// (including on clones of this pool) counts itself there.
    pub fn with_stats(mut self, stats: Arc<PoolStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The attached statistics sink, if any.
    pub fn stats(&self) -> Option<&Arc<PoolStats>> {
        self.stats.as_ref()
    }

    /// A width-1 pool: every job runs inline on the caller's thread.
    pub const fn serial() -> Self {
        Self::new(1)
    }

    /// The configured width.
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Whether jobs run inline on the caller's thread.
    pub const fn is_serial(&self) -> bool {
        self.width == 1
    }

    /// Runs `f(i)` exactly once for every `i in 0..chunks`.
    ///
    /// Serial when `width == 1` or `chunks <= 1` (in-order, on the
    /// calling thread); otherwise `min(width, chunks)` threads claim
    /// chunk indices from a shared counter in an arbitrary order. The
    /// caller participates as one of the workers. Returns after every
    /// chunk has run — a happens-before barrier for the workers'
    /// writes.
    ///
    /// # Panics
    /// Re-throws the first worker panic after all workers have
    /// stopped (remaining chunks may be skipped).
    pub fn run<F>(&self, chunks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if chunks == 0 {
            return;
        }
        let workers = self.width.min(chunks);
        if workers <= 1 {
            if let Some(stats) = &self.stats {
                // relaxed: pure statistic (see `PoolStats`).
                stats.serial_runs.fetch_add(1, Ordering::Relaxed);
            }
            // Exact serial path: in-order, no synchronization.
            for i in 0..chunks {
                f(i);
            }
            return;
        }
        if let Some(stats) = &self.stats {
            // relaxed: pure statistic (see `PoolStats`).
            stats.parallel_runs.fetch_add(1, Ordering::Relaxed);
            stats
                .chunks_claimed
                .fetch_add(chunks as u64, Ordering::Relaxed);
        }
        let next = AtomicU64::new(0);
        let abort = AtomicBool::new(false);
        let caught: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let work = || {
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                while !abort.load(Ordering::Acquire) {
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if i >= chunks {
                        break;
                    }
                    f(i);
                }
            }));
            if let Err(payload) = result {
                #[cfg(feature = "model")]
                if payload.is::<crate::model::runtime::ModelAbort>() {
                    // Scheduler teardown, not a user panic: let it
                    // keep unwinding this thread.
                    panic::resume_unwind(payload);
                }
                abort.store(true, Ordering::Release);
                let mut slot = caught.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        };
        thread::scope(|s| {
            // A `&closure` is Copy, so every worker can share one body.
            let worker = &work;
            for _ in 1..workers {
                s.spawn(worker);
            }
            work();
        });
        // The scope joined every worker, so the slot is settled.
        let payload = caught.lock().take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }

    /// Runs `f(start, end)` over disjoint sub-ranges covering
    /// `0..len`, each at least `min_per_chunk` long (except possibly
    /// the last). Serial pools (and jobs shorter than one chunk) make
    /// a single `f(0, len)` call — the exact serial path.
    pub fn run_chunked<F>(&self, len: usize, min_per_chunk: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if len == 0 {
            return;
        }
        let min = min_per_chunk.max(1);
        if self.is_serial() || len <= min {
            if let Some(stats) = &self.stats {
                // relaxed: pure statistic (see `PoolStats`).
                stats.serial_runs.fetch_add(1, Ordering::Relaxed);
            }
            f(0, len);
            return;
        }
        // Aim for a few chunks per worker so uneven chunks still
        // balance, but never below the per-chunk minimum.
        let target = (self.width * 4).min(len.div_ceil(min)).max(1);
        let per = len.div_ceil(target);
        let chunks = len.div_ceil(per);
        self.run(chunks, |i| {
            let start = i * per;
            let end = (start + per).min(len);
            f(start, end);
        });
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_pool_runs_in_order() {
        let pool = Pool::serial();
        let seen = Mutex::new(Vec::new());
        pool.run(5, |i| seen.lock().push(i));
        assert_eq!(*seen.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = Pool::new(4);
        let counts: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run(64, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Acquire), 1, "chunk {i}");
        }
    }

    #[test]
    fn chunked_ranges_tile_the_input() {
        for width in [1, 2, 4, 7] {
            let pool = Pool::new(width);
            let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
            pool.run_chunked(1000, 16, |start, end| {
                assert!(start < end && end <= 1000);
                for h in &hits[start..end] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Acquire) == 1),
                "width {width} left gaps or overlaps"
            );
        }
    }

    #[test]
    fn serial_chunked_is_one_whole_range_call() {
        let calls = Mutex::new(Vec::new());
        Pool::serial().run_chunked(100, 8, |s, e| calls.lock().push((s, e)));
        assert_eq!(*calls.lock(), vec![(0, 100)]);
    }

    #[test]
    fn zero_work_is_a_no_op() {
        let pool = Pool::new(4);
        pool.run(0, |_| panic!("no chunks to run"));
        pool.run_chunked(0, 8, |_, _| panic!("no range to run"));
    }

    #[test]
    fn worker_panic_propagates_after_barrier() {
        let pool = Pool::new(4);
        let ran = AtomicU64::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(32, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                assert!(i != 7, "chunk 7 exploded");
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("chunk 7 exploded"), "got: {msg}");
        assert!(ran.load(Ordering::Acquire) >= 1);
    }

    #[test]
    fn stats_count_serial_and_parallel_dispatch() {
        let stats = Arc::new(PoolStats::new());
        let pool = Pool::new(4).with_stats(stats.clone());
        // One chunk falls back to the serial path even on a wide pool.
        pool.run(1, |_| {});
        assert_eq!(stats.serial_runs(), 1);
        assert_eq!(stats.parallel_runs(), 0);
        pool.run(16, |_| {});
        assert_eq!(stats.parallel_runs(), 1);
        assert_eq!(stats.chunks_claimed(), 16);
        // Chunked jobs count through `run`; a short job is one serial
        // whole-range call.
        pool.run_chunked(8, 100, |_, _| {});
        assert_eq!(stats.serial_runs(), 2);
        // Zero work counts nowhere; a pool without a sink is silent.
        pool.run(0, |_| {});
        Pool::new(4).run(16, |_| {});
        assert_eq!(stats.serial_runs(), 2);
        assert_eq!(stats.parallel_runs(), 1);
        assert!(pool.stats().is_some());
        assert!(Pool::serial().stats().is_none());
    }

    #[test]
    fn width_is_clamped_and_reported() {
        assert_eq!(Pool::new(0).width(), 1);
        assert!(Pool::new(0).is_serial());
        assert_eq!(Pool::new(8).width(), 8);
        assert!(!Pool::new(8).is_serial());
        assert!(Pool::default().is_serial());
    }
}
