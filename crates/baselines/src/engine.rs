//! [`QueryEngine`] adapters for the baselines, so the experiment harness
//! and parity tests dispatch over `&mut dyn QueryEngine` uniformly with
//! the cracking index.
//!
//! * [`LinearScanEngine`] — the no-index baseline; exact by definition.
//! * [`PhTreeEngine`] — the PH-tree over the raw S₁ embeddings; exact
//!   kNN up to distance ties.
//! * [`H2AlshEngine`] — H2-ALSH maximum-inner-product search over a
//!   single-relation item corpus; judged against its own exact-MIPS
//!   oracle ([`Accuracy::SelfOracle`]).

use vkg_core::engine::{Accuracy, EngineStats, QueryEngine};
use vkg_core::error::{VkgError, VkgResult};
use vkg_core::query::guarantees::topk_guarantee;
use vkg_core::query::probability::inverse_distance_probabilities;
use vkg_core::query::topk::{Prediction, TopKResult};
use vkg_core::snapshot::{Direction, VkgSnapshot};
use vkg_kg::{EntityId, RelationId};

use crate::h2alsh::{H2Alsh, H2AlshConfig};
use crate::linear_scan::{exact_mips_top_k, LinearScan};
use crate::phtree::PhTree;

/// Assembles a [`TopKResult`] from exact `(id, distance)` pairs.
fn result_from_pairs(pairs: Vec<(u32, f64)>, epsilon: f64, alpha: usize, evals: u64) -> TopKResult {
    let distances: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let probabilities = inverse_distance_probabilities(&distances);
    let guarantee = topk_guarantee(&distances, epsilon, alpha);
    let predictions = pairs
        .into_iter()
        .zip(probabilities)
        .map(|((id, distance), probability)| Prediction {
            id,
            distance,
            probability,
        })
        .collect();
    TopKResult {
        predictions,
        guarantee,
        s1_evals: evals,
        candidates_examined: evals,
        crack_region: None,
    }
}

/// The E′-only skip predicate shared by the S₁-space baselines.
fn eprime_skip<'a>(
    snap: &'a VkgSnapshot,
    entity: EntityId,
    relation: RelationId,
    direction: Direction,
    filter: &'a dyn Fn(EntityId) -> bool,
) -> impl FnMut(u32) -> bool + 'a {
    let known = snap.known_neighbors(entity, relation, direction);
    move |id: u32| id == entity.0 || known.contains(&id) || !filter(EntityId(id))
}

/// The **no-index** baseline (§VI-B): exact brute-force top-k by
/// iterating over every entity in S₁.
#[derive(Debug, Default, Clone, Copy)]
pub struct LinearScanEngine;

impl LinearScanEngine {
    /// Creates the (stateless) scan engine.
    pub fn new() -> Self {
        Self
    }
}

impl QueryEngine for LinearScanEngine {
    fn name(&self) -> &str {
        "no index"
    }

    fn top_k_filtered(
        &mut self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        filter: &dyn Fn(EntityId) -> bool,
    ) -> VkgResult<TopKResult> {
        if k == 0 {
            return Err(VkgError::InvalidParameter("top-k requires k ≥ 1".into()));
        }
        let q_s1 = snap.query_point_s1(entity, relation, direction)?;
        let scan = LinearScan::new(snap.embeddings());
        let skip = eprime_skip(snap, entity, relation, direction, filter);
        let pairs = scan.top_k_near(&q_s1, k, skip);
        let cfg = snap.config();
        Ok(result_from_pairs(
            pairs,
            cfg.epsilon,
            cfg.alpha,
            snap.embeddings().num_entities() as u64,
        ))
    }
}

/// The **PH-tree** baseline: bit-interleaved hypercube tree over the raw
/// S₁ embeddings (no S₂ transform), with exact best-first kNN.
#[derive(Debug)]
pub struct PhTreeEngine {
    tree: PhTree,
}

impl PhTreeEngine {
    /// Builds the PH-tree over the snapshot's entity embeddings.
    pub fn build(snap: &VkgSnapshot) -> Self {
        let embeddings = snap.embeddings();
        Self {
            tree: PhTree::build(embeddings.entity_matrix().to_vec(), embeddings.dim()),
        }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &PhTree {
        &self.tree
    }
}

impl QueryEngine for PhTreeEngine {
    fn name(&self) -> &str {
        "PH-tree"
    }

    fn accuracy(&self) -> Accuracy {
        // Exact kNN, but distance ties may order differently than the
        // scan's id-based tie-breaking.
        Accuracy::Approximate { min_overlap: 0.8 }
    }

    fn top_k_filtered(
        &mut self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        filter: &dyn Fn(EntityId) -> bool,
    ) -> VkgResult<TopKResult> {
        if k == 0 {
            return Err(VkgError::InvalidParameter("top-k requires k ≥ 1".into()));
        }
        let q_s1 = snap.query_point_s1(entity, relation, direction)?;
        if q_s1.len() != self.tree.dim() {
            return Err(VkgError::Mismatch {
                what: "query dimensionality",
                expected: self.tree.dim(),
                found: q_s1.len(),
            });
        }
        let skip = eprime_skip(snap, entity, relation, direction, filter);
        let pairs = self.tree.top_k(&q_s1, k, skip);
        let cfg = snap.config();
        let evals = pairs.len() as u64;
        Ok(result_from_pairs(pairs, cfg.epsilon, cfg.alpha, evals))
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            nodes: self.tree.node_count(),
            bytes: 0,
            counters: Default::default(),
        }
    }
}

/// The **H2-ALSH** baseline: maximum-inner-product search over a
/// single-relation item corpus (§VI: "H2-ALSH supports collaborative
/// filtering style recommendations, i.e., one relationship type").
///
/// The engine answers a *different* problem than the distance-ranked
/// Algorithm 3 — it maximizes `x · q` over the item subset, ignoring the
/// relation translation and the E′ skip — so parity checks compare it
/// against its own exact-MIPS oracle ([`QueryEngine::reference_top_k`]).
#[derive(Debug)]
pub struct H2AlshEngine {
    index: H2Alsh,
    /// Global entity ids of the item corpus, in index-local order.
    ids: Vec<u32>,
    /// Row-major item matrix (exact-MIPS reference oracle).
    data: Vec<f64>,
    dim: usize,
}

impl H2AlshEngine {
    /// Builds the index over the embeddings of `items` (global entity
    /// ids, e.g. every entity named `movie_*`).
    ///
    /// # Errors
    /// [`VkgError::UnknownEntity`] if an item id is out of range;
    /// [`VkgError::InvalidParameter`] if `items` is empty.
    pub fn build(snap: &VkgSnapshot, items: Vec<u32>, cfg: H2AlshConfig) -> VkgResult<Self> {
        if items.is_empty() {
            return Err(VkgError::InvalidParameter(
                "H2-ALSH needs a non-empty item corpus".into(),
            ));
        }
        let embeddings = snap.embeddings();
        let dim = embeddings.dim();
        let mut data = Vec::with_capacity(items.len() * dim);
        for &id in &items {
            if id as usize >= embeddings.num_entities() {
                return Err(VkgError::UnknownEntity(id));
            }
            data.extend_from_slice(embeddings.entity(EntityId(id)));
        }
        Ok(Self {
            index: H2Alsh::build(data.clone(), dim, cfg),
            ids: items,
            data,
            dim,
        })
    }

    /// The underlying H2-ALSH index.
    pub fn index(&self) -> &H2Alsh {
        &self.index
    }

    fn mips_result(&self, q: &[f64], k: usize) -> TopKResult {
        let hits = self.index.top_k_mips(q, k, |_| false);
        let predictions = hits
            .into_iter()
            .enumerate()
            .map(|(rank, (local, ip))| Prediction {
                id: self.ids[local as usize],
                // MIPS maximizes the inner product; negating it keeps the
                // "ascending = better first" ordering of `predictions`.
                distance: -ip,
                probability: 1.0 / (rank as f64 + 1.0),
            })
            .collect();
        TopKResult {
            predictions,
            guarantee: topk_guarantee(&[], 1.0, 1),
            s1_evals: 0,
            candidates_examined: self.ids.len() as u64,
            crack_region: None,
        }
    }
}

impl QueryEngine for H2AlshEngine {
    fn name(&self) -> &str {
        "H2-ALSH"
    }

    fn accuracy(&self) -> Accuracy {
        Accuracy::SelfOracle { min_recall: 0.8 }
    }

    /// MIPS with the query entity's embedding (collaborative-filtering
    /// semantics: `relation`/`direction` identify the workload but do not
    /// translate the query; `filter` restricts the item corpus).
    fn top_k_filtered(
        &mut self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        _direction: Direction,
        k: usize,
        filter: &dyn Fn(EntityId) -> bool,
    ) -> VkgResult<TopKResult> {
        snap.check_ids(entity, relation)?;
        if k == 0 {
            return Err(VkgError::InvalidParameter("top-k requires k ≥ 1".into()));
        }
        let q = snap.embeddings().entity(entity);
        let mut result = self.mips_result(q, k);
        result.predictions.retain(|p| filter(EntityId(p.id)));
        Ok(result)
    }

    /// The exact-MIPS oracle over the same item corpus.
    fn reference_top_k(
        &self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        _direction: Direction,
        k: usize,
    ) -> VkgResult<Vec<u32>> {
        snap.check_ids(entity, relation)?;
        let q = snap.embeddings().entity(entity);
        Ok(exact_mips_top_k(&self.data, self.dim, q, k)
            .into_iter()
            .map(|(local, _)| self.ids[local as usize])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkg_core::VkgConfig;
    use vkg_embed::EmbeddingStore;
    use vkg_kg::{AttributeStore, KnowledgeGraph};

    fn snap() -> VkgSnapshot {
        let mut g = KnowledgeGraph::new();
        let likes = g.add_relation("likes");
        let u = g.add_entity("u0");
        let items: Vec<_> = (0..5).map(|i| g.add_entity(&format!("m{i}"))).collect();
        g.add_triple(u, likes, items[0]).unwrap();
        // u near the origin (nonzero so MIPS has a signal); items on a
        // line at x = 1..5; likes translates +1.
        let mut ent = vec![0.0; 6 * 2];
        ent[0] = 0.1;
        ent[1] = 0.05;
        for (i, _) in items.iter().enumerate() {
            ent[(1 + i) * 2] = 1.0 + i as f64;
        }
        let store = EmbeddingStore::from_raw(2, ent, vec![1.0, 0.0]);
        let cfg = VkgConfig {
            alpha: 2,
            ..VkgConfig::default()
        };
        VkgSnapshot::new(g, AttributeStore::new(), store, cfg).unwrap()
    }

    #[test]
    fn scan_engine_is_exact_with_eprime_skip() {
        let s = snap();
        let mut e = LinearScanEngine::new();
        // (u0, likes, ·) = (1, 0): m0 sits there but is a known edge.
        let r = e
            .top_k(&s, EntityId(0), RelationId(0), Direction::Tails, 2)
            .unwrap();
        let ids: Vec<u32> = r.predictions.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert!(matches!(e.accuracy(), Accuracy::Exact));
    }

    #[test]
    fn phtree_engine_matches_scan() {
        let s = snap();
        let mut scan = LinearScanEngine::new();
        let mut ph = PhTreeEngine::build(&s);
        let a = scan
            .top_k(&s, EntityId(0), RelationId(0), Direction::Tails, 3)
            .unwrap();
        let b = ph
            .top_k(&s, EntityId(0), RelationId(0), Direction::Tails, 3)
            .unwrap();
        assert_eq!(
            a.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            b.predictions.iter().map(|p| p.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn h2alsh_engine_recalls_its_own_oracle() {
        let s = snap();
        let items: Vec<u32> = (1..=5).collect();
        let mut e = H2AlshEngine::build(&s, items, H2AlshConfig::default()).unwrap();
        let got = e
            .top_k(&s, EntityId(0), RelationId(0), Direction::Tails, 3)
            .unwrap();
        let want = e
            .reference_top_k(&s, EntityId(0), RelationId(0), Direction::Tails, 3)
            .unwrap();
        let got_ids: std::collections::HashSet<u32> =
            got.predictions.iter().map(|p| p.id).collect();
        let hits = want.iter().filter(|id| got_ids.contains(id)).count();
        assert!(hits >= 2, "recall {hits}/3 against exact MIPS");
    }

    #[test]
    fn h2alsh_rejects_empty_corpus() {
        let s = snap();
        assert!(matches!(
            H2AlshEngine::build(&s, vec![], H2AlshConfig::default()),
            Err(VkgError::InvalidParameter(_))
        ));
    }
}
