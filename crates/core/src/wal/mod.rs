//! Durable write-ahead log for dynamic writes (DESIGN.md §3.9).
//!
//! The log is a flat file: an 8-byte magic header (`VKGWAL01`) followed
//! by length-prefixed records. Each record frames a fixed-width body
//! with a little-endian `u32` body length and a `u64` FNV-1a checksum
//! over the body bytes:
//!
//! ```text
//! [len: u32 LE][fnv1a64(body): u64 LE][body: len bytes]
//! body = version u8 | kind u8 | epoch u64 | token u64
//!      | h u32 | r u32 | t u32 | refine_steps u32
//!      | learning_rate f64 (to_bits, LE)
//! ```
//!
//! The ordering invariant the facade maintains is **log, flush, then
//! publish, then ack**: a record reaches the file (through the
//! [`fault::FaultPlane`] seam) before the write becomes visible to
//! readers and before `FactAdded` is acked, so replaying the log after
//! a crash reconstructs at least the acked prefix. Replay truncates any
//! torn tail — a partial header, partial body, checksum mismatch, or
//! undecodable body ends the valid prefix; nothing after it is trusted.
//! Idempotency tokens ride in each record so a post-crash retry of an
//! already-logged write is answered from the dedup map instead of being
//! applied twice.

pub mod fault;

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom};
use std::path::Path;

use fault::FaultPlane;

/// File magic: identifies a WAL file and pins its framing version.
pub const WAL_MAGIC: &[u8; 8] = b"VKGWAL01";
/// Body format version stamped into every record.
pub const WAL_VERSION: u8 = 1;
/// Record kind: a dynamic `AddFact` write.
pub const KIND_ADD_FACT: u8 = 1;
/// Fixed body width of a v1 record.
pub const BODY_BYTES: usize = 42;
/// Full on-disk width of one framed record (length + checksum + body).
pub const RECORD_BYTES: usize = 12 + BODY_BYTES;
/// Upper bound accepted for a record body; anything larger is treated
/// as tail corruption rather than an allocation request.
const MAX_BODY_BYTES: u32 = 4096;

/// FNV-1a over `bytes` — the checksum guarding each record body.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A typed durability error. Io errors carry the operation name so a
/// failure report says *which* touchpoint failed (`write`, `flush`,
/// `fsync`, `open`, `truncate`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An I/O operation on the log failed.
    Io {
        /// The durability touchpoint that failed.
        op: &'static str,
        /// Rendered cause (kept as a string so the error stays `Clone`).
        detail: String,
    },
    /// The file exists but does not start with [`WAL_MAGIC`] — refusing
    /// to replay (or truncate) something that is not a WAL.
    BadMagic,
    /// The writer saw an append fail earlier; the tail may be torn and
    /// only recovery may touch the file again.
    Poisoned,
}

impl WalError {
    fn io(op: &'static str, e: &std::io::Error) -> Self {
        WalError::Io {
            op,
            detail: e.to_string(),
        }
    }

    fn io_str(op: &'static str, detail: &str) -> Self {
        WalError::Io {
            op,
            detail: detail.to_string(),
        }
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { op, detail } => write!(f, "wal {op} failed: {detail}"),
            WalError::BadMagic => write!(f, "wal file has wrong magic"),
            WalError::Poisoned => write!(f, "wal writer poisoned by earlier failure"),
        }
    }
}

impl std::error::Error for WalError {}

/// One logged dynamic write. `PartialEq` compares `learning_rate` by
/// bit pattern so a decode of an encode is *bit*-identical, NaNs and
/// signed zeros included.
#[derive(Debug, Clone, Copy)]
pub struct WalRecord {
    /// Epoch the write published (stamped as current epoch + 1 at
    /// append time, before the publish it guards).
    pub epoch: u64,
    /// Client idempotency token; 0 means untokened.
    pub token: u64,
    /// Head entity id.
    pub h: u32,
    /// Relation id.
    pub r: u32,
    /// Tail entity id.
    pub t: u32,
    /// Embedding refinement steps requested with the write.
    pub refine_steps: u32,
    /// Refinement learning rate.
    pub learning_rate: f64,
}

impl PartialEq for WalRecord {
    fn eq(&self, other: &Self) -> bool {
        self.epoch == other.epoch
            && self.token == other.token
            && self.h == other.h
            && self.r == other.r
            && self.t == other.t
            && self.refine_steps == other.refine_steps
            && self.learning_rate.to_bits() == other.learning_rate.to_bits()
    }
}

impl Eq for WalRecord {}

impl WalRecord {
    /// Serializes the fixed-width body (no framing). Built by zipping an
    /// exact-length byte stream into the output array — panic-free by
    /// construction, which the request-path audit demands of everything
    /// `Writer::append` reaches.
    pub fn encode_body(&self) -> [u8; BODY_BYTES] {
        let stream = [WAL_VERSION, KIND_ADD_FACT]
            .into_iter()
            .chain(self.epoch.to_le_bytes())
            .chain(self.token.to_le_bytes())
            .chain(self.h.to_le_bytes())
            .chain(self.r.to_le_bytes())
            .chain(self.t.to_le_bytes())
            .chain(self.refine_steps.to_le_bytes())
            .chain(self.learning_rate.to_bits().to_le_bytes());
        let mut body = [0u8; BODY_BYTES];
        for (slot, byte) in body.iter_mut().zip(stream) {
            *slot = byte;
        }
        body
    }

    /// Serializes the full framed record: length, checksum, body.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let body = self.encode_body();
        let stream = (BODY_BYTES as u32)
            .to_le_bytes()
            .into_iter()
            .chain(fnv1a64(&body).to_le_bytes())
            .chain(body);
        let mut out = [0u8; RECORD_BYTES];
        for (slot, byte) in out.iter_mut().zip(stream) {
            *slot = byte;
        }
        out
    }

    /// Decodes a checksum-verified body. Returns `None` for anything
    /// this build cannot interpret — replay treats that as tail
    /// corruption, never as a panic.
    pub fn decode_body(body: &[u8]) -> Option<Self> {
        if body.len() != BODY_BYTES || body[0] != WAL_VERSION || body[1] != KIND_ADD_FACT {
            return None;
        }
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&body[i..i + 8]);
            u64::from_le_bytes(b)
        };
        let u32_at = |i: usize| {
            let mut b = [0u8; 4];
            b.copy_from_slice(&body[i..i + 4]);
            u32::from_le_bytes(b)
        };
        Some(WalRecord {
            epoch: u64_at(2),
            token: u64_at(10),
            h: u32_at(18),
            r: u32_at(22),
            t: u32_at(26),
            refine_steps: u32_at(30),
            learning_rate: f64::from_bits(u64_at(34)),
        })
    }
}

/// What replay found in the file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records in the valid prefix.
    pub replayed: u64,
    /// Bytes past the valid prefix (the torn tail recovery truncates).
    pub truncated_bytes: u64,
    /// Absolute file offset where the valid prefix ends (0 for a
    /// missing or empty file, otherwise ≥ the 8-byte magic).
    pub good_bytes: u64,
}

/// Decodes an in-memory log image, stopping at the first torn or
/// corrupt frame. Pure and panic-free on arbitrary bytes — the proptest
/// truncation suite feeds it every prefix and mutation it can build.
pub fn decode_log(bytes: &[u8]) -> Result<(Vec<WalRecord>, ReplayStats), WalError> {
    if bytes.is_empty() {
        return Ok((Vec::new(), ReplayStats::default()));
    }
    if bytes.len() < WAL_MAGIC.len() {
        // A torn magic header: nothing valid, everything truncated.
        return Ok((
            Vec::new(),
            ReplayStats {
                replayed: 0,
                truncated_bytes: bytes.len() as u64,
                good_bytes: 0,
            },
        ));
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(WalError::BadMagic);
    }
    let mut records = Vec::new();
    let mut offset = WAL_MAGIC.len();
    loop {
        let rest = &bytes[offset..];
        if rest.len() < 12 {
            break;
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&rest[0..4]);
        let len = u32::from_le_bytes(len4);
        if len > MAX_BODY_BYTES {
            break;
        }
        let len = len as usize;
        if rest.len() < 12 + len {
            break;
        }
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&rest[4..12]);
        let body = &rest[12..12 + len];
        if fnv1a64(body) != u64::from_le_bytes(sum8) {
            break;
        }
        let Some(record) = WalRecord::decode_body(body) else {
            break;
        };
        records.push(record);
        offset += 12 + len;
    }
    let stats = ReplayStats {
        replayed: records.len() as u64,
        truncated_bytes: (bytes.len() - offset) as u64,
        good_bytes: offset as u64,
    };
    Ok((records, stats))
}

/// Reads and decodes the log at `path`. A missing file is an empty log.
pub fn replay(path: &Path) -> Result<(Vec<WalRecord>, ReplayStats), WalError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), ReplayStats::default()))
        }
        Err(e) => return Err(WalError::io("open", &e)),
    };
    decode_log(&bytes)
}

/// Append handle over a recovered log. Every byte goes through the
/// [`FaultPlane`]; the first failed append poisons the writer so a torn
/// tail is never extended.
#[derive(Debug)]
pub struct Writer {
    file: File,
    fault: FaultPlane,
    fsync: bool,
    poisoned: bool,
    appended: u64,
}

impl Writer {
    /// Appends one record and flushes it to the file before returning.
    /// On failure the writer poisons itself: the tail may be torn, and
    /// only a fresh [`recover`] may touch the file again.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let bytes = record.encode();
        let appended = self
            .fault
            .write(&mut self.file, &bytes)
            .and_then(|()| self.fault.flush(&mut self.file, self.fsync));
        if let Err(e) = appended {
            self.poisoned = true;
            return Err(e);
        }
        self.appended += 1;
        Ok(())
    }

    /// Records appended through this writer (excluding replayed ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Whether an earlier append failed and the writer refuses new work.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Enables `sync_data` after each flush (off by default: the crash
    /// model is process death, where `write` suffices; machine-crash
    /// durability pays for the fsync).
    pub fn set_fsync(&mut self, fsync: bool) {
        self.fsync = fsync;
    }
}

/// A recovered log: the replayed valid prefix plus a writer positioned
/// at its end (the torn tail, if any, has been truncated away).
#[derive(Debug)]
pub struct Recovered {
    /// Records of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// What replay saw.
    pub stats: ReplayStats,
    /// Writer appending after the valid prefix.
    pub writer: Writer,
}

/// Opens (creating if absent) the log at `path`, replays its valid
/// prefix, truncates any torn tail, and returns the records plus a
/// writer positioned at the end.
pub fn recover(path: &Path, fault: FaultPlane) -> Result<Recovered, WalError> {
    let (records, stats) = replay(path)?;
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map_err(|e| WalError::io("open", &e))?;
    if stats.good_bytes == 0 {
        file.set_len(0).map_err(|e| WalError::io("truncate", &e))?;
        fault.write(&mut file, WAL_MAGIC)?;
        fault.flush(&mut file, false)?;
    } else {
        file.set_len(stats.good_bytes)
            .map_err(|e| WalError::io("truncate", &e))?;
    }
    file.seek(SeekFrom::End(0))
        .map_err(|e| WalError::io("seek", &e))?;
    Ok(Recovered {
        records,
        stats,
        writer: Writer {
            file,
            fault,
            fsync: false,
            poisoned: false,
            appended: 0,
        },
    })
}

/// Bounded idempotency map: token → `(added, epoch)` outcome of the
/// write that first carried it. Retries of an acked (or logged) write
/// are answered from here instead of being applied twice. Token 0 is
/// the "untokened" sentinel and is never stored. Eviction is FIFO at
/// `capacity` — old enough that any plausible retry horizon fits.
#[derive(Debug)]
pub struct TokenMap {
    map: HashMap<u64, (bool, u64)>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl TokenMap {
    /// A map remembering at most `capacity` tokens.
    pub fn new(capacity: usize) -> Self {
        TokenMap {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// The recorded outcome for `token`, if still remembered.
    pub fn get(&self, token: u64) -> Option<(bool, u64)> {
        self.map.get(&token).copied()
    }

    /// Records the outcome of a tokened write, evicting the oldest
    /// entry at capacity. Token 0 and repeat inserts are ignored.
    pub fn insert(&mut self, token: u64, outcome: (bool, u64)) {
        if token == 0 || self.map.contains_key(&token) {
            return;
        }
        if self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.order.push_back(token);
        self.map.insert(token, outcome);
    }

    /// Tokens currently remembered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> WalRecord {
        WalRecord {
            epoch: i + 1,
            token: 100 + i,
            h: i as u32,
            r: (i % 3) as u32,
            t: (i + 1) as u32,
            refine_steps: 4,
            learning_rate: 0.01 * (i + 1) as f64,
        }
    }

    fn log_bytes(n: u64) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for i in 0..n {
            bytes.extend_from_slice(&rec(i).encode());
        }
        bytes
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let r = WalRecord {
            epoch: 7,
            token: u64::MAX,
            h: 1,
            r: 2,
            t: 3,
            refine_steps: 8,
            learning_rate: -0.0,
        };
        let body = r.encode_body();
        assert_eq!(WalRecord::decode_body(&body), Some(r));
    }

    #[test]
    fn decode_log_reads_back_what_was_written() {
        let (records, stats) = decode_log(&log_bytes(5)).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[3], rec(3));
        assert_eq!(stats.truncated_bytes, 0);
        assert_eq!(stats.good_bytes, 8 + 5 * RECORD_BYTES as u64);
    }

    #[test]
    fn any_truncation_yields_clean_prefix() {
        let bytes = log_bytes(4);
        for cut in 0..=bytes.len() {
            let (records, stats) = decode_log(&bytes[..cut]).unwrap();
            let whole = cut.saturating_sub(WAL_MAGIC.len()) / RECORD_BYTES;
            assert_eq!(records.len(), whole, "cut at {cut}");
            assert_eq!(
                stats.good_bytes as usize,
                if cut < WAL_MAGIC.len() {
                    0
                } else {
                    WAL_MAGIC.len() + whole * RECORD_BYTES
                }
            );
        }
    }

    #[test]
    fn corrupt_byte_ends_the_prefix_there() {
        let mut bytes = log_bytes(3);
        // Flip a byte inside record 1's body.
        let hit = WAL_MAGIC.len() + RECORD_BYTES + 20;
        bytes[hit] ^= 0xff;
        let (records, stats) = decode_log(&bytes).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            stats.truncated_bytes as usize,
            bytes.len() - WAL_MAGIC.len() - RECORD_BYTES
        );
    }

    #[test]
    fn wrong_magic_is_refused() {
        assert_eq!(decode_log(b"NOTAWAL0rest"), Err(WalError::BadMagic));
    }

    #[test]
    fn recover_truncates_torn_tail_and_appends_after_it() {
        let dir = std::env::temp_dir().join("vkg_wal_recover");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("torn.wal");
        let mut bytes = log_bytes(2);
        bytes.extend_from_slice(&rec(2).encode()[..20]); // torn tail
        std::fs::write(&path, &bytes).unwrap();

        let mut recovered = recover(&path, FaultPlane::none()).unwrap();
        assert_eq!(recovered.records.len(), 2);
        assert_eq!(recovered.stats.truncated_bytes, 20);
        recovered.writer.append(&rec(9)).unwrap();
        drop(recovered);

        let (records, stats) = replay(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2], rec(9));
        assert_eq!(stats.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_from_missing_file_starts_empty() {
        let dir = std::env::temp_dir().join("vkg_wal_fresh");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("fresh.wal");
        let _ = std::fs::remove_file(&path);
        let recovered = recover(&path, FaultPlane::none()).unwrap();
        assert!(recovered.records.is_empty());
        assert_eq!(std::fs::read(&path).unwrap(), WAL_MAGIC);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_append_poisons_writer() {
        let dir = std::env::temp_dir().join("vkg_wal_poison");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("poison.wal");
        let _ = std::fs::remove_file(&path);
        let plane = FaultPlane::with_spec(fault::FaultSpec {
            kill_after_bytes: Some(WAL_MAGIC.len() as u64 + 30),
            ..fault::FaultSpec::default()
        });
        let mut recovered = recover(&path, plane).unwrap();
        assert!(recovered.writer.append(&rec(0)).is_err());
        assert!(recovered.writer.poisoned());
        assert_eq!(recovered.writer.append(&rec(1)), Err(WalError::Poisoned));
        drop(recovered);
        // The torn tail is exactly what the kill allowed through.
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len(), WAL_MAGIC.len() + 30);
        let (records, stats) = replay(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(stats.truncated_bytes, 30);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn token_map_remembers_and_evicts_fifo() {
        let mut map = TokenMap::new(2);
        map.insert(0, (true, 1)); // sentinel ignored
        assert!(map.is_empty());
        map.insert(1, (true, 1));
        map.insert(2, (false, 1));
        map.insert(1, (false, 99)); // repeat insert keeps the original
        assert_eq!(map.get(1), Some((true, 1)));
        map.insert(3, (true, 2));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(1), None, "oldest token evicted");
        assert_eq!(map.get(3), Some((true, 2)));
    }
}
