//! One function per table/figure of the paper's evaluation (§VI), plus
//! the DESIGN.md ablations. Each emits an aligned table to stdout and a
//! CSV under the results directory.

use std::collections::HashSet;
use std::path::Path;
use std::time::{Duration, Instant};

use vkg::prelude::*;

use crate::report::{fmt_duration, Table};
use crate::setup::{self, Prepared, Scale};
use crate::workload::{self, Query};

/// Queries measured individually over the initial sequence (the paper
/// reports the 1st, 6th, 11th and 16th).
const PROBE_QUERIES: [usize; 4] = [1, 6, 11, 16];

fn steady_queries(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 100,
        Scale::Standard => 1_000,
        Scale::Large => 10_000,
    }
}

fn dim(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 24,
        _ => 48,
    }
}

/// Runs the experiment with the given id. Returns false if the id is
/// unknown.
pub fn run(exp: &str, scale: Scale, out: &Path) -> bool {
    match exp {
        "table1" => table1(scale, out),
        "fig3" | "fig4" => fig3_fig4(scale, out),
        "fig5" | "fig6" => fig5_fig6(scale, out),
        "fig7" | "fig8" => fig7_fig8(scale, out),
        "fig9" => fig9(scale, out),
        "fig10" => fig10_fig11(scale, out, "movie", "fig10"),
        "fig11" => fig10_fig11(scale, out, "amazon", "fig11"),
        "fig12" => aggregate_sweep(scale, out, "fig12", "freebase", AggregateKind::Count, None),
        "fig13" => aggregate_sweep(scale, out, "fig13", "movie", AggregateKind::Avg, Some("year")),
        "fig14" => {
            aggregate_sweep(scale, out, "fig14", "amazon", AggregateKind::Avg, Some("quality"))
        }
        "fig15" => aggregate_sweep(
            scale,
            out,
            "fig15",
            "freebase",
            AggregateKind::Max,
            Some("popularity"),
        ),
        "fig16" => aggregate_sweep(scale, out, "fig16", "movie", AggregateKind::Min, Some("year")),
        "abl_alpha" => ablation_alpha(scale, out),
        "abl_eps" => ablation_epsilon(scale, out),
        "abl_beta" => ablation_beta(scale, out),
        "abl_cost" => ablation_cost(scale, out),
        _ => return false,
    }
    true
}

/// All experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "table1", "fig3", "fig5", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "abl_alpha", "abl_eps", "abl_beta", "abl_cost",
];

// ---------------------------------------------------------------------
// Table I: dataset statistics.
// ---------------------------------------------------------------------

fn table1(scale: Scale, out: &Path) {
    let mut t = Table::new(
        "Table I: statistics of the (synthetic stand-in) datasets",
        &["dataset", "entities", "relationship types", "edges"],
    );
    let d = dim(scale);
    for p in [
        setup::freebase(scale, d),
        setup::movie(scale, d),
        setup::amazon(scale, d),
    ] {
        let s = p.dataset.graph.stats();
        t.row(vec![
            p.dataset.name.clone(),
            s.entities.to_string(),
            s.relation_types.to_string(),
            s.edges.to_string(),
        ]);
    }
    t.emit(out, "table1");
}

// ---------------------------------------------------------------------
// Figures 3–4: Freebase — method vs elapsed time, and precision@K.
// ---------------------------------------------------------------------

struct MethodRun {
    name: String,
    build: Duration,
    probes: Vec<Duration>,
    steady_avg: Duration,
    precision: f64,
}

fn fig3_fig4(scale: Scale, out: &Path) {
    let p = setup::freebase(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, steady_queries(scale) + 20, 0xF16_3);
    let k = 10;

    let mut runs: Vec<MethodRun> = Vec::new();
    runs.push(run_no_index(&p, &queries, k, scale));
    runs.push(run_phtree(&p, &queries, k, scale));
    runs.push(run_engine(
        "bulk-load R-tree",
        p.engine_bulk(setup::bench_config()),
        &p,
        &queries,
        k,
        scale,
        true,
    ));
    runs.push(run_engine(
        "cracking (greedy)",
        p.engine(setup::bench_config()),
        &p,
        &queries,
        k,
        scale,
        false,
    ));
    for choices in [2usize, 4] {
        let cfg = VkgConfig {
            split_strategy: SplitStrategy::TopK { choices },
            ..setup::bench_config()
        };
        runs.push(run_engine(
            &format!("{choices}-choice split"),
            p.engine(cfg),
            &p,
            &queries,
            k,
            scale,
            false,
        ));
    }

    let mut t3 = Table::new(
        "Fig 3: method vs elapsed time (freebase-like)",
        &["method", "index build", "q1", "q6", "q11", "q16", "steady avg"],
    );
    for r in &runs {
        t3.row(vec![
            r.name.clone(),
            fmt_duration(r.build),
            fmt_duration(r.probes[0]),
            fmt_duration(r.probes[1]),
            fmt_duration(r.probes[2]),
            fmt_duration(r.probes[3]),
            fmt_duration(r.steady_avg),
        ]);
    }
    t3.emit(out, "fig03_freebase_time");

    let mut t4 = Table::new(
        "Fig 4: precision@K vs the no-index method (freebase-like)",
        &["method", "precision@10"],
    );
    for r in &runs {
        t4.row(vec![r.name.clone(), format!("{:.4}", r.precision)]);
    }
    t4.emit(out, "fig04_freebase_accuracy");
}

fn run_no_index(p: &Prepared, queries: &[Query], k: usize, scale: Scale) -> MethodRun {
    let scan = LinearScan::new(&p.embeddings);
    let graph = &p.dataset.graph;
    let mut probes = Vec::new();
    let mut steady = Duration::ZERO;
    let steady_n = steady_queries(scale);
    for (i, q) in queries.iter().enumerate() {
        let known: HashSet<u32> = match q.direction {
            Direction::Tails => graph.tails(q.entity, q.relation).map(|e| e.0).collect(),
            Direction::Heads => graph.heads(q.entity, q.relation).map(|e| e.0).collect(),
        };
        let skip = |id: u32| id == q.entity.0 || known.contains(&id);
        let t = Instant::now();
        let _ = match q.direction {
            Direction::Tails => scan.top_k_tails(q.entity, q.relation, k, skip),
            Direction::Heads => scan.top_k_heads(q.entity, q.relation, k, skip),
        };
        let dt = t.elapsed();
        if PROBE_QUERIES.contains(&(i + 1)) {
            probes.push(dt);
        }
        if i >= 20 && i < 20 + steady_n {
            steady += dt;
        }
    }
    MethodRun {
        name: "no index".into(),
        build: Duration::ZERO,
        probes,
        steady_avg: steady / steady_n.max(1) as u32,
        precision: 1.0, // the accuracy baseline by definition
    }
}

fn run_phtree(p: &Prepared, queries: &[Query], k: usize, scale: Scale) -> MethodRun {
    let graph = &p.dataset.graph;
    let build_t = Instant::now();
    let tree = PhTree::build(p.embeddings.entity_matrix().to_vec(), p.embeddings.dim());
    let build = build_t.elapsed();

    let scan = LinearScan::new(&p.embeddings);
    let mut probes = Vec::new();
    let mut steady = Duration::ZERO;
    let mut precision_sum = 0.0;
    let mut precision_n = 0usize;
    let steady_n = steady_queries(scale);
    for (i, q) in queries.iter().enumerate() {
        let known: HashSet<u32> = match q.direction {
            Direction::Tails => graph.tails(q.entity, q.relation).map(|e| e.0).collect(),
            Direction::Heads => graph.heads(q.entity, q.relation).map(|e| e.0).collect(),
        };
        let q_s1 = match q.direction {
            Direction::Tails => p.embeddings.tail_query_point(q.entity, q.relation),
            Direction::Heads => p.embeddings.head_query_point(q.entity, q.relation),
        };
        let skip = |id: u32| id == q.entity.0 || known.contains(&id);
        let t = Instant::now();
        let answer = tree.top_k(&q_s1, k, skip);
        let dt = t.elapsed();
        if PROBE_QUERIES.contains(&(i + 1)) {
            probes.push(dt);
        }
        if i >= 20 && i < 20 + steady_n {
            steady += dt;
        }
        if i % 7 == 0 && precision_n < 30 {
            let truth = scan.top_k_near(&q_s1, k, skip);
            let truth_ids: HashSet<u32> = truth.iter().map(|t| t.0).collect();
            if !truth_ids.is_empty() {
                let hits = answer.iter().filter(|a| truth_ids.contains(&a.0)).count();
                precision_sum += hits as f64 / truth_ids.len().min(k) as f64;
                precision_n += 1;
            }
        }
    }
    MethodRun {
        name: "PH-tree".into(),
        build,
        probes,
        steady_avg: steady / steady_n.max(1) as u32,
        precision: precision_sum / precision_n.max(1) as f64,
    }
}

fn run_engine(
    name: &str,
    mut engine: VirtualKnowledgeGraph,
    p: &Prepared,
    queries: &[Query],
    k: usize,
    scale: Scale,
    timed_build: bool,
) -> MethodRun {
    // Bulk-loaded engines pay an offline build; re-measure it.
    let build = if timed_build {
        let t = Instant::now();
        let rebuilt = p.engine_bulk(engine.config().clone());
        let d = t.elapsed();
        engine = rebuilt;
        d
    } else {
        Duration::ZERO
    };

    let scan = LinearScan::new(&p.embeddings);
    let mut probes = Vec::new();
    let mut steady = Duration::ZERO;
    let mut precision_sum = 0.0;
    let mut precision_n = 0usize;
    let steady_n = steady_queries(scale);
    for (i, q) in queries.iter().enumerate() {
        let t = Instant::now();
        let answer = workload::run(&mut engine, q, k);
        let dt = t.elapsed();
        if PROBE_QUERIES.contains(&(i + 1)) {
            probes.push(dt);
        }
        if i >= 20 && i < 20 + steady_n {
            steady += dt;
        }
        if i % 7 == 0 && precision_n < 30 {
            let prec = workload::precision_vs_scan(&p.dataset.graph, &scan, q, k, &answer);
            precision_sum += prec;
            precision_n += 1;
        }
    }
    MethodRun {
        name: name.to_owned(),
        build,
        probes,
        steady_avg: steady / steady_n.max(1) as u32,
        precision: precision_sum / precision_n.max(1) as f64,
    }
}

// ---------------------------------------------------------------------
// Figures 5–6: Movie — α = 3 vs 6, plus H2-ALSH on the single "likes"
// relation.
// ---------------------------------------------------------------------

fn fig5_fig6(scale: Scale, out: &Path) {
    let p = setup::movie(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, steady_queries(scale) + 20, 0xF16_5);
    let k = 10;

    let mut runs = Vec::new();
    for alpha in [3usize, 6] {
        let cfg = VkgConfig {
            alpha,
            ..setup::bench_config()
        };
        runs.push(run_engine(
            &format!("cracking α={alpha}"),
            p.engine(cfg.clone()),
            &p,
            &queries,
            k,
            scale,
            false,
        ));
        runs.push(run_engine(
            &format!("bulk-load α={alpha}"),
            p.engine_bulk(cfg),
            &p,
            &queries,
            k,
            scale,
            true,
        ));
    }
    runs.push(run_h2alsh(&p, k, scale, "H2-ALSH (likes only)"));

    let mut t5 = Table::new(
        "Fig 5: method vs elapsed time (movie-like), α = 3 vs 6, with H2-ALSH",
        &["method", "index build", "q1", "q6", "q11", "q16", "steady avg"],
    );
    let mut t6 = Table::new(
        "Fig 6: precision@K (movie-like)",
        &["method", "precision@10"],
    );
    for r in &runs {
        t5.row(vec![
            r.name.clone(),
            fmt_duration(r.build),
            fmt_duration(r.probes[0]),
            fmt_duration(r.probes[1]),
            fmt_duration(r.probes[2]),
            fmt_duration(r.probes[3]),
            fmt_duration(r.steady_avg),
        ]);
        t6.row(vec![r.name.clone(), format!("{:.4}", r.precision)]);
    }
    t5.emit(out, "fig05_movie_time");
    t6.emit(out, "fig06_movie_accuracy");
}

/// H2-ALSH runs its native single-relation workload: user → top-k items
/// by inner product over the "likes" relation, with recall measured
/// against its own exact-MIPS no-index case (as the paper does: "the
/// H2-ALSH numbers are based on … comparing to its no-index case").
fn run_h2alsh(p: &Prepared, k: usize, scale: Scale, label: &str) -> MethodRun {
    run_h2alsh_k(p, k, scale, label)
}

fn run_h2alsh_k(p: &Prepared, k: usize, scale: Scale, label: &str) -> MethodRun {
    let graph = &p.dataset.graph;
    let store = &p.embeddings;
    let d = store.dim();
    // Item side: everything that is the tail of a "likes" edge type —
    // movies or products, recognizable by name prefix.
    let items: Vec<EntityId> = (0..graph.num_entities() as u32)
        .map(EntityId)
        .filter(|&e| {
            graph
                .entity_name(e)
                .is_some_and(|n| n.starts_with("movie_") || n.starts_with("product_"))
        })
        .collect();
    let users: Vec<EntityId> = (0..graph.num_entities() as u32)
        .map(EntityId)
        .filter(|&e| graph.entity_name(e).is_some_and(|n| n.starts_with("user_")))
        .collect();
    let mut data = Vec::with_capacity(items.len() * d);
    for &m in &items {
        data.extend_from_slice(store.entity(m));
    }

    let build_t = Instant::now();
    let idx = H2Alsh::build(data.clone(), d, H2AlshConfig::default());
    let build = build_t.elapsed();

    let steady_n = steady_queries(scale);
    let mut probes = Vec::new();
    let mut steady = Duration::ZERO;
    let mut precision_sum = 0.0;
    let mut precision_n = 0usize;
    for i in 0..steady_n + 20 {
        let user = users[i % users.len()];
        let q = store.entity(user).to_vec();
        let t = Instant::now();
        let answer = idx.top_k_mips(&q, k, |_| false);
        let dt = t.elapsed();
        if PROBE_QUERIES.contains(&(i + 1)) {
            probes.push(dt);
        }
        if i >= 20 && i < 20 + steady_n {
            steady += dt;
        }
        if i % 7 == 0 && precision_n < 30 {
            let truth = vkg::baselines::linear_scan::exact_mips_top_k(&data, d, &q, k);
            let truth_ids: HashSet<u32> = truth.iter().map(|t| t.0).collect();
            let hits = answer.iter().filter(|a| truth_ids.contains(&a.0)).count();
            precision_sum += hits as f64 / k as f64;
            precision_n += 1;
        }
    }
    MethodRun {
        name: label.to_owned(),
        build,
        probes,
        steady_avg: steady / steady_n.max(1) as u32,
        precision: precision_sum / precision_n.max(1) as f64,
    }
}

// ---------------------------------------------------------------------
// Figures 7–8: Amazon — H2-ALSH at k = 2 and 10, scaling vs Fig. 5.
// ---------------------------------------------------------------------

fn fig7_fig8(scale: Scale, out: &Path) {
    let p = setup::amazon(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, steady_queries(scale) + 20, 0xF16_7);

    let mut runs = Vec::new();
    for k in [2usize, 10] {
        runs.push(run_engine(
            &format!("cracking: k={k}"),
            p.engine(setup::bench_config()),
            &p,
            &queries,
            k,
            scale,
            false,
        ));
        runs.push(run_h2alsh_k(&p, k, scale, &format!("H2-ALSH: k={k}")));
    }
    runs.push(run_engine(
        "bulk-load R-tree",
        p.engine_bulk(setup::bench_config()),
        &p,
        &queries,
        10,
        scale,
        true,
    ));

    let mut t7 = Table::new(
        "Fig 7: method vs elapsed time (amazon-like), k = 2 vs 10",
        &["method", "index build", "q1", "q6", "q11", "q16", "steady avg"],
    );
    let mut t8 = Table::new(
        "Fig 8: precision@K (amazon-like)",
        &["method", "precision@K"],
    );
    for r in &runs {
        t7.row(vec![
            r.name.clone(),
            fmt_duration(r.build),
            fmt_duration(r.probes[0]),
            fmt_duration(r.probes[1]),
            fmt_duration(r.probes[2]),
            fmt_duration(r.probes[3]),
            fmt_duration(r.steady_avg),
        ]);
        t8.row(vec![r.name.clone(), format!("{:.4}", r.precision)]);
    }
    t7.emit(out, "fig07_amazon_time");
    t8.emit(out, "fig08_amazon_accuracy");
}

// ---------------------------------------------------------------------
// Figure 9: node counts, cracking vs bulk (freebase-like).
// Figures 10–11: index sizes (movie / amazon).
// ---------------------------------------------------------------------

fn fig9(scale: Scale, out: &Path) {
    let p = setup::freebase(scale, dim(scale));
    let mut cracked = p.engine(setup::bench_config());
    let bulk = p.engine_bulk(setup::bench_config());
    let queries = workload::generate(&p.dataset.graph, 50, 0xF16_9);

    let mut t = Table::new(
        "Fig 9: #index nodes after N initial queries (freebase-like)",
        &["queries", "cracking nodes", "bulk-loaded nodes"],
    );
    t.row(vec![
        "0".into(),
        cracked.index_node_count().to_string(),
        bulk.index_node_count().to_string(),
    ]);
    for (i, q) in queries.iter().enumerate() {
        let _ = workload::run(&mut cracked, q, 10);
        let n = i + 1;
        if [1usize, 5, 10, 20, 50].contains(&n) {
            t.row(vec![
                n.to_string(),
                cracked.index_node_count().to_string(),
                bulk.index_node_count().to_string(),
            ]);
        }
    }
    t.emit(out, "fig09_freebase_nodes");
}

fn fig10_fig11(scale: Scale, out: &Path, which: &str, file_tag: &str) {
    let p = match which {
        "movie" => setup::movie(scale, dim(scale)),
        _ => setup::amazon(scale, dim(scale)),
    };
    let mut cracked = p.engine(setup::bench_config());
    let bulk = p.engine_bulk(setup::bench_config());
    let queries = workload::generate(&p.dataset.graph, 50, 0xF16_10);

    let mut t = Table::new(
        &format!(
            "Fig {}: index size in KiB after N initial queries ({}-like)",
            if which == "movie" { "10" } else { "11" },
            which
        ),
        &["queries", "cracking KiB", "bulk-loaded KiB"],
    );
    t.row(vec![
        "0".into(),
        (cracked.index_bytes() / 1024).to_string(),
        (bulk.index_bytes() / 1024).to_string(),
    ]);
    for (i, q) in queries.iter().enumerate() {
        let _ = workload::run(&mut cracked, q, 10);
        let n = i + 1;
        if [1usize, 5, 10, 20, 50].contains(&n) {
            t.row(vec![
                n.to_string(),
                (cracked.index_bytes() / 1024).to_string(),
                (bulk.index_bytes() / 1024).to_string(),
            ]);
        }
    }
    t.emit(out, &format!("{file_tag}_{which}_index_size"));
}

// ---------------------------------------------------------------------
// Figures 12–16: aggregate queries, sample-size (time) vs accuracy.
// ---------------------------------------------------------------------

fn aggregate_sweep(
    scale: Scale,
    out: &Path,
    fig: &str,
    which: &str,
    kind: AggregateKind,
    attribute: Option<&str>,
) {
    let p = match which {
        "freebase" => setup::freebase(scale, dim(scale)),
        "movie" => setup::movie(scale, dim(scale)),
        _ => setup::amazon(scale, dim(scale)),
    };
    let mut engine = p.engine(setup::bench_config());
    // Aggregate queries want attribute-bearing targets; for movie/amazon
    // that means tails of "likes" from users — generate accordingly.
    let queries: Vec<Query> = if which == "freebase" {
        workload::generate(&p.dataset.graph, 200, 0xA6_12)
            .into_iter()
            .filter(|q| q.direction == Direction::Tails)
            .take(8)
            .collect()
    } else {
        let likes = p.dataset.graph.relation_id("likes").unwrap();
        p.dataset
            .graph
            .triples()
            .iter()
            .filter(|t| t.relation == likes)
            .step_by(37)
            .take(8)
            .map(|t| Query {
                entity: t.head,
                relation: t.relation,
                direction: Direction::Tails,
            })
            .collect()
    };

    // Both the measured queries and the ground truth use the §VI
    // threshold 0.01; the only difference is how many points are
    // accessed exactly (unaccessed ones get element-approximated
    // probabilities), so the accuracy curve isolates sampling error.
    let base_spec = |a: Option<usize>| {
        let mut s = match attribute {
            None => AggregateSpec::count(0.01),
            Some(attr) => AggregateSpec::of(kind, attr, 0.01),
        };
        s.sample_size = a;
        s
    };
    let truth_spec = base_spec(None);

    let kind_name = match kind {
        AggregateKind::Count => "COUNT",
        AggregateKind::Sum => "SUM",
        AggregateKind::Avg => "AVG",
        AggregateKind::Max => "MAX",
        AggregateKind::Min => "MIN",
    };
    let mut t = Table::new(
        &format!(
            "Fig {}: {kind_name}{} queries ({which}-like) — sample size vs time and accuracy",
            fig.trim_start_matches("fig"),
            attribute.map(|a| format!("({a})")).unwrap_or_default(),
        ),
        &["sample a", "mean time", "mean accuracy"],
    );

    for a in [1usize, 2, 5, 10, 20, 50, 100, usize::MAX] {
        let mut time = Duration::ZERO;
        let mut acc_sum = 0.0;
        let mut n = 0usize;
        for q in &queries {
            let truth = match engine.aggregate(q.entity, q.relation, q.direction, &truth_spec) {
                Ok(r) if r.ball_size > 0 && r.estimate.abs() > 1e-9 => r,
                _ => continue,
            };
            let spec = base_spec(if a == usize::MAX { None } else { Some(a) });
            let t0 = Instant::now();
            let est = match engine.aggregate(q.entity, q.relation, q.direction, &spec) {
                Ok(r) => r,
                Err(_) => continue,
            };
            time += t0.elapsed();
            let accuracy =
                (1.0 - (est.estimate - truth.estimate).abs() / truth.estimate.abs()).max(0.0);
            acc_sum += accuracy;
            n += 1;
        }
        if n == 0 {
            continue;
        }
        t.row(vec![
            if a == usize::MAX {
                "all".into()
            } else {
                a.to_string()
            },
            fmt_duration(time / n as u32),
            format!("{:.4}", acc_sum / n as f64),
        ]);
    }
    t.emit(out, &format!("{fig}_{which}_{}", kind_name.to_lowercase()));
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5): α, ε, β.
// ---------------------------------------------------------------------

fn ablation_alpha(scale: Scale, out: &Path) {
    let p = setup::movie(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, 120, 0xAB_1);
    let scan = LinearScan::new(&p.embeddings);
    let mut t = Table::new(
        "Ablation: S₂ dimensionality α — accuracy vs per-query time",
        &["alpha", "steady avg", "precision@10", "index KiB"],
    );
    for alpha in [2usize, 3, 4, 6, 8] {
        let cfg = VkgConfig {
            alpha,
            ..setup::bench_config()
        };
        let mut engine = p.engine(cfg);
        let mut time = Duration::ZERO;
        let mut prec = 0.0;
        let mut n_prec = 0usize;
        for (i, q) in queries.iter().enumerate() {
            let t0 = Instant::now();
            let answer = workload::run(&mut engine, q, 10);
            if i >= 20 {
                time += t0.elapsed();
            }
            if i % 5 == 0 {
                prec += workload::precision_vs_scan(&p.dataset.graph, &scan, q, 10, &answer);
                n_prec += 1;
            }
        }
        t.row(vec![
            alpha.to_string(),
            fmt_duration(time / (queries.len() - 20).max(1) as u32),
            format!("{:.4}", prec / n_prec.max(1) as f64),
            (engine.index_bytes() / 1024).to_string(),
        ]);
    }
    t.emit(out, "abl_alpha");
}

fn ablation_epsilon(scale: Scale, out: &Path) {
    let p = setup::movie(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, 120, 0xAB_2);
    let scan = LinearScan::new(&p.embeddings);
    let mut t = Table::new(
        "Ablation: ball inflation ε of Algorithm 3 — recall vs work",
        &["epsilon", "steady avg", "precision@10", "mean S1 evals"],
    );
    for eps in [0.5f64, 1.0, 2.0, 3.0, 5.0] {
        let cfg = VkgConfig {
            epsilon: eps,
            ..setup::bench_config()
        };
        let mut engine = p.engine(cfg);
        let mut time = Duration::ZERO;
        let mut prec = 0.0;
        let mut n_prec = 0usize;
        let mut evals = 0u64;
        for (i, q) in queries.iter().enumerate() {
            let t0 = Instant::now();
            let answer = workload::run(&mut engine, q, 10);
            if i >= 20 {
                time += t0.elapsed();
            }
            evals += answer.s1_evals;
            if i % 5 == 0 {
                prec += workload::precision_vs_scan(&p.dataset.graph, &scan, q, 10, &answer);
                n_prec += 1;
            }
        }
        t.row(vec![
            format!("{eps}"),
            fmt_duration(time / (queries.len() - 20).max(1) as u32),
            format!("{:.4}", prec / n_prec.max(1) as f64),
            (evals / queries.len() as u64).to_string(),
        ]);
    }
    t.emit(out, "abl_eps");
}

fn ablation_beta(scale: Scale, out: &Path) {
    let p = setup::freebase(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, 120, 0xAB_3);
    let mut t = Table::new(
        "Ablation: overlap-cost base β — split quality vs steady time",
        &["beta", "steady avg", "splits", "nodes"],
    );
    // β reweights overlap costs *across tree levels*, which only matters
    // when whole change candidates are compared — i.e. under the
    // Algorithm 2 search (a greedy run ranks candidates within one node,
    // where β^h is a common factor).
    for beta in [1.0f64, 1.5, 2.0, 4.0] {
        let cfg = VkgConfig {
            beta,
            split_strategy: SplitStrategy::TopK { choices: 3 },
            ..setup::bench_config()
        };
        let mut engine = p.engine(cfg);
        let mut time = Duration::ZERO;
        for (i, q) in queries.iter().enumerate() {
            let t0 = Instant::now();
            let _ = workload::run(&mut engine, q, 10);
            if i >= 20 {
                time += t0.elapsed();
            }
        }
        let s = engine.index_stats();
        t.row(vec![
            format!("{beta}"),
            fmt_duration(time / (queries.len() - 20).max(1) as u32),
            s.splits_performed.to_string(),
            engine.index_node_count().to_string(),
        ]);
    }
    t.emit(out, "abl_beta");
}

fn ablation_cost(scale: Scale, out: &Path) {
    // §IV-B1's claim: ranking splits by (c_Q, c_O) instead of overlap
    // alone buys slightly better steady-state query time, because splits
    // keep each workload region's points in fewer pages.
    let p = setup::freebase(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, 220, 0xAB_4);
    let mut t = Table::new(
        "Ablation: two-component (c_Q, c_O) split cost vs overlap-only",
        &["cost model", "steady avg", "mean points examined", "nodes"],
    );
    for (name, aware) in [("two-component (paper)", true), ("overlap-only", false)] {
        let cfg = VkgConfig {
            query_aware_cost: aware,
            ..setup::bench_config()
        };
        let mut engine = p.engine(cfg);
        let mut time = Duration::ZERO;
        let mut examined = 0u64;
        for (i, q) in queries.iter().enumerate() {
            engine.reset_access_counters();
            let t0 = Instant::now();
            let _ = workload::run(&mut engine, q, 10);
            if i >= 20 {
                time += t0.elapsed();
                examined += engine.index_stats().points_examined;
            }
        }
        let steady_n = (queries.len() - 20) as u64;
        t.row(vec![
            name.into(),
            fmt_duration(time / steady_n as u32),
            (examined / steady_n).to_string(),
            engine.index_node_count().to_string(),
        ]);
    }
    t.emit(out, "abl_cost");
}
